//! The `Scenario` × `Backend` execution seam.
//!
//! The workload crates (`pdc-life`, `pdc-ray`, `pdc-extmem`, `pdc-db`)
//! each grew their own sequential / threaded / distributed entry
//! points. This module extracts the shared shape: a [`Scenario`]
//! generates its input deterministically from a seed, runs the same
//! work on any [`Backend`] it supports, and condenses the result into a
//! canonical [`Outcome`] digest so cross-backend equality is one `u64`
//! comparison. The [`run_scenario`] driver owns everything around the
//! workload — a fresh [`TraceSession`] per run, wall-clock timing, an
//! injected analyzer verdict (this crate sits below `pdc-analyze`, so
//! the analysis pass arrives as a closure), and the `pdc-tables/1`
//! speedup/crossover tables the bench gate greps.
//!
//! The speedup/crossover framing is the curriculum's core performance
//! topic (Amdahl/Gustafson in [`crate::laws`]); here it is measured on
//! real end-to-end applications rather than microbenchmarks —
//! Strout's "applications-first" argument turned into a harness.

use crate::report::{f, json_escape, speedup_fmt, Table};
use crate::trace::{self, Event, TraceSession};
use std::fmt;
use std::time::Instant;

/// Actor id the driver's own thread records under while a scenario
/// runs (see [`run_scenario`]): just below the automatic range so it
/// never collides with worker indices, ranks, or
/// [`trace::AUTO_ACTOR_BASE`] siblings.
pub const DRIVER_ACTOR: u32 = trace::AUTO_ACTOR_BASE - 1;

/// Where a scenario's work executes.
///
/// The enum is deliberately closed: every workload crate matches on it
/// and panics on backends it does not list in
/// [`Scenario::backends`], so a typo'd backend fails loudly instead of
/// silently running sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference implementation — the speedup baseline.
    Sequential,
    /// The work-stealing pool (`pdc-threads`) with this many workers.
    Threads {
        /// Worker thread count.
        workers: usize,
    },
    /// Message-passing ranks (`pdc-mpi`).
    Mpi {
        /// Rank count.
        ranks: usize,
        /// `false` = in-process [`LocalTransport`] threads; `true` =
        /// re-exec'd OS processes over loopback TCP (`WireWorld`).
        /// Wire runs need child re-exec dispatch, so only binaries
        /// that install it (the `experiments` gate) offer them.
        wire: bool,
    },
    /// The deterministic GPU simulator (`pdc-gpu`).
    GpuSim,
}

impl Backend {
    /// Stable short label used in tables, JSON, and counter rows.
    pub fn label(&self) -> String {
        match self {
            Backend::Sequential => "seq".to_string(),
            Backend::Threads { workers } => format!("threads({workers})"),
            Backend::Mpi { ranks, wire: false } => format!("mpi-local({ranks})"),
            Backend::Mpi { ranks, wire: true } => format!("mpi-wire({ranks})"),
            Backend::GpuSim => "gpusim".to_string(),
        }
    }

    /// Everything except the sequential baseline.
    pub fn is_parallel(&self) -> bool {
        !matches!(self, Backend::Sequential)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(out, "{}", self.label())
    }
}

/// Incremental FNV-1a (64-bit) — the workspace's canonical outcome
/// digest. Not cryptographic; chosen because it is trivially portable
/// and stable across platforms and backends.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Start a fresh digest.
    pub fn new() -> Self {
        Digest(Self::OFFSET)
    }

    /// Fold in raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Fold in one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Fold in a string (bytes plus a length separator, so `["ab","c"]`
    /// and `["a","bc"]` digest differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest value so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// The canonical result of one scenario run: what the run produced,
/// condensed so that two backends can be compared for equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Canonical digest of the full result (grid cells, PPM bytes,
    /// sorted records, word counts, ...). Equal digests across backends
    /// is the seam's correctness contract.
    pub digest: u64,
    /// Work units processed (cell updates, pixels, records, words) —
    /// the scenario's own notion of problem size, for throughput rows.
    pub items: u64,
    /// One-line human summary (`"pop=412"`, `"lum=87.3"`).
    pub detail: String,
}

/// Everything a scenario needs to run once: the deterministic input
/// seed, the problem scale (scenario-interpreted: grid side, image
/// width, record count, document count), and the trace session the
/// backend should publish counters and events into.
pub struct ScenarioCtx<'a> {
    /// Seed for deterministic input generation.
    pub seed: u64,
    /// Problem scale.
    pub size: usize,
    /// Per-run trace session (fresh for every backend × size).
    pub session: &'a TraceSession,
}

/// A workload that can execute on several backends.
///
/// The contract: for a fixed `(seed, size)`, [`Scenario::run`] must
/// return the same [`Outcome::digest`] on every backend listed by
/// [`Scenario::backends`] — bit-equal results, not statistically
/// similar ones. Implementations panic on backends they do not list.
pub trait Scenario {
    /// Stable scenario id (`"life"`, `"ray"`, `"extsort"`, `"wordcount"`).
    fn name(&self) -> &'static str;
    /// The backends this scenario supports, baseline first.
    fn backends(&self) -> Vec<Backend>;
    /// Generate the input from `ctx.seed`/`ctx.size`, execute on
    /// `backend`, trace into `ctx.session`, and digest the result.
    fn run(&self, backend: &Backend, ctx: &ScenarioCtx<'_>) -> Outcome;
}

/// The injected analyzer's verdict on one run's trace. `pdc-core` sits
/// below `pdc-analyze` in the crate graph, so [`run_scenario`] takes
/// the analysis as a closure producing this summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeVerdict {
    /// No defects found.
    pub clean: bool,
    /// Defects found (0 when clean).
    pub defects: usize,
    /// Events the analyzer saw.
    pub events: usize,
}

/// Driver configuration for [`run_scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Input-generation seed, shared by every run.
    pub seed: u64,
    /// Problem scales to sweep, ascending.
    pub sizes: Vec<usize>,
    /// Wall-clock repetitions per (backend, size); the fastest run is
    /// kept (its session and verdict too). Every repetition must
    /// reproduce the same digest — the driver asserts it.
    pub repeats: u32,
}

impl ScenarioConfig {
    /// One-repetition config (property tests); gates use more repeats.
    pub fn new(seed: u64, sizes: &[usize]) -> Self {
        ScenarioConfig {
            seed,
            sizes: sizes.to_vec(),
            repeats: 1,
        }
    }

    /// Set the repetition count.
    pub fn with_repeats(mut self, repeats: u32) -> Self {
        assert!(repeats >= 1, "need at least one repetition");
        self.repeats = repeats;
        self
    }
}

/// One `(backend, size)` cell of a scenario sweep.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Backend that executed.
    pub backend: Backend,
    /// Problem scale.
    pub size: usize,
    /// Canonical result.
    pub outcome: Outcome,
    /// Fastest wall-clock time across the repetitions, clamped to
    /// ≥ 1 ns so speedup rows can never divide by zero.
    pub nanos: u64,
    /// The injected analyzer's verdict on the kept run's trace.
    pub analyze: AnalyzeVerdict,
    /// Events the kept run's session dropped (full buffers).
    pub dropped: u64,
    /// The kept (fastest) run's full event stream, ts-sorted — the
    /// input the span pass consumes for empirical work/span.
    pub events: Vec<Event>,
}

/// The full sweep of one scenario: every backend at every size.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub scenario: String,
    /// The seed all runs shared.
    pub seed: u64,
    /// All runs, grouped by size (ascending), backends in declaration
    /// order within a size.
    pub runs: Vec<BackendRun>,
}

impl ScenarioReport {
    /// The sizes swept, ascending.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.runs.iter().map(|r| r.size).collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    }

    /// The distinct backend labels, in first-appearance order.
    pub fn backend_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for r in &self.runs {
            let l = r.backend.label();
            if !labels.contains(&l) {
                labels.push(l);
            }
        }
        labels
    }

    /// The baseline (sequential) time for `size`, falling back to the
    /// first run at that size if the scenario has no sequential
    /// backend.
    pub fn baseline_nanos(&self, size: usize) -> Option<u64> {
        self.runs
            .iter()
            .find(|r| r.size == size && r.backend == Backend::Sequential)
            .or_else(|| self.runs.iter().find(|r| r.size == size))
            .map(|r| r.nanos)
    }

    /// Speedup of one run against its size's baseline.
    pub fn speedup_of(&self, run: &BackendRun) -> f64 {
        match self.baseline_nanos(run.size) {
            Some(base) => base as f64 / run.nanos as f64,
            None => f64::NAN,
        }
    }

    /// Speedup for a specific `(backend, size)` cell, if present.
    pub fn speedup(&self, backend: &Backend, size: usize) -> Option<f64> {
        self.runs
            .iter()
            .find(|r| r.size == size && &r.backend == backend)
            .map(|r| self.speedup_of(r))
    }

    /// Whether every backend produced the same digest at every size —
    /// the seam's cross-backend equality contract.
    pub fn outcomes_agree(&self) -> bool {
        self.mismatches().is_empty()
    }

    /// Human-readable descriptions of every digest disagreement.
    pub fn mismatches(&self) -> Vec<String> {
        let mut out = Vec::new();
        for size in self.sizes() {
            let at: Vec<&BackendRun> = self.runs.iter().filter(|r| r.size == size).collect();
            if let Some(first) = at.first() {
                for r in &at[1..] {
                    if r.outcome.digest != first.outcome.digest {
                        out.push(format!(
                            "{} n={size}: {} digest {:#018x} != {} digest {:#018x}",
                            self.scenario,
                            r.backend,
                            r.outcome.digest,
                            first.backend,
                            first.outcome.digest
                        ));
                    }
                }
            }
        }
        out
    }

    /// Whether the injected analyzer found every run clean.
    pub fn all_clean(&self) -> bool {
        self.runs.iter().all(|r| r.analyze.clean)
    }

    /// Whether every table row is well-formed: positive duration, and a
    /// finite positive speedup. (The driver clamps durations to ≥ 1 ns,
    /// so this holds by construction; the gate asserts it anyway.)
    pub fn rows_valid(&self) -> bool {
        self.runs.iter().all(|r| {
            let s = self.speedup_of(r);
            r.nanos >= 1 && s.is_finite() && s > 0.0
        })
    }

    /// The smallest swept size at which `backend` reaches speedup ≥ 1
    /// — the crossover point where parallelism starts paying.
    pub fn crossover_size(&self, backend: &Backend) -> Option<usize> {
        self.sizes()
            .into_iter()
            .find(|&n| self.speedup(backend, n).is_some_and(|s| s >= 1.0))
    }

    /// The per-run speedup table: one row per `(size, backend)`.
    pub fn speedup_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "scenario {} — speedup vs sequential (seed {:#x})",
                self.scenario, self.seed
            ),
            &[
                "n", "backend", "time ms", "speedup", "items", "digest", "analyze",
            ],
        );
        for r in &self.runs {
            t.row(&[
                r.size.to_string(),
                r.backend.label(),
                f(r.nanos as f64 / 1e6, 3),
                speedup_fmt(self.speedup_of(r)),
                r.outcome.items.to_string(),
                format!("{:#018x}", r.outcome.digest),
                if r.analyze.clean {
                    format!("clean ({} events)", r.analyze.events)
                } else {
                    format!("{} DEFECTS", r.analyze.defects)
                },
            ]);
        }
        t
    }

    /// The crossover table: one row per parallel backend, speedup at
    /// each size plus the crossover size (first size with speedup ≥ 1).
    pub fn crossover_table(&self) -> Table {
        let sizes = self.sizes();
        let mut headers: Vec<String> = vec!["backend".to_string()];
        headers.extend(sizes.iter().map(|n| format!("n={n}")));
        headers.push("crossover n".to_string());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            format!("scenario {} — crossover", self.scenario),
            &header_refs,
        );
        let mut seen: Vec<Backend> = Vec::new();
        for r in &self.runs {
            if !r.backend.is_parallel() || seen.contains(&r.backend) {
                continue;
            }
            seen.push(r.backend);
            let mut cells: Vec<String> = vec![r.backend.label()];
            for &n in &sizes {
                cells.push(match self.speedup(&r.backend, n) {
                    Some(s) => speedup_fmt(s),
                    None => "-".to_string(),
                });
            }
            cells.push(
                self.crossover_size(&r.backend)
                    .map_or("-".to_string(), |n| n.to_string()),
            );
            t.row(&cells);
        }
        t
    }

    /// Export the speedup and crossover tables as one `pdc-tables/1`
    /// JSON document (the format EXPERIMENTS.md specifies, extended
    /// with `scenario` and `seed` fields).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"pdc-tables/1\",\"scenario\":\"{}\",\"seed\":{},\"tables\":[{},{}]}}",
            json_escape(&self.scenario),
            self.seed,
            self.speedup_table().to_json(),
            self.crossover_table().to_json()
        )
    }
}

/// Run `scenario` on every backend it supports at every configured
/// size: fresh [`TraceSession`] per run, `scenario.*` counters, timing
/// (fastest of `cfg.repeats`, clamped to ≥ 1 ns), and the injected
/// `analyzer` verdict over the kept run's trace.
///
/// # Panics
/// Panics if `cfg` has no sizes, or if a repetition reproduces a
/// different digest than the first (scenarios must be deterministic).
pub fn run_scenario(
    scenario: &dyn Scenario,
    cfg: &ScenarioConfig,
    analyzer: &dyn Fn(&TraceSession) -> AnalyzeVerdict,
) -> ScenarioReport {
    assert!(
        !cfg.sizes.is_empty(),
        "scenario sweep needs at least one size"
    );
    assert!(cfg.repeats >= 1, "need at least one repetition");
    let mut runs = Vec::new();
    for &size in &cfg.sizes {
        for backend in scenario.backends() {
            let mut best: Option<(u64, Outcome, TraceSession)> = None;
            for _ in 0..cfg.repeats {
                let session = TraceSession::with_capacity(1 << 16);
                let ctx = ScenarioCtx {
                    seed: cfg.seed,
                    size,
                    session: &session,
                };
                // The driver's thread records under DRIVER_ACTOR for
                // the duration of the run, so sequential code paths
                // (and `trace::record_steps` attribution in them) land
                // in the session without every scenario threading a
                // handle through. The previous trace (if the caller
                // nested) is restored afterwards.
                let prev = trace::install_sync_trace(session.thread(DRIVER_ACTOR));
                let t0 = Instant::now();
                let outcome = scenario.run(&backend, &ctx);
                let nanos = (t0.elapsed().as_nanos() as u64).max(1);
                match prev {
                    Some(p) => {
                        trace::install_sync_trace(p);
                    }
                    None => {
                        trace::clear_sync_trace();
                    }
                }
                session.counter("scenario.runs").inc();
                session.counter("scenario.items").add(outcome.items);
                if let Some((_, first, _)) = &best {
                    assert_eq!(
                        outcome.digest,
                        first.digest,
                        "{} on {} at n={size}: digest changed between repetitions",
                        scenario.name(),
                        backend
                    );
                }
                if best.as_ref().is_none_or(|(t, _, _)| nanos < *t) {
                    best = Some((nanos, outcome, session));
                }
            }
            let (nanos, outcome, session) = best.expect("at least one repetition");
            let analyze = analyzer(&session);
            runs.push(BackendRun {
                backend,
                size,
                outcome,
                nanos,
                analyze,
                dropped: session.dropped(),
                events: session.events(),
            });
        }
    }
    ScenarioReport {
        scenario: scenario.name().to_string(),
        seed: cfg.seed,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy scenario: sum the first `size` outputs of the seeded RNG.
    /// "Threads" just chunks the same sum, so digests agree.
    struct SumScenario;

    impl Scenario for SumScenario {
        fn name(&self) -> &'static str {
            "sum"
        }

        fn backends(&self) -> Vec<Backend> {
            vec![Backend::Sequential, Backend::Threads { workers: 2 }]
        }

        fn run(&self, backend: &Backend, ctx: &ScenarioCtx<'_>) -> Outcome {
            let data = crate::rng::Rng::new(ctx.seed).u64_vec(ctx.size);
            let total: u64 = match backend {
                Backend::Sequential => data.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
                Backend::Threads { workers } => data
                    .chunks(ctx.size.div_ceil(*workers).max(1))
                    .map(|c| c.iter().fold(0u64, |a, &v| a.wrapping_add(v)))
                    .fold(0u64, u64::wrapping_add),
                other => panic!("sum scenario does not support {other}"),
            };
            ctx.session.counter("sum.values").add(ctx.size as u64);
            // Attribute one step per summed value: the driver installs
            // a sync trace, so this lands in the session's events.
            trace::record_steps(ctx.size as u64);
            let mut d = Digest::new();
            d.write_u64(total);
            Outcome {
                digest: d.finish(),
                items: ctx.size as u64,
                detail: format!("total={total}"),
            }
        }
    }

    fn no_analyzer(_: &TraceSession) -> AnalyzeVerdict {
        AnalyzeVerdict {
            clean: true,
            defects: 0,
            events: 0,
        }
    }

    #[test]
    fn driver_sweeps_all_backends_and_sizes() {
        let cfg = ScenarioConfig::new(7, &[10, 100]).with_repeats(2);
        let report = run_scenario(&SumScenario, &cfg, &no_analyzer);
        assert_eq!(report.runs.len(), 4);
        assert!(report.outcomes_agree(), "{:?}", report.mismatches());
        assert!(report.all_clean());
        assert!(report.rows_valid());
        assert_eq!(report.sizes(), vec![10, 100]);
        assert_eq!(report.backend_labels(), vec!["seq", "threads(2)"]);
    }

    #[test]
    fn driver_installs_sync_trace_and_keeps_events() {
        let report = run_scenario(&SumScenario, &ScenarioConfig::new(5, &[16]), &no_analyzer);
        for r in &report.runs {
            let marks: Vec<_> = r
                .events
                .iter()
                .filter(|e| e.kind == crate::trace::EventKind::Mark)
                .collect();
            assert_eq!(marks.len(), 1, "one step mark per run on {}", r.backend);
            assert_eq!(marks[0].actor, DRIVER_ACTOR);
            assert_eq!(marks[0].a, crate::trace::MARK_STEPS);
            assert_eq!(marks[0].b, 16);
        }
        // The driver cleared its trace: nothing records afterwards.
        assert!(!trace::record_steps(1));
    }

    #[test]
    fn digests_differ_across_seeds_but_not_backends() {
        let a = run_scenario(&SumScenario, &ScenarioConfig::new(1, &[64]), &no_analyzer);
        let b = run_scenario(&SumScenario, &ScenarioConfig::new(2, &[64]), &no_analyzer);
        assert_ne!(a.runs[0].outcome.digest, b.runs[0].outcome.digest);
        assert_eq!(a.runs[0].outcome.digest, a.runs[1].outcome.digest);
    }

    #[test]
    fn tables_and_json_are_well_formed() {
        let cfg = ScenarioConfig::new(3, &[8, 32]);
        let report = run_scenario(&SumScenario, &cfg, &no_analyzer);
        let speed = report.speedup_table().render();
        assert!(speed.contains("threads(2)"));
        let cross = report.crossover_table().render();
        assert!(cross.contains("n=8") && cross.contains("crossover n"));
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"pdc-tables/1\""));
        assert!(json.contains("\"scenario\":\"sum\""));
    }

    #[test]
    fn nanos_never_zero_and_speedups_finite() {
        let report = run_scenario(&SumScenario, &ScenarioConfig::new(0, &[1]), &no_analyzer);
        for r in &report.runs {
            assert!(r.nanos >= 1);
            let s = report.speedup_of(r);
            assert!(s.is_finite() && s > 0.0);
        }
    }

    #[test]
    fn digest_is_order_sensitive_and_separator_safe() {
        let mut a = Digest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn backend_labels_are_stable() {
        assert_eq!(Backend::Sequential.label(), "seq");
        assert_eq!(Backend::Threads { workers: 4 }.label(), "threads(4)");
        assert_eq!(
            Backend::Mpi {
                ranks: 3,
                wire: false
            }
            .label(),
            "mpi-local(3)"
        );
        assert_eq!(
            Backend::Mpi {
                ranks: 3,
                wire: true
            }
            .label(),
            "mpi-wire(3)"
        );
        assert_eq!(Backend::GpuSim.label(), "gpusim");
        assert!(!Backend::Sequential.is_parallel());
        assert!(Backend::GpuSim.is_parallel());
    }
}
