//! Performance laws: speedup, efficiency, Amdahl, Gustafson, Karp–Flatt.
//!
//! These are the headline formulas CS31 students apply in the parallel
//! Game-of-Life scalability lab (Table I of the paper) and that CS41
//! revisits analytically. All functions operate on plain `f64`s so they can
//! be used both on measured wall-clock times and on simulated step counts.

/// Speedup of a parallel execution: `S(p) = t_serial / t_parallel`.
///
/// Both times must be positive. Works equally for wall-clock seconds and
/// for simulated step counts, as long as the two use the same unit.
///
/// # Panics
/// Panics if either time is not finite and positive.
///
/// # Examples
/// ```
/// let s = pdc_core::speedup(10.0, 2.5);
/// assert_eq!(s, 4.0);
/// ```
pub fn speedup(t_serial: f64, t_parallel: f64) -> f64 {
    assert!(
        t_serial.is_finite() && t_serial > 0.0,
        "serial time must be positive, got {t_serial}"
    );
    assert!(
        t_parallel.is_finite() && t_parallel > 0.0,
        "parallel time must be positive, got {t_parallel}"
    );
    t_serial / t_parallel
}

/// Parallel efficiency: `E(p) = S(p) / p`.
///
/// An efficiency of 1.0 is perfect linear scaling; the CS31 lab asks
/// students to explain why efficiency falls as `p` grows.
///
/// # Examples
/// ```
/// let e = pdc_core::efficiency(3.2, 4);
/// assert!((e - 0.8).abs() < 1e-12);
/// ```
pub fn efficiency(speedup: f64, p: usize) -> f64 {
    assert!(p > 0, "processor count must be positive");
    speedup / p as f64
}

/// Amdahl's law: predicted speedup on `p` processors when a fraction
/// `serial_fraction` of the work cannot be parallelized.
///
/// `S(p) = 1 / (s + (1 - s)/p)`. As `p → ∞` the speedup plateaus at `1/s`,
/// the classic ceiling students discover in the scalability study.
///
/// # Panics
/// Panics unless `0.0 <= serial_fraction <= 1.0` and `p >= 1`.
///
/// # Examples
/// ```
/// // 5% serial work caps speedup at 20x no matter how many cores:
/// let far = pdc_core::amdahl_speedup(0.05, 100_000);
/// assert!(far < 20.0 && far > 19.9);
/// ```
pub fn amdahl_speedup(serial_fraction: f64, p: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0,1], got {serial_fraction}"
    );
    assert!(p > 0, "processor count must be positive");
    1.0 / (serial_fraction + (1.0 - serial_fraction) / p as f64)
}

/// Gustafson's law: scaled speedup when the *parallel part grows* with `p`
/// while the serial part stays fixed.
///
/// `S(p) = s + (1 - s) * p` where `s` is the serial fraction of the scaled
/// workload. This is the lens for weak-scaling experiments.
///
/// # Examples
/// ```
/// let s = pdc_core::gustafson_speedup(0.05, 64);
/// assert!((s - (0.05 + 0.95 * 64.0)).abs() < 1e-12);
/// ```
pub fn gustafson_speedup(serial_fraction: f64, p: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0,1], got {serial_fraction}"
    );
    assert!(p > 0, "processor count must be positive");
    serial_fraction + (1.0 - serial_fraction) * p as f64
}

/// Karp–Flatt metric: the *experimentally determined* serial fraction
/// implied by a measured speedup `s` on `p > 1` processors.
///
/// `e = (1/s - 1/p) / (1 - 1/p)`. A rising Karp–Flatt value as `p` grows
/// indicates overhead (synchronization, load imbalance) rather than an
/// inherently serial region — exactly the diagnosis step of the CS31 lab
/// report.
///
/// # Panics
/// Panics if `p < 2` or the speedup is not positive.
pub fn karp_flatt(measured_speedup: f64, p: usize) -> f64 {
    assert!(p >= 2, "Karp–Flatt requires p >= 2, got {p}");
    assert!(
        measured_speedup.is_finite() && measured_speedup > 0.0,
        "speedup must be positive"
    );
    let pf = p as f64;
    (1.0 / measured_speedup - 1.0 / pf) / (1.0 - 1.0 / pf)
}

/// The asymptotic speedup ceiling `1/s` implied by Amdahl's law.
///
/// Returns `f64::INFINITY` for a fully parallel workload (`s == 0`).
pub fn amdahl_ceiling(serial_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0,1]"
    );
    if serial_fraction == 0.0 {
        f64::INFINITY
    } else {
        1.0 / serial_fraction
    }
}

/// Solve Amdahl's law for the processor count needed to reach a target
/// speedup, or `None` if the target exceeds the `1/s` ceiling.
///
/// Useful for the "how many cores would you need?" exam questions.
pub fn amdahl_processors_for(serial_fraction: f64, target_speedup: f64) -> Option<usize> {
    assert!((0.0..=1.0).contains(&serial_fraction));
    assert!(target_speedup >= 1.0, "target speedup must be >= 1");
    if target_speedup == 1.0 {
        return Some(1);
    }
    let ceiling = amdahl_ceiling(serial_fraction);
    if target_speedup >= ceiling {
        return None;
    }
    // S = 1 / (s + (1-s)/p)  =>  p = (1-s) / (1/S - s)
    let p = (1.0 - serial_fraction) / (1.0 / target_speedup - serial_fraction);
    Some(p.ceil() as usize)
}

/// Iso-efficiency check: given a function `overhead(n, p)` describing total
/// parallel overhead `T_o` and serial work `w(n)`, compute the efficiency
/// `E = w / (w + T_o)` for a particular `(n, p)` point.
///
/// CS41 uses this to discuss *scalability*: a system is scalable if, by
/// growing `n` with `p`, efficiency can be held constant.
pub fn iso_efficiency(work: f64, overhead: f64) -> f64 {
    assert!(work > 0.0, "work must be positive");
    assert!(overhead >= 0.0, "overhead must be non-negative");
    work / (work + overhead)
}

/// A measured scaling point: processor count plus the observed time.
///
/// [`ScalingCurve`] aggregates these into the derived metrics students
/// report (speedup, efficiency, Karp–Flatt serial fraction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of workers used.
    pub p: usize,
    /// Observed time (seconds or simulated steps).
    pub time: f64,
}

/// A strong-scaling curve: the `p = 1` baseline plus measurements at
/// increasing processor counts, with derived metrics.
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    points: Vec<ScalingPoint>,
}

impl ScalingCurve {
    /// Build a curve from raw `(p, time)` measurements. The measurements
    /// are sorted by `p`; the smallest `p` is used as the baseline (it is
    /// conventionally 1).
    ///
    /// # Panics
    /// Panics if `points` is empty, if any time is non-positive, or if two
    /// points share the same `p`.
    pub fn new(mut points: Vec<ScalingPoint>) -> Self {
        assert!(!points.is_empty(), "scaling curve needs at least one point");
        points.sort_by_key(|pt| pt.p);
        for w in points.windows(2) {
            assert!(w[0].p != w[1].p, "duplicate processor count {}", w[0].p);
        }
        for pt in &points {
            assert!(pt.time > 0.0, "time at p={} must be positive", pt.p);
            assert!(pt.p > 0, "processor count must be positive");
        }
        Self { points }
    }

    /// The baseline time (at the smallest measured `p`).
    pub fn baseline(&self) -> ScalingPoint {
        self.points[0]
    }

    /// All measured points, ordered by `p`.
    pub fn points(&self) -> &[ScalingPoint] {
        &self.points
    }

    /// Speedup at each measured point relative to the baseline.
    ///
    /// When the smallest measured `p` is 1 (the usual case) this is the
    /// textbook `t1 / tp`. If the sweep starts above 1 (sometimes the
    /// serial run is too slow to measure), the serial time is estimated
    /// as `t_base * p_base` — the standard perfect-scaling extrapolation,
    /// which makes the reported speedups a *lower* bound.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        let base = self.baseline();
        self.points
            .iter()
            .map(|pt| (pt.p, speedup(base.time * base.p as f64, pt.time)))
            .collect()
    }

    /// Efficiency at each measured point.
    pub fn efficiencies(&self) -> Vec<(usize, f64)> {
        self.speedups()
            .into_iter()
            .map(|(p, s)| (p, efficiency(s, p)))
            .collect()
    }

    /// Karp–Flatt experimentally determined serial fraction at each point
    /// with `p >= 2`.
    pub fn karp_flatt_series(&self) -> Vec<(usize, f64)> {
        self.speedups()
            .into_iter()
            .filter(|&(p, _)| p >= 2)
            .map(|(p, s)| (p, karp_flatt(s, p)))
            .collect()
    }

    /// Least-squares fit of the serial fraction `s` under the Amdahl model,
    /// fitting `1/S(p) = s + (1-s)/p` linearly in `1/p`.
    ///
    /// Returns `None` if fewer than two distinct `p >= 1` points exist.
    pub fn fit_serial_fraction(&self) -> Option<f64> {
        let sp = self.speedups();
        if sp.len() < 2 {
            return None;
        }
        // Linear regression of y = 1/S against x = 1/p:
        // y = s + (1-s) x  =>  slope = 1-s, intercept = s.
        let n = sp.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(p, s) in &sp {
            let x = 1.0 / p as f64;
            let y = 1.0 / s;
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-15 {
            return None;
        }
        let intercept = (sy * sxx - sx * sxy) / denom;
        Some(intercept.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_basic() {
        assert_eq!(speedup(8.0, 2.0), 4.0);
        assert_eq!(speedup(1.0, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "parallel time must be positive")]
    fn speedup_rejects_zero_parallel() {
        speedup(1.0, 0.0);
    }

    #[test]
    fn efficiency_basic() {
        assert!((efficiency(4.0, 4) - 1.0).abs() < 1e-12);
        assert!((efficiency(2.0, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amdahl_limits() {
        // Fully parallel: perfect speedup.
        assert!((amdahl_speedup(0.0, 16) - 16.0).abs() < 1e-12);
        // Fully serial: no speedup.
        assert!((amdahl_speedup(1.0, 16) - 1.0).abs() < 1e-12);
        // p = 1 is always speedup 1.
        assert!((amdahl_speedup(0.3, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_monotone_in_p() {
        let mut prev = 0.0;
        for p in 1..=1024 {
            let s = amdahl_speedup(0.1, p);
            assert!(s >= prev, "speedup should be non-decreasing in p");
            prev = s;
        }
        assert!(prev < amdahl_ceiling(0.1));
    }

    #[test]
    fn amdahl_ceiling_matches_large_p() {
        let s = amdahl_speedup(0.02, 10_000_000);
        assert!((s - amdahl_ceiling(0.02)).abs() < 0.01);
        assert_eq!(amdahl_ceiling(0.0), f64::INFINITY);
    }

    #[test]
    fn amdahl_processors_for_roundtrip() {
        let s = 0.05;
        let p = amdahl_processors_for(s, 10.0).unwrap();
        assert!(amdahl_speedup(s, p) >= 10.0);
        assert!(amdahl_speedup(s, p - 1) < 10.0);
        // Beyond the ceiling it is impossible.
        assert_eq!(amdahl_processors_for(0.1, 10.0), None);
        assert_eq!(amdahl_processors_for(0.1, 11.0), None);
        assert_eq!(amdahl_processors_for(0.5, 1.0), Some(1));
    }

    #[test]
    fn gustafson_exceeds_amdahl_for_scaled_work() {
        for p in 2..64 {
            assert!(gustafson_speedup(0.1, p) > amdahl_speedup(0.1, p));
        }
    }

    #[test]
    fn karp_flatt_recovers_serial_fraction() {
        // If the measured speedup exactly follows Amdahl with fraction s,
        // Karp–Flatt should recover s.
        let s = 0.07;
        for p in [2, 4, 8, 16, 32] {
            let measured = amdahl_speedup(s, p);
            let e = karp_flatt(measured, p);
            assert!((e - s).abs() < 1e-12, "p={p}: got {e}");
        }
    }

    #[test]
    fn iso_efficiency_basics() {
        assert!((iso_efficiency(100.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((iso_efficiency(100.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_curve_derivations() {
        let curve = ScalingCurve::new(vec![
            ScalingPoint { p: 1, time: 100.0 },
            ScalingPoint { p: 2, time: 55.0 },
            ScalingPoint { p: 4, time: 30.0 },
            ScalingPoint { p: 8, time: 20.0 },
        ]);
        let sp = curve.speedups();
        assert_eq!(sp[0], (1, 1.0));
        assert!((sp[3].1 - 5.0).abs() < 1e-12);
        let eff = curve.efficiencies();
        assert!(eff[3].1 < eff[1].1, "efficiency should fall with p here");
        let kf = curve.karp_flatt_series();
        assert_eq!(kf.len(), 3);
        assert!(kf.iter().all(|&(_, e)| e > 0.0 && e < 1.0));
    }

    #[test]
    fn scaling_curve_fit_recovers_amdahl_fraction() {
        let s = 0.12;
        let pts = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| ScalingPoint {
                p,
                time: 100.0 / amdahl_speedup(s, p),
            })
            .collect();
        let curve = ScalingCurve::new(pts);
        let fitted = curve.fit_serial_fraction().unwrap();
        assert!((fitted - s).abs() < 1e-9, "fitted {fitted}");
    }

    #[test]
    #[should_panic(expected = "duplicate processor count")]
    fn scaling_curve_rejects_duplicates() {
        ScalingCurve::new(vec![
            ScalingPoint { p: 2, time: 1.0 },
            ScalingPoint { p: 2, time: 2.0 },
        ]);
    }
}
