//! Aligned text tables for experiment reports.
//!
//! The `experiments` binary in `pdc-bench` regenerates every paper
//! table/figure as a text table; this module is the shared formatter. The
//! output style mirrors the paper's tables: a header row, a rule, and
//! column-aligned body rows.

use std::cell::RefCell;
use std::fmt::Write as _;

thread_local! {
    /// When installed by [`capture_tables`], every [`Table::render`]
    /// call on this thread also pushes its [`Table::to_json`] form here.
    static TABLE_SINK: RefCell<Option<Vec<String>>> = const { RefCell::new(None) };
}

/// Run `f` while capturing, as JSON, every table rendered on this
/// thread, and return `f`'s result alongside the captured tables.
///
/// This is how the `experiments` binary emits each printed table as
/// JSON next to the trace snapshot without threading a sink through
/// every experiment function. Captures nest: an inner capture takes
/// the tables rendered inside it and the outer capture resumes after.
pub fn capture_tables<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    let prev = TABLE_SINK.with(|s| s.borrow_mut().replace(Vec::new()));
    let result = f();
    let captured = TABLE_SINK.with(|s| {
        let mut slot = s.borrow_mut();
        let cur = slot.take().unwrap_or_default();
        *slot = prev;
        cur
    });
    (result, captured)
}

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers. All columns default
    /// to right alignment except the first.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: title.into(),
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments.
    ///
    /// # Panics
    /// Panics if the count differs from the header count.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row from displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of body rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table as a `{"title", "headers", "rows"}` JSON
    /// object (all cells as strings, exactly as printed). Part of the
    /// `pdc-trace/2` snapshot format; see EXPERIMENTS.md.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"title\":\"{}\",\"headers\":[",
            json_escape(&self.title)
        );
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(h));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(cell));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, "{:<w$}", cells[i], w = w);
                    }
                    Align::Right => {
                        let _ = write!(line, "{:>w$}", cells[i], w = w);
                    }
                }
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        TABLE_SINK.with(|s| {
            if let Some(sink) = s.borrow_mut().as_mut() {
                sink.push(self.to_json());
            }
        });
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
///
/// Used by the pdc-trace export ([`crate::trace::TraceSession::to_json`]);
/// the build is offline so the JSON writer is hand-rolled, and this is
/// its single escaping point.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Write `contents` to `path`, creating parent directories as needed.
///
/// The benches use this to drop a `pdc-trace/2` JSON snapshot next to
/// their text results.
pub fn write_text_file(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// Format a float with `prec` decimals (helper for table rows).
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Format a speedup as `12.3x`.
pub fn speedup_fmt(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format a large count with thousands separators (`1_234_567`).
pub fn count_fmt(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "n", "time"]);
        t.row(&["short".into(), "8".into(), "1.5".into()]);
        t.row(&["a-longer-name".into(), "1024".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header, rule, two body rows (+title).
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric column: "8" and "1024" end at same offset.
        let h = lines[1];
        let r1 = lines[3];
        let r2 = lines[4];
        assert_eq!(h.len().max(r1.len()), r2.len().max(r1.len()));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn count_fmt_groups() {
        assert_eq!(count_fmt(0), "0");
        assert_eq!(count_fmt(999), "999");
        assert_eq!(count_fmt(1000), "1_000");
        assert_eq!(count_fmt(1234567), "1_234_567");
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(speedup_fmt(3.456), "3.46x");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain.name"), "plain.name");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\t"), "line\\nbreak\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn table_to_json_matches_cells() {
        let mut t = Table::new("I/O \"sweep\"", &["order", "ios"]);
        t.row(&["row-major".into(), "256".into()]);
        assert_eq!(
            t.to_json(),
            "{\"title\":\"I/O \\\"sweep\\\"\",\"headers\":[\"order\",\"ios\"],\
             \"rows\":[[\"row-major\",\"256\"]]}"
        );
    }

    #[test]
    fn capture_tables_collects_rendered_tables() {
        let (text, tables) = capture_tables(|| {
            let mut a = Table::new("A", &["x"]);
            a.row(&["1".into()]);
            let b = Table::new("B", &["y"]);
            format!("{}{}", a.render(), b.render())
        });
        assert!(text.contains("## A"));
        assert_eq!(tables.len(), 2);
        assert!(tables[0].starts_with("{\"title\":\"A\""));
        assert!(tables[1].starts_with("{\"title\":\"B\""));
        // Outside a capture, rendering records nothing.
        let (_, empty) = capture_tables(|| ());
        assert!(empty.is_empty());
    }

    #[test]
    fn row_display_converts() {
        let mut t = Table::new("", &["p", "s"]);
        t.row_display(&[&4usize, &2.5f64]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("2.5"));
    }
}
