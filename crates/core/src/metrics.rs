//! Named monotone counters shared by the pool, the machine simulator,
//! and the MPI layer.
//!
//! A [`Registry`] maps dotted lowercase names (`pool.executed`,
//! `mpi.bytes`, `ft.reassignments`) to `AtomicU64` cells. Registration
//! takes a mutex once per name; the [`Counter`] handle it returns
//! increments lock-free, so hot paths (a worker finishing a task, a rank
//! sending a message) never contend on the registry itself.
//!
//! Counters are **monotone**: the only mutations are `inc`/`add`. That
//! invariant is what makes [`Snapshot::diff`] meaningful — the delta of
//! two snapshots of the same registry never underflows, which
//! `tests/prop_trace.rs` checks under concurrent increments.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A handle to one named monotone counter.
///
/// Cloning is cheap (an `Arc` bump) and all clones address the same
/// cell. There is deliberately no `set`/`reset`: consumers that need
/// rates or deltas take [`Registry::snapshot`]s and diff them.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A registry of named counters.
///
/// Subsystems own their registry by default (`WorkStealingPool`,
/// `SimMachine`, …) and can be handed a shared one through a
/// `TraceSession` so one snapshot covers a whole experiment.
#[derive(Debug, Default)]
pub struct Registry {
    cells: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Fetch or create the counter `name`.
    ///
    /// Repeated calls with the same name return handles to the same
    /// cell, so counts accumulate regardless of which handle adds.
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = self.cells.lock().expect("metrics registry poisoned");
        let cell = cells
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter { cell }
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let cells = self.cells.lock().expect("metrics registry poisoned");
        cells.keys().cloned().collect()
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Snapshot {
        let cells = self.cells.lock().expect("metrics registry poisoned");
        Snapshot {
            values: cells
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// The process-wide registry, for ambient counters (e.g. the TCP KV
/// server's `kv.conn_errors`) where threading a handle through every
/// call site would obscure the teaching code.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time copy of a registry's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    values: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Value of `name` at snapshot time (0 if it was not registered).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Per-counter `self - earlier`, saturating at 0.
    ///
    /// For two snapshots of the same registry taken in this order the
    /// saturation never fires (counters are monotone); it exists so a
    /// misordered pair degrades to zeros instead of wrapping.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.get(k))))
                .collect(),
        }
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of counters captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no counters were registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn same_name_same_cell() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.snapshot().get("x.hits"), 4);
    }

    #[test]
    fn snapshot_diff_subtracts() {
        let r = Registry::new();
        let c = r.counter("n");
        c.add(10);
        let before = r.snapshot();
        c.add(7);
        let after = r.snapshot();
        assert_eq!(after.diff(&before).get("n"), 7);
        // Misordered pair saturates instead of wrapping.
        assert_eq!(before.diff(&after).get("n"), 0);
    }

    #[test]
    fn counter_registered_after_snapshot_reads_zero_in_before() {
        let r = Registry::new();
        let before = r.snapshot();
        r.counter("late").add(5);
        let after = r.snapshot();
        assert_eq!(before.get("late"), 0);
        assert_eq!(after.diff(&before).get("late"), 5);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = r.counter("shared");
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().get("shared"), 40_000);
    }

    #[test]
    fn names_are_sorted() {
        let r = Registry::new();
        r.counter("b.two");
        r.counter("a.one");
        assert_eq!(r.names(), vec!["a.one".to_string(), "b.two".to_string()]);
    }

    #[test]
    fn global_registry_is_shared() {
        let before = global().snapshot().get("core.test_global");
        global().counter("core.test_global").inc();
        assert_eq!(global().snapshot().get("core.test_global"), before + 1);
    }
}
