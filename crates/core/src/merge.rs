//! Cross-process trace merging: `pdc-trace/2` in, `pdc-trace/3` out.
//!
//! When an MPI world runs its ranks as separate OS processes (see
//! `pdc-mpi`'s `WireTransport`), there is no shared [`TraceSession`]:
//! each rank process records into its own session and writes an
//! ordinary `pdc-trace/2` snapshot to disk before exiting. The parent
//! then parses those per-process documents with [`parse_trace`] and
//! combines them with [`MergedTrace::merge`] into one **`pdc-trace/3`**
//! snapshot:
//!
//! ```json
//! {"schema":"pdc-trace/3",
//!  "meta":{...},
//!  "counters":{"mpi.msgs":12,...},          // summed across processes
//!  "per_process":[{"process":0,"dropped":0,"counters":{...}},...],
//!  "events":[{"ts":3,"process":1,"actor":1,"kind":"send",...},...],
//!  "dropped":0}
//! ```
//!
//! Schema 3 extends schema 2 with exactly one concept: the `process`
//! field. Top-level `counters` are the **cross-process sums** (so
//! `mpi.msgs` means the same thing it means in a single-process traced
//! world), `per_process` keeps the unsummed originals, and every event
//! carries the process that recorded it. Timestamps are each process's
//! *local* logical clock — they order events within a process but not
//! across processes; consumers that need a causally consistent global
//! order (e.g. `pdc-analyze`'s process-aware MPI lint) rebuild one from
//! the send/recv structure.
//!
//! The parser is deliberately narrow: it reads the JSON this workspace
//! writes (see [`TraceSession::to_json`]), not arbitrary JSON — but it
//! is a real tokenizer, so field order and unknown keys don't break it.
//!
//! [`TraceSession`]: crate::trace::TraceSession
//! [`TraceSession::to_json`]: crate::trace::TraceSession::to_json

use crate::report::json_escape;
use crate::trace::{Event, EventKind};
use std::collections::BTreeMap;

/// One process's contribution to a merged trace: the parsed body of a
/// `pdc-trace/2` snapshot plus the process id it ran as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessTrace {
    /// Which OS process recorded this slice (for MPI worlds, the rank).
    pub process: u32,
    /// Counter totals as recorded by this process (unsummed).
    pub counters: BTreeMap<String, u64>,
    /// Events in this process's local logical-clock order.
    pub events: Vec<Event>,
    /// Events this process discarded because a buffer filled.
    pub dropped: u64,
}

/// A multi-process trace: every process's slice, ready to export as
/// `pdc-trace/3` or feed to process-aware analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergedTrace {
    /// Per-process slices, sorted by process id.
    pub processes: Vec<ProcessTrace>,
}

impl MergedTrace {
    /// Combine per-process slices (sorts them by process id).
    pub fn merge(mut parts: Vec<ProcessTrace>) -> MergedTrace {
        parts.sort_by_key(|p| p.process);
        MergedTrace { processes: parts }
    }

    /// Cross-process counter sums: the schema-3 top-level `counters`
    /// object. Summing is the right combination for monotone counters —
    /// `mpi.msgs` over all rank processes is total messages sent, just
    /// as it is when the ranks share one registry.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for p in &self.processes {
            for (k, v) in &p.counters {
                *out.entry(k.clone()).or_insert(0) += v;
            }
        }
        out
    }

    /// One summed counter (0 when absent from every process).
    pub fn counter(&self, name: &str) -> u64 {
        self.processes
            .iter()
            .filter_map(|p| p.counters.get(name))
            .sum()
    }

    /// Total events dropped across all processes.
    pub fn dropped(&self) -> u64 {
        self.processes.iter().map(|p| p.dropped).sum()
    }

    /// All events as `(process, event)` pairs, concatenated in process
    /// order (each process's slice keeps its local order).
    pub fn events(&self) -> Vec<(u32, Event)> {
        let mut out = Vec::new();
        for p in &self.processes {
            out.extend(p.events.iter().map(|e| (p.process, *e)));
        }
        out
    }

    /// Export as one `pdc-trace/3` JSON document.
    pub fn to_json(&self, meta: &[(&str, String)]) -> String {
        let mut out = String::from("{\"schema\":\"pdc-trace/3\"");
        if !meta.is_empty() {
            out.push_str(",\"meta\":{");
            for (i, (k, v)) in meta.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
        }
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), value));
        }
        out.push_str("},\"per_process\":[");
        for (i, p) in self.processes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"process\":{},\"dropped\":{},\"counters\":{{",
                p.process, p.dropped
            ));
            for (j, (name, value)) in p.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(name), value));
            }
            out.push_str("}}");
        }
        out.push_str("],\"events\":[");
        let mut first = true;
        for p in &self.processes {
            for e in &p.events {
                if !first {
                    out.push(',');
                }
                first = false;
                // An ordinary schema-2 event object with the process
                // id spliced in after ts.
                let body = e.to_json();
                let rest = body
                    .strip_prefix(&format!("{{\"ts\":{},", e.ts))
                    .expect("event json starts with ts");
                out.push_str(&format!(
                    "{{\"ts\":{},\"process\":{},{rest}",
                    e.ts, p.process
                ));
            }
        }
        out.push_str(&format!("],\"dropped\":{}}}", self.dropped()));
        out
    }

    /// Parse a `pdc-trace/3` document written by [`MergedTrace::to_json`]
    /// back into per-process slices.
    pub fn parse(json: &str) -> Result<MergedTrace, String> {
        let doc = Parser::new(json).value()?;
        let obj = doc.as_object().ok_or("top level is not an object")?;
        match obj.get("schema").and_then(Value::as_str) {
            Some("pdc-trace/3") => {}
            other => return Err(format!("not a pdc-trace/3 document: {other:?}")),
        }
        let mut slices: BTreeMap<u32, ProcessTrace> = BTreeMap::new();
        if let Some(Value::Array(pp)) = obj.get("per_process") {
            for p in pp {
                let po = p.as_object().ok_or("per_process entry not an object")?;
                let id = get_u64(po, "process")? as u32;
                slices.insert(
                    id,
                    ProcessTrace {
                        process: id,
                        counters: parse_counters(po.get("counters"))?,
                        events: Vec::new(),
                        dropped: get_u64(po, "dropped").unwrap_or(0),
                    },
                );
            }
        }
        if let Some(Value::Array(events)) = obj.get("events") {
            for e in events {
                let eo = e.as_object().ok_or("event not an object")?;
                let process = get_u64(eo, "process")? as u32;
                let ev = parse_event(eo)?;
                slices
                    .entry(process)
                    .or_insert_with(|| ProcessTrace {
                        process,
                        counters: BTreeMap::new(),
                        events: Vec::new(),
                        dropped: 0,
                    })
                    .events
                    .push(ev);
            }
        }
        Ok(MergedTrace {
            processes: slices.into_values().collect(),
        })
    }
}

/// Parse one `pdc-trace/2` snapshot (as written by
/// [`TraceSession::to_json`](crate::trace::TraceSession::to_json)) into
/// a [`ProcessTrace`] recorded as `process`.
pub fn parse_trace(json: &str, process: u32) -> Result<ProcessTrace, String> {
    let doc = Parser::new(json).value()?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    match obj.get("schema").and_then(Value::as_str) {
        Some("pdc-trace/1") | Some("pdc-trace/2") => {}
        other => return Err(format!("not a pdc-trace/1|2 document: {other:?}")),
    }
    let mut events = Vec::new();
    if let Some(Value::Array(evs)) = obj.get("events") {
        for e in evs {
            let eo = e.as_object().ok_or("event not an object")?;
            events.push(parse_event(eo)?);
        }
    }
    Ok(ProcessTrace {
        process,
        counters: parse_counters(obj.get("counters"))?,
        events,
        dropped: get_u64(obj, "dropped").unwrap_or(0),
    })
}

fn parse_counters(v: Option<&Value>) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    if let Some(Value::Object(fields)) = v {
        for (k, v) in fields {
            out.insert(
                k.clone(),
                v.as_u64().ok_or_else(|| format!("counter {k} not a u64"))?,
            );
        }
    }
    Ok(out)
}

/// Rebuild an [`Event`] from a parsed object. The payload fields are
/// matched by the kind's schema names, falling back to positional `a`/`b`
/// for forward compatibility.
fn parse_event(eo: &BTreeMap<String, Value>) -> Result<Event, String> {
    let kind_name = eo
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("event has no kind")?;
    let kind = EventKind::parse_name(kind_name)
        .ok_or_else(|| format!("unknown event kind {kind_name:?}"))?;
    let (fa, fb) = kind.field_names();
    Ok(Event {
        ts: get_u64(eo, "ts")?,
        actor: get_u64(eo, "actor")? as u32,
        kind,
        a: get_u64(eo, fa).or_else(|_| get_u64(eo, "a"))?,
        b: get_u64(eo, fb).or_else(|_| get_u64(eo, "b"))?,
    })
}

fn get_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

// ---------------------------------------------------------------------
// A small recursive-descent JSON reader. Covers the subset this
// workspace emits: objects, arrays, strings (with \" \\ \n \t \u
// escapes, matching report::json_escape), unsigned integers, floats
// (read but truncated), true/false/null.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Object(BTreeMap<String, Value>),
    Array(Vec<Value>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Value {
    fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char,
                self.pos.min(self.bytes.len())
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b"+-.eE".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSession;

    fn session_with(process_hint: u32, n_events: u64) -> (TraceSession, String) {
        let s = TraceSession::new();
        s.counter("mpi.msgs").add(n_events);
        s.counter("mpi.bytes").add(8 * n_events);
        let t = s.thread(process_hint);
        for i in 0..n_events {
            t.record(EventKind::Send, (process_hint as u64 + 1) % 2, 8 + i);
        }
        let json = s.to_json_with_meta(&[("process", process_hint.to_string())]);
        (s, json)
    }

    #[test]
    fn roundtrip_trace2_through_parser() {
        let (session, json) = session_with(0, 3);
        let parsed = parse_trace(&json, 0).unwrap();
        assert_eq!(parsed.process, 0);
        assert_eq!(parsed.counters.get("mpi.msgs"), Some(&3));
        assert_eq!(parsed.counters.get("mpi.bytes"), Some(&24));
        assert_eq!(parsed.events.len(), 3);
        assert_eq!(parsed.events, session.events());
        assert_eq!(parsed.dropped, 0);
    }

    #[test]
    fn parser_survives_meta_tables_and_escapes() {
        let s = TraceSession::new();
        s.counter("kv.conn_errors").inc();
        let json = s.to_json_with_tables(
            &[("note", "a \"quoted\"\nline\twith\\stuff".to_string())],
            &["{\"title\":\"T\",\"headers\":[\"x\"],\"rows\":[[\"1\"]]}".to_string()],
        );
        let parsed = parse_trace(&json, 7).unwrap();
        assert_eq!(parsed.process, 7);
        assert_eq!(parsed.counters.get("kv.conn_errors"), Some(&1));
        assert!(parsed.events.is_empty());
    }

    #[test]
    fn merged_counters_sum_across_processes() {
        let (_, j0) = session_with(0, 2);
        let (_, j1) = session_with(1, 5);
        let merged = MergedTrace::merge(vec![
            parse_trace(&j1, 1).unwrap(),
            parse_trace(&j0, 0).unwrap(),
        ]);
        assert_eq!(merged.processes[0].process, 0, "sorted by process id");
        assert_eq!(merged.counter("mpi.msgs"), 7);
        assert_eq!(merged.counters().get("mpi.bytes"), Some(&56));
        assert_eq!(merged.events().len(), 7);
        // Per-process slices keep their own unsummed view.
        assert_eq!(merged.processes[1].counters.get("mpi.msgs"), Some(&5));
    }

    #[test]
    fn trace3_json_roundtrips_and_carries_process_field() {
        let (_, j0) = session_with(0, 2);
        let (_, j1) = session_with(1, 1);
        let merged = MergedTrace::merge(vec![
            parse_trace(&j0, 0).unwrap(),
            parse_trace(&j1, 1).unwrap(),
        ]);
        let json = merged.to_json(&[("source", "test".to_string())]);
        assert!(json.starts_with("{\"schema\":\"pdc-trace/3\""));
        assert!(json.contains("\"per_process\":[{\"process\":0,"));
        assert!(json.contains("\"process\":1"));
        assert!(json.contains("\"mpi.msgs\":3"), "{json}");
        let back = MergedTrace::parse(&json).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn schema2_rejected_by_trace3_parser_and_vice_versa() {
        let (_, j0) = session_with(0, 1);
        assert!(MergedTrace::parse(&j0).is_err());
        let merged = MergedTrace::merge(vec![parse_trace(&j0, 0).unwrap()]);
        assert!(parse_trace(&merged.to_json(&[]), 0).is_err());
    }

    #[test]
    fn event_payload_fields_roundtrip_by_schema_name() {
        // A kind whose field names differ from a/b must still parse.
        let s = TraceSession::new();
        s.thread(2).record(EventKind::Kernel, 4, 900);
        s.thread(2).record(EventKind::CollBegin, 3, 1);
        let parsed = parse_trace(&s.to_json(), 0).unwrap();
        assert_eq!(parsed.events[0].kind, EventKind::Kernel);
        assert_eq!((parsed.events[0].a, parsed.events[0].b), (4, 900));
        assert_eq!(parsed.events[1].kind, EventKind::CollBegin);
        assert_eq!((parsed.events[1].a, parsed.events[1].b), (3, 1));
    }
}
