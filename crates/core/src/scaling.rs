//! Strong- and weak-scaling experiment drivers.
//!
//! These wrap the bookkeeping of the CS31 scalability study: sweep a
//! worker count, collect times (wall-clock or simulated), and derive the
//! speedup/efficiency/Karp–Flatt table students put in their lab reports.

use crate::laws::{self, ScalingCurve, ScalingPoint};
use crate::report::{self, Table};

/// Run a strong-scaling sweep: fixed problem, varying worker count.
///
/// `measure(p)` must return the observed time using `p` workers.
///
/// # Panics
/// Panics if `ps` is empty or a measurement is non-positive.
pub fn strong_scaling(ps: &[usize], mut measure: impl FnMut(usize) -> f64) -> ScalingCurve {
    assert!(!ps.is_empty(), "strong scaling needs at least one p");
    let points = ps
        .iter()
        .map(|&p| ScalingPoint {
            p,
            time: measure(p),
        })
        .collect();
    ScalingCurve::new(points)
}

/// One observation of a weak-scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakPoint {
    /// Worker count (problem size grows proportionally).
    pub p: usize,
    /// Observed time.
    pub time: f64,
    /// Weak-scaling efficiency `t(1) / t(p)` (1.0 is perfect).
    pub efficiency: f64,
}

/// Run a weak-scaling sweep: problem size grows with `p`, so perfect
/// scaling keeps time constant. `measure(p)` runs the p-scaled problem on
/// `p` workers.
///
/// # Panics
/// Panics if `ps` is empty, unsorted, or does not start the sweep with its
/// smallest `p` (the baseline), or if a measurement is non-positive.
pub fn weak_scaling(ps: &[usize], mut measure: impl FnMut(usize) -> f64) -> Vec<WeakPoint> {
    assert!(!ps.is_empty(), "weak scaling needs at least one p");
    assert!(
        ps.windows(2).all(|w| w[0] < w[1]),
        "worker counts must be strictly increasing"
    );
    let t_base = measure(ps[0]);
    assert!(t_base > 0.0, "baseline time must be positive");
    let mut out = vec![WeakPoint {
        p: ps[0],
        time: t_base,
        efficiency: 1.0,
    }];
    for &p in &ps[1..] {
        let t = measure(p);
        assert!(t > 0.0, "time at p={p} must be positive");
        out.push(WeakPoint {
            p,
            time: t,
            efficiency: t_base / t,
        });
    }
    out
}

/// Render a strong-scaling curve as the standard lab-report table:
/// `p, time, speedup, efficiency, karp-flatt`.
pub fn scaling_table(title: &str, curve: &ScalingCurve) -> Table {
    let mut t = Table::new(title, &["p", "time", "speedup", "efficiency", "karp-flatt"]);
    let speedups = curve.speedups();
    let effs = curve.efficiencies();
    for (i, pt) in curve.points().iter().enumerate() {
        let kf = if pt.p >= 2 {
            report::f(laws::karp_flatt(speedups[i].1, pt.p), 4)
        } else {
            "-".to_string()
        };
        t.row(&[
            pt.p.to_string(),
            report::f(pt.time, 3),
            report::speedup_fmt(speedups[i].1),
            report::f(effs[i].1, 3),
            kf,
        ]);
    }
    t
}

/// Render a weak-scaling sweep as a table: `p, time, efficiency`.
pub fn weak_scaling_table(title: &str, points: &[WeakPoint]) -> Table {
    let mut t = Table::new(title, &["p", "time", "weak efficiency"]);
    for pt in points {
        t.row(&[
            pt.p.to_string(),
            report::f(pt.time, 3),
            report::f(pt.efficiency, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SimMachine;

    #[test]
    fn strong_scaling_on_sim_machine() {
        let ps = [1usize, 2, 4, 8];
        let curve = strong_scaling(&ps, |p| SimMachine::run_bsp_program(p, 100, 50, 50_000, p));
        let sp = curve.speedups();
        assert!(sp.last().unwrap().1 > sp[0].1);
        assert!(
            sp.last().unwrap().1 < 8.0,
            "sync costs forbid ideal scaling"
        );
    }

    #[test]
    fn weak_scaling_perfect_when_work_scales() {
        // Ideal machine, work = p * base: time constant => efficiency 1.
        let pts = weak_scaling(&[1, 2, 4], |p| {
            let mut m = SimMachine::new(crate::machine::MachineConfig::ideal(p));
            m.parallel_even(10_000 * p as u64, p);
            m.finish().elapsed()
        });
        for pt in &pts {
            assert!((pt.efficiency - 1.0).abs() < 1e-9, "p={}", pt.p);
        }
    }

    #[test]
    fn weak_scaling_degrades_with_sync() {
        let pts = weak_scaling(&[1, 2, 4, 8], |p| {
            SimMachine::run_bsp_program(p, 0, 100, 10_000 * p as u64, p)
        });
        // Barrier cost grows with p, so weak efficiency drops below 1.
        assert!(pts.last().unwrap().efficiency < 1.0);
        // But not catastrophically for this configuration.
        assert!(pts.last().unwrap().efficiency > 0.3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn weak_scaling_rejects_unsorted() {
        weak_scaling(&[4, 2], |_| 1.0);
    }

    #[test]
    fn tables_render() {
        let curve = strong_scaling(&[1, 2, 4], |p| 100.0 / p as f64 + 5.0);
        let t = scaling_table("strong", &curve);
        let s = t.render();
        assert!(s.contains("karp-flatt"));
        assert_eq!(t.num_rows(), 3);

        let w = weak_scaling(&[1, 2], |_| 10.0);
        let wt = weak_scaling_table("weak", &w);
        assert!(wt.render().contains("weak efficiency"));
    }
}
