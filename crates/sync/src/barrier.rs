//! A sense-reversing barrier.
//!
//! The barrier is the synchronization backbone of the parallel
//! Game-of-Life lab: all workers must finish generation `g` before any
//! starts `g+1`. The naive counter barrier cannot be reused (a fast
//! thread can lap a slow one); the *sense-reversing* barrier fixes this
//! by flipping a phase flag each episode, which is the version built here.

use crate::hooks;
use pdc_core::trace::{self, EventKind, SiteId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A reusable sense-reversing barrier for a fixed set of threads.
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    episodes: AtomicU64,
    /// Stable analysis site id (lazily allocated; see `pdc-analyze`).
    site: SiteId,
}

/// What a thread learns from [`SenseBarrier::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierOutcome {
    /// True for exactly one thread per episode (the last arriver) —
    /// mirrors `PTHREAD_BARRIER_SERIAL_THREAD`.
    pub is_leader: bool,
    /// The barrier episode that completed (0-based).
    pub episode: u64,
}

impl SenseBarrier {
    /// Create a barrier for `parties` threads.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        SenseBarrier {
            parties,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            episodes: AtomicU64::new(0),
            site: SiteId::new(),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Completed episodes so far.
    pub fn episodes(&self) -> u64 {
        self.episodes.load(Ordering::Relaxed)
    }

    /// Block until all `parties` threads have called `wait` this episode.
    pub fn wait(&self) -> BarrierOutcome {
        hooks::yield_point();
        // Entering the barrier publishes this thread's history (a sync
        // pulse released before the arrival increment); leaving adopts
        // everyone's (a pulse acquired after the sense flip is seen), so
        // the analyzer sees the all-to-all happens-before edge.
        trace::record_sync_site(EventKind::Release, &self.site, trace::SYNC_PULSE);
        // My sense for this episode is the flag value at entry.
        let my_sense = self.sense.load(Ordering::Relaxed);
        let arrival = self.count.fetch_add(1, Ordering::AcqRel);
        if arrival + 1 == self.parties {
            // Leader: reset the counter, then flip the sense to release.
            let episode = self.episodes.fetch_add(1, Ordering::Relaxed);
            self.count.store(0, Ordering::Relaxed);
            // Release: every write done by any party before the barrier
            // happens-before every read after it (parties synchronized
            // via their Acquire loads of `sense`).
            self.sense.store(!my_sense, Ordering::Release);
            hooks::site_changed(&self.site);
            trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_PULSE);
            BarrierOutcome {
                is_leader: true,
                episode,
            }
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) == my_sense {
                hooks::spin_wait(&mut spins, &self.site);
            }
            trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_PULSE);
            BarrierOutcome {
                is_leader: false,
                episode: self.episodes.load(Ordering::Relaxed) - 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        for ep in 0..5 {
            let o = b.wait();
            assert!(o.is_leader);
            assert_eq!(o.episode, ep);
        }
        assert_eq!(b.episodes(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        SenseBarrier::new(0);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        let parties = 4;
        let episodes = 50;
        let b = Arc::new(SenseBarrier::new(parties));
        let leaders = Arc::new(TestCounter::new(0));
        let handles: Vec<_> = (0..parties)
            .map(|_| {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                thread::spawn(move || {
                    for _ in 0..episodes {
                        if b.wait().is_leader {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), episodes as u64);
        assert_eq!(b.episodes(), episodes as u64);
    }

    #[test]
    fn no_thread_laps_the_barrier() {
        // Phase counters: after every episode all threads have identical
        // phase; a reuse bug would let one thread run ahead.
        let parties = 4;
        let rounds = 100;
        let b = Arc::new(SenseBarrier::new(parties));
        let phases: Arc<Vec<TestCounter>> =
            Arc::new((0..parties).map(|_| TestCounter::new(0)).collect());
        let handles: Vec<_> = (0..parties)
            .map(|i| {
                let b = Arc::clone(&b);
                let phases = Arc::clone(&phases);
                thread::spawn(move || {
                    for round in 0..rounds {
                        phases[i].store(round, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, everyone must be at >= round.
                        for p in phases.iter() {
                            assert!(
                                p.load(Ordering::SeqCst) >= round,
                                "thread lagging behind a completed barrier"
                            );
                        }
                        b.wait(); // second barrier before next round's store
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn barrier_publishes_writes() {
        // Data written before the barrier must be visible after it.
        let parties = 3;
        let b = Arc::new(SenseBarrier::new(parties));
        let slots: Arc<Vec<TestCounter>> =
            Arc::new((0..parties).map(|_| TestCounter::new(0)).collect());
        let handles: Vec<_> = (0..parties)
            .map(|i| {
                let b = Arc::clone(&b);
                let slots = Arc::clone(&slots);
                thread::spawn(move || {
                    slots[i].store(i as u64 + 1, Ordering::Relaxed);
                    b.wait();
                    let total: u64 = slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
                    assert_eq!(total, (1..=parties as u64).sum::<u64>());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
