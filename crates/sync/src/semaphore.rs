//! A counting semaphore built from an atomic counter and parking.
//!
//! The semaphore is the CS31/CS45 workhorse primitive: `acquire` (P/wait)
//! decrements if positive, else blocks; `release` (V/post) increments and
//! wakes a waiter. Implemented with a CAS loop on the count plus the same
//! waiter-queue parking protocol as [`crate::mutex::PdcMutex`].

use crate::fairness::Fairness;
use crate::hooks;
use crate::spin::SpinLock;
use pdc_core::trace::{self, EventKind, SiteId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::thread::Thread;

/// A counting semaphore.
pub struct Semaphore {
    count: AtomicI64,
    waiters: SpinLock<VecDeque<Thread>>,
    parks: AtomicU64,
    /// Which queued waiter a release wakes.
    fairness: Fairness,
    /// Stable analysis site id (lazily allocated; see `pdc-analyze`).
    site: SiteId,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits and FIFO wake
    /// order.
    pub fn new(permits: i64) -> Self {
        Semaphore::with_fairness(permits, Fairness::Fifo)
    }

    /// Create a semaphore with an explicit wake-order policy.
    pub fn with_fairness(permits: i64, fairness: Fairness) -> Self {
        assert!(permits >= 0, "initial permits must be non-negative");
        Semaphore {
            count: AtomicI64::new(permits),
            // Implementation-internal lock: keep it out of traces.
            waiters: SpinLock::untraced(VecDeque::new()),
            parks: AtomicU64::new(0),
            fairness,
            site: SiteId::new(),
        }
    }

    /// Try to take a permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut cur = self.count.load(Ordering::Relaxed);
        while cur > 0 {
            match self.count.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // A permit hand-off is a sync *pulse*: it carries a
                    // happens-before edge from a releaser but is not a
                    // held lock for lockset/lock-order purposes.
                    trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_PULSE);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
        false
    }

    /// Take a permit, blocking (parking) until one is available.
    pub fn acquire(&self) {
        hooks::yield_point();
        // Bounded spin first (skipped under a checker: the park protocol
        // below is the deterministic blocking point).
        if !hooks::is_checked() {
            for _ in 0..64 {
                if self.try_acquire() {
                    return;
                }
                std::hint::spin_loop();
            }
        } else if self.try_acquire() {
            return;
        }
        loop {
            self.waiters.lock().push_back(std::thread::current());
            // Re-check after enqueue to avoid a missed wakeup (a release
            // may have happened before our entry was visible).
            if self.try_acquire() {
                return;
            }
            self.parks.fetch_add(1, Ordering::Relaxed);
            hooks::park();
            if self.try_acquire() {
                return;
            }
        }
    }

    /// Return one permit and wake one waiter.
    pub fn release(&self) {
        // Event before the count bump: timestamp order must show this
        // release ahead of the acquire it enables.
        trace::record_sync_site(EventKind::Release, &self.site, trace::SYNC_PULSE);
        // Release ordering pairs with acquirers' Acquire CAS.
        self.count.fetch_add(1, Ordering::Release);
        hooks::site_changed(&self.site);
        let waiter = self.fairness.select(&mut self.waiters.lock());
        if let Some(t) = waiter {
            hooks::unpark(&t);
        }
    }

    /// Return `n` permits.
    pub fn release_n(&self, n: i64) {
        assert!(n >= 0);
        if n == 0 {
            return;
        }
        trace::record_sync_site(EventKind::Release, &self.site, trace::SYNC_PULSE);
        self.count.fetch_add(n, Ordering::Release);
        hooks::site_changed(&self.site);
        let mut q = self.waiters.lock();
        for _ in 0..n {
            match self.fairness.select(&mut q) {
                Some(t) => hooks::unpark(&t),
                None => break,
            }
        }
    }

    /// Current permit count (racy; diagnostics only).
    pub fn available(&self) -> i64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Number of parks (contention metric).
    pub fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn permits_count_down_and_up() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
        assert_eq!(s.available(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_initial_rejected() {
        Semaphore::new(-1);
    }

    #[test]
    fn acquire_blocks_until_release() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let h = thread::spawn(move || {
            s2.acquire();
            done2.store(1, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(50));
        assert_eq!(done.load(Ordering::SeqCst), 0, "must still be blocked");
        s.release();
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn semaphore_as_mutex() {
        // A binary semaphore provides mutual exclusion.
        let s = Arc::new(Semaphore::new(1));
        let counter = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let counter = Arc::clone(&counter);
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        s.acquire();
                        let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(inside, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                        s.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "never two inside");
    }

    #[test]
    fn bounded_concurrency_with_n_permits() {
        let s = Arc::new(Semaphore::new(3));
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                let inside = Arc::clone(&inside);
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    for _ in 0..200 {
                        s.acquire();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        inside.fetch_sub(1, Ordering::SeqCst);
                        s.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3, "permit cap respected");
    }

    #[test]
    fn release_n_wakes_many() {
        let s = Arc::new(Semaphore::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                thread::spawn(move || s.acquire())
            })
            .collect();
        thread::sleep(Duration::from_millis(50));
        s.release_n(4);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.available(), 0);
    }

    #[test]
    fn rendezvous_pattern() {
        // Two semaphores implement the classic two-thread rendezvous:
        // neither proceeds to step B before the other finished step A.
        let sa = Arc::new(Semaphore::new(0));
        let sb = Arc::new(Semaphore::new(0));
        let log = Arc::new(crate::spin::SpinLock::new(Vec::<&'static str>::new()));
        let (sa2, sb2, log2) = (Arc::clone(&sa), Arc::clone(&sb), Arc::clone(&log));
        let t1 = thread::spawn(move || {
            log2.lock().push("a1");
            sa2.release();
            sb2.acquire();
            log2.lock().push("a2");
        });
        let (sa3, sb3, log3) = (Arc::clone(&sa), Arc::clone(&sb), Arc::clone(&log));
        let t2 = thread::spawn(move || {
            log3.lock().push("b1");
            sb3.release();
            sa3.acquire();
            log3.lock().push("b2");
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let log = log.lock();
        let pos = |s| log.iter().position(|&x| x == s).unwrap();
        assert!(pos("a1") < pos("b2"));
        assert!(pos("b1") < pos("a2"));
    }
}
