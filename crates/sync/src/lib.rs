//! # pdc-sync — synchronization primitives built from atomics
//!
//! CS31/CS45 teach synchronization by *building* it: locks, semaphores,
//! barriers, condition-style waiting, and the classic concurrency problems
//! (producer-consumer, dining philosophers, readers-writers). This crate
//! implements each primitive from `std::sync::atomic` plus
//! `thread::park`/`unpark` (our stand-in for futexes), in the style of
//! Mara Bos's *Rust Atomics and Locks*.
//!
//! Every unsafe block carries a safety argument; the public APIs are all
//! safe and data-race free by construction (guards tie access to lock
//! ownership through the borrow checker).
//!
//! * [`spin::SpinLock`] — test-and-set spinlock with exponential backoff.
//! * [`ticket::TicketLock`] — FIFO-fair ticket lock.
//! * [`mutex::PdcMutex`] — a parking mutex (spin-then-park).
//! * [`semaphore::Semaphore`] — counting semaphore.
//! * [`barrier::SenseBarrier`] — sense-reversing reusable barrier.
//! * [`rwlock::PdcRwLock`] — writer-preferring readers-writer lock.
//! * [`once::OnceCell`] — one-shot lazy initialization.
//! * [`buffer::BoundedBuffer`] — the producer-consumer bounded buffer.
//! * [`condvar::PdcCondvar`] — a condition variable over [`mutex::PdcMutex`].
//! * [`channel::channel`] — a traced, checkable MPSC channel whose
//!   send/recv carry per-channel FIFO happens-before edges.
//! * [`fairness::Fairness`] — wake-order policies (FIFO / LIFO /
//!   adversarial) for the semaphore and condvar.
//! * [`hooks`] — the yield-point seam controlled schedulers (`pdc-check`)
//!   install into; a no-op unless a checker is installed.
//! * [`waitgraph`] — wait-for-graph deadlock detection.
//! * [`problems`] — dining philosophers (deadlock demo + two fixes) and
//!   readers-writers scenarios.

#![warn(missing_docs)]
// Unsafe is required to hand-build lock primitives (UnsafeCell access
// guarded by atomics); every use site carries a SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod barrier;
pub mod buffer;
pub mod channel;
pub mod condvar;
pub mod fairness;
pub mod hooks;
pub mod mutex;
pub mod once;
pub mod problems;
pub mod rwlock;
pub mod semaphore;
pub mod spin;
pub mod ticket;
pub mod waitgraph;

pub use barrier::SenseBarrier;
pub use buffer::BoundedBuffer;
pub use channel::{channel, PdcReceiver, PdcSender};
pub use condvar::PdcCondvar;
pub use fairness::Fairness;
pub use mutex::PdcMutex;
pub use once::OnceCell;
pub use rwlock::PdcRwLock;
pub use semaphore::Semaphore;
pub use spin::SpinLock;
pub use ticket::TicketLock;
