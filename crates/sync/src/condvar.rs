//! A condition variable over [`crate::mutex::PdcMutex`].
//!
//! The third pillar of the CS31/CS45 synchronization toolkit (after
//! locks and semaphores): wait atomically releases the mutex and sleeps;
//! notify wakes waiters. As with POSIX condition variables, **spurious
//! wakeups are permitted** — callers must re-check their predicate in a
//! loop, and the tests demonstrate exactly that discipline.
//!
//! The atomicity argument for "release + sleep": the waiter enqueues
//! itself *before* releasing the mutex, so any notifier that observes
//! the released state also observes the queue entry; `thread::park`'s
//! token then guarantees the unpark is not lost even if it races ahead
//! of the park.

use crate::fairness::Fairness;
use crate::hooks;
use crate::mutex::{MutexGuard, PdcMutex};
use crate::spin::SpinLock;
use pdc_core::trace::{self, EventKind, SiteId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::Thread;

/// A condition variable.
pub struct PdcCondvar {
    waiters: SpinLock<VecDeque<Thread>>,
    notifications: AtomicU64,
    /// Which queued waiter `notify_one` wakes.
    fairness: Fairness,
    /// Stable analysis site id (lazily allocated; see `pdc-analyze`).
    site: SiteId,
}

impl PdcCondvar {
    /// A new condition variable with FIFO wake order.
    pub fn new() -> Self {
        PdcCondvar::with_fairness(Fairness::Fifo)
    }

    /// A condition variable with an explicit wake-order policy for
    /// `notify_one` (`notify_all` wakes everyone regardless).
    pub fn with_fairness(fairness: Fairness) -> Self {
        PdcCondvar {
            // Implementation-internal lock: keep it out of traces.
            waiters: SpinLock::untraced(VecDeque::new()),
            notifications: AtomicU64::new(0),
            fairness,
            site: SiteId::new(),
        }
    }

    /// Record a [`EventKind::Wait`]/[`EventKind::Signal`] on this
    /// condvar's site, carrying the current notification count.
    fn record_cond(&self, kind: EventKind) {
        if let Some(t) = trace::current_sync_trace() {
            if let Some(id) = self.site.get() {
                t.record(kind, id, self.notifications.load(Ordering::Relaxed));
            }
        }
    }

    /// Atomically release `guard`'s mutex and sleep; re-acquire before
    /// returning. May wake spuriously: loop on the predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex: &'a PdcMutex<T> = guard.mutex();
        // Enqueue before releasing: a notify between release and park
        // will find us and set our park token.
        self.waiters.lock().push_back(std::thread::current());
        drop(guard); // release the mutex
        hooks::park();
        let guard = mutex.lock();
        // A wakeup adopts the notifier's history: a `wait` edge (pulse
        // acquire) recorded after the mutex is re-held, so its timestamp
        // follows the notify's `signal` edge.
        self.record_cond(EventKind::Wait);
        guard
    }

    /// Wait until `pred` holds (the loop callers should always write).
    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut pred: impl FnMut(&T) -> bool,
    ) -> MutexGuard<'a, T> {
        while pred(&guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wake one waiter (if any).
    pub fn notify_one(&self) {
        hooks::yield_point();
        self.notifications.fetch_add(1, Ordering::Relaxed);
        // Publish the notifier's history (`signal` = pulse release)
        // before any waiter can wake.
        self.record_cond(EventKind::Signal);
        let w = self.fairness.select(&mut self.waiters.lock());
        if let Some(t) = w {
            hooks::unpark(&t);
        }
    }

    /// Wake every current waiter.
    pub fn notify_all(&self) {
        hooks::yield_point();
        self.notifications.fetch_add(1, Ordering::Relaxed);
        self.record_cond(EventKind::Signal);
        let all: Vec<Thread> = self.waiters.lock().drain(..).collect();
        for t in all {
            hooks::unpark(&t);
        }
    }

    /// Number of notify calls (diagnostics).
    pub fn notify_count(&self) -> u64 {
        self.notifications.load(Ordering::Relaxed)
    }
}

impl Default for PdcCondvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn wait_blocks_until_notify() {
        let m = Arc::new(PdcMutex::new(false));
        let cv = Arc::new(PdcCondvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = thread::spawn(move || {
            let g = m2.lock();
            let g = cv2.wait_while(g, |&ready| !ready);
            assert!(*g);
        });
        thread::sleep(Duration::from_millis(50));
        *m.lock() = true;
        cv.notify_one();
        h.join().unwrap();
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let m = Arc::new(PdcMutex::new(0u32));
        let cv = Arc::new(PdcCondvar::new());
        let n = 4;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
                thread::spawn(move || {
                    let g = m.lock();
                    let mut g = cv.wait_while(g, |&v| v == 0);
                    *g += 100; // count the wakeup
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(50));
        *m.lock() = 1;
        cv.notify_all();
        // Some waiters may need extra notifies if they re-sleep between
        // our store and their predicate check — keep nudging.
        for h in handles {
            while !h.is_finished() {
                cv.notify_all();
                thread::yield_now();
            }
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 1 + 100 * n);
    }

    #[test]
    fn predicate_loop_survives_spurious_wakeups() {
        let m = Arc::new(PdcMutex::new(0u32));
        let cv = Arc::new(PdcCondvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = thread::spawn(move || {
            let g = m2.lock();
            let g = cv2.wait_while(g, |&v| v < 3);
            *g
        });
        // Notify without satisfying the predicate twice (spurious-like),
        // then satisfy it.
        for step in 1..=3 {
            thread::sleep(Duration::from_millis(20));
            *m.lock() = step;
            cv.notify_one();
        }
        assert_eq!(h.join().unwrap(), 3);
    }

    #[test]
    fn bounded_buffer_via_condvar() {
        // The classic two-condvar bounded buffer, as an end-to-end check.
        struct Q {
            items: PdcMutex<VecDeque<u64>>,
            not_full: PdcCondvar,
            not_empty: PdcCondvar,
            cap: usize,
        }
        let q = Arc::new(Q {
            items: PdcMutex::new(VecDeque::new()),
            not_full: PdcCondvar::new(),
            not_empty: PdcCondvar::new(),
            cap: 4,
        });
        let n = 2_000u64;
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            for i in 0..n {
                let g = q2.items.lock();
                let mut g = q2.not_full.wait_while(g, |items| items.len() >= q2.cap);
                g.push_back(i);
                drop(g);
                q2.not_empty.notify_one();
            }
        });
        let q3 = Arc::clone(&q);
        let consumer = thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..n {
                let g = q3.items.lock();
                let mut g = q3.not_empty.wait_while(g, |items| items.is_empty());
                sum += g.pop_front().unwrap();
                drop(g);
                q3.not_full.notify_one();
            }
            sum
        });
        producer.join().unwrap();
        let sum = consumer.join().unwrap();
        assert_eq!(sum, n * (n - 1) / 2);
        assert!(q.items.lock().is_empty());
    }

    #[test]
    fn notify_with_no_waiters_is_noop() {
        let cv = PdcCondvar::new();
        cv.notify_one();
        cv.notify_all();
        assert_eq!(cv.notify_count(), 2);
    }
}
