//! Wait-for-graph deadlock detection.
//!
//! The OS course's deadlock unit: model which task waits for which
//! resource holder; a cycle in the wait-for graph is a deadlock. Used by
//! the dining-philosophers simulation in [`crate::problems`] and usable by
//! the `pdc-os` scheduler.

use std::collections::{HashMap, HashSet};

/// A wait-for graph over task ids.
#[derive(Debug, Clone, Default)]
pub struct WaitGraph {
    /// `edges[a]` = set of tasks `a` is waiting on.
    edges: HashMap<u64, HashSet<u64>>,
}

impl WaitGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `waiter` waits for `holder`.
    pub fn add_wait(&mut self, waiter: u64, holder: u64) {
        self.edges.entry(waiter).or_default().insert(holder);
    }

    /// Remove a wait edge (the resource was acquired or the wait aborted).
    pub fn remove_wait(&mut self, waiter: u64, holder: u64) {
        if let Some(set) = self.edges.get_mut(&waiter) {
            set.remove(&holder);
            if set.is_empty() {
                self.edges.remove(&waiter);
            }
        }
    }

    /// Remove a task entirely (it finished).
    pub fn remove_task(&mut self, task: u64) {
        self.edges.remove(&task);
        for set in self.edges.values_mut() {
            set.remove(&task);
        }
        self.edges.retain(|_, s| !s.is_empty());
    }

    /// Number of wait edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Find a deadlock cycle, if any, returned as the task sequence
    /// `t0 -> t1 -> ... -> t0` (first element repeated at the end is
    /// omitted; the cycle is implied).
    pub fn find_cycle(&self) -> Option<Vec<u64>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut marks: HashMap<u64, Mark> = HashMap::new();
        let mut stack: Vec<u64> = Vec::new();

        // Iterative DFS with an explicit path stack; deterministic order.
        let mut nodes: Vec<u64> = self.edges.keys().copied().collect();
        nodes.sort_unstable();
        for &start in &nodes {
            if *marks.get(&start).unwrap_or(&Mark::White) != Mark::White {
                continue;
            }
            // frames: (node, iterator over sorted successors)
            let mut frames: Vec<(u64, Vec<u64>, usize)> = Vec::new();
            let succs = |n: u64| -> Vec<u64> {
                let mut v: Vec<u64> = self
                    .edges
                    .get(&n)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                v.sort_unstable();
                v
            };
            marks.insert(start, Mark::Gray);
            stack.push(start);
            frames.push((start, succs(start), 0));
            while let Some((node, children, idx)) = frames.last_mut() {
                if *idx >= children.len() {
                    marks.insert(*node, Mark::Black);
                    stack.pop();
                    frames.pop();
                    continue;
                }
                let child = children[*idx];
                *idx += 1;
                match *marks.get(&child).unwrap_or(&Mark::White) {
                    Mark::Gray => {
                        // Found a cycle: slice the path stack from child.
                        let pos = stack.iter().position(|&n| n == child).unwrap();
                        return Some(stack[pos..].to_vec());
                    }
                    Mark::White => {
                        marks.insert(child, Mark::Gray);
                        stack.push(child);
                        let ch = succs(child);
                        frames.push((child, ch, 0));
                    }
                    Mark::Black => {}
                }
            }
        }
        None
    }

    /// Whether the graph currently encodes a deadlock.
    pub fn has_deadlock(&self) -> bool {
        self.find_cycle().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_no_deadlock() {
        assert!(!WaitGraph::new().has_deadlock());
    }

    #[test]
    fn chain_is_not_a_cycle() {
        let mut g = WaitGraph::new();
        g.add_wait(1, 2);
        g.add_wait(2, 3);
        g.add_wait(3, 4);
        assert!(!g.has_deadlock());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitGraph::new();
        g.add_wait(1, 2);
        g.add_wait(2, 1);
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&1) && cycle.contains(&2));
    }

    #[test]
    fn philosophers_cycle_detected() {
        // 5 philosophers each waiting on their left neighbor: classic ring.
        let mut g = WaitGraph::new();
        for i in 0..5 {
            g.add_wait(i, (i + 1) % 5);
        }
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 5);
    }

    #[test]
    fn breaking_one_edge_clears_deadlock() {
        let mut g = WaitGraph::new();
        for i in 0..5 {
            g.add_wait(i, (i + 1) % 5);
        }
        assert!(g.has_deadlock());
        g.remove_wait(2, 3);
        assert!(!g.has_deadlock());
    }

    #[test]
    fn remove_task_clears_its_edges() {
        let mut g = WaitGraph::new();
        g.add_wait(1, 2);
        g.add_wait(2, 1);
        g.remove_task(2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_deadlock());
    }

    #[test]
    fn self_wait_is_a_cycle() {
        let mut g = WaitGraph::new();
        g.add_wait(7, 7);
        assert_eq!(g.find_cycle().unwrap(), vec![7]);
    }

    #[test]
    fn disjoint_components_searched() {
        let mut g = WaitGraph::new();
        g.add_wait(1, 2); // acyclic component
        g.add_wait(10, 11);
        g.add_wait(11, 12);
        g.add_wait(12, 10); // cycle in second component
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
        assert!(cycle.contains(&10));
    }
}
