//! A test-and-test-and-set spinlock with exponential backoff.
//!
//! The first lock students build: one atomic flag, `compare_exchange` to
//! acquire, a plain store to release. This version adds the standard
//! refinement covered in lecture: *test-and-test-and-set* (spin on a
//! load, not on the RMW, to avoid cache-line ping-pong). The polite-spin
//! policy (pause hint + periodic yield) lives in [`crate::hooks`], which
//! doubles as the preemption seam for the `pdc-check` scheduler.

use crate::hooks;
use pdc_core::trace::{self, EventKind, SiteId};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A spinlock protecting a value of type `T`.
pub struct SpinLock<T> {
    locked: AtomicBool,
    /// Total acquisitions (for contention experiments).
    acquisitions: AtomicU64,
    /// Total spin iterations observed while waiting.
    spins: AtomicU64,
    /// Stable analysis site id (lazily allocated; see `pdc-analyze`).
    site: SiteId,
    value: UnsafeCell<T>,
}

// SAFETY: SpinLock provides mutual exclusion: only the thread that
// successfully set `locked` may touch `value`, and the guard's lifetime
// confines that access. T must be Send because the value moves between
// threads; no &T escapes without the lock, so T: Send suffices for Sync.
unsafe impl<T: Send> Sync for SpinLock<T> {}
// SAFETY: sending the whole lock between threads moves the T with it.
unsafe impl<T: Send> Send for SpinLock<T> {}

/// RAII guard: the lock is held while this exists.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// Create an unlocked spinlock around `value`.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            acquisitions: AtomicU64::new(0),
            spins: AtomicU64::new(0),
            site: SiteId::new(),
            value: UnsafeCell::new(value),
        }
    }

    /// An unlocked spinlock that never records acquire/release events —
    /// for implementation-internal locks (waiter queues) whose traffic
    /// would pollute race/deadlock analysis.
    pub const fn untraced(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            acquisitions: AtomicU64::new(0),
            spins: AtomicU64::new(0),
            site: SiteId::disabled(),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire the lock, spinning until available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        // Untraced locks guard implementation-internal queues; they are
        // not user-visible synchronization steps, so they are not
        // preemption points either (they never block under a checker:
        // no yield point ever splits their critical sections).
        if !self.site.is_disabled() {
            hooks::yield_point();
        }
        loop {
            // Acquire ordering: pairs with the Release store in unlock so
            // everything the previous holder wrote is visible to us.
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
            // Test-and-test-and-set: spin read-only until it looks free.
            let mut local_spins = 0u32;
            while self.locked.load(Ordering::Relaxed) {
                hooks::spin_wait(&mut local_spins, &self.site);
            }
            self.spins.fetch_add(local_spins as u64, Ordering::Relaxed);
        }
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_EXCLUSIVE);
        SpinGuard { lock: self }
    }

    /// Try to acquire without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.acquisitions.fetch_add(1, Ordering::Relaxed);
            trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_EXCLUSIVE);
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Total successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Total observed waiting iterations (a contention proxy).
    pub fn contention_spins(&self) -> u64 {
        self.spins.load(Ordering::Relaxed)
    }

    /// Consume the lock and return the value (no synchronization needed:
    /// `self` by value proves exclusive ownership).
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Exclusive access through `&mut self` (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while the lock is held, so no
        // other thread can be accessing the value.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus &mut self gives unique access to the
        // guard, so no aliasing mutable references exist.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        // The trace event goes first so in logical-timestamp order this
        // release precedes any acquire it enables.
        trace::record_sync_site(EventKind::Release, &self.lock.site, trace::SYNC_EXCLUSIVE);
        // Release ordering: publishes our writes to the next acquirer.
        self.lock.locked.store(false, Ordering::Release);
        hooks::site_changed(&self.lock.site);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("SpinLock").field("value", &*g).finish(),
            None => f.write_str("SpinLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_thread_lock_unlock() {
        let l = SpinLock::new(5);
        {
            let mut g = l.lock();
            *g += 1;
        }
        assert_eq!(*l.lock(), 6);
        assert_eq!(l.acquisitions(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = SpinLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn counter_is_race_free_across_threads() {
        let l = Arc::new(SpinLock::new(0u64));
        let threads = 4;
        let iters = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..iters {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), threads * iters);
    }

    #[test]
    fn guard_protects_compound_invariant() {
        // Two fields that must stay equal; without mutual exclusion the
        // check inside the lock would trip.
        let l = Arc::new(SpinLock::new((0u64, 0u64)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..5_000 {
                        let mut g = l.lock();
                        g.0 += 1;
                        // A context switch here must not be observable.
                        g.1 += 1;
                        assert_eq!(g.0, g.1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = l.lock();
        assert_eq!(g.0, 20_000);
        assert_eq!(g.1, 20_000);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut l = SpinLock::new(7);
        *l.get_mut() = 8;
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn debug_formatting() {
        let l = SpinLock::new(3);
        assert!(format!("{l:?}").contains('3'));
        let g = l.lock();
        assert!(format!("{l:?}").contains("locked"));
        drop(g);
    }
}
