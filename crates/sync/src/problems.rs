//! Classic synchronization problems: dining philosophers.
//!
//! The lab sequence the paper describes ("practice with synchronization
//! problems and with solving them using Pthread synchronization
//! primitives") centers on demonstrating deadlock and then fixing it.
//! This module provides both:
//!
//! 1. A **deterministic simulation** ([`simulate`]) in which philosopher
//!    state machines advance under an explicit schedule, forks are
//!    resources, and deadlock is *detected* via the wait-for graph — so a
//!    test can prove "the naive strategy deadlocks under this schedule"
//!    without hanging a real thread.
//! 2. A **real threaded run** ([`run_threaded`]) of the deadlock-free
//!    strategies on actual [`crate::spin::SpinLock`] forks, verifying
//!    that every philosopher eats.

use crate::semaphore::Semaphore;
use crate::spin::SpinLock;
use crate::waitgraph::WaitGraph;
use pdc_core::trace::{self, EventKind, TraceSession};
use std::sync::Arc;

/// Fork-acquisition strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Everyone picks up the left fork first — deadlocks under the
    /// all-grab-left schedule.
    Naive,
    /// Global resource ordering: lower-numbered fork first — deadlock-free
    /// (no cycle can form in the acquisition order).
    Ordered,
    /// An arbitrator (room semaphore) admits at most `n-1` philosophers to
    /// the table — deadlock-free (pigeonhole: someone gets both forks).
    Arbitrator,
}

/// Result of a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Whether the run ended in a detected deadlock.
    pub deadlocked: bool,
    /// The deadlock cycle (philosopher ids), if any.
    pub cycle: Option<Vec<u64>>,
    /// Meals eaten per philosopher.
    pub meals: Vec<u32>,
    /// Simulation steps executed.
    pub steps: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pc {
    AcquireRoom,
    AcquireFirst,
    AcquireSecond,
    Release,
    Done,
}

struct Phil {
    pc: Pc,
    meals_left: u32,
    first: usize,
    second: usize,
}

/// Deterministically simulate `n` philosophers eating `meals` meals each
/// under the given `strategy`.
///
/// `schedule` yields philosopher indices; each step advances that
/// philosopher by one action if it is runnable (not blocked on a held
/// fork). The run ends when all philosophers finish, when the schedule is
/// exhausted (treated as round-robin thereafter, up to `max_steps`), or
/// when deadlock is detected.
pub fn simulate(
    strategy: Strategy,
    n: usize,
    meals: u32,
    schedule: &[usize],
    max_steps: u64,
) -> SimOutcome {
    simulate_inner(strategy, n, meals, schedule, max_steps, None).outcome
}

/// A [`simulate_traced`] run plus the analysis identities it recorded
/// under, so tests can assert which sites form a reported cycle.
#[derive(Debug)]
pub struct TracedSim {
    /// The simulation outcome (identical to an untraced [`simulate`]).
    pub outcome: SimOutcome,
    /// Trace site id of each fork, indexed by fork number.
    pub fork_sites: Vec<u64>,
    /// Trace site id of the arbitrator's room semaphore (recorded as a
    /// sync pulse; only used by [`Strategy::Arbitrator`]).
    pub room_site: u64,
}

/// [`simulate`], additionally recording every fork acquisition/release
/// (and room admission, for the arbitrator) as `acquire`/`release`
/// events in `session` — one trace actor per philosopher. This is how
/// the deterministic philosophers feed `pdc-analyze`: a *successful*
/// naive run still exhibits the cyclic fork-acquisition order that
/// predicts the deadlock an unlucky schedule would hit.
pub fn simulate_traced(
    strategy: Strategy,
    n: usize,
    meals: u32,
    schedule: &[usize],
    max_steps: u64,
    session: &TraceSession,
) -> TracedSim {
    simulate_inner(strategy, n, meals, schedule, max_steps, Some(session))
}

struct SimTrace {
    phils: Vec<trace::ThreadTrace>,
    fork_sites: Vec<u64>,
    room_site: u64,
}

fn simulate_inner(
    strategy: Strategy,
    n: usize,
    meals: u32,
    schedule: &[usize],
    max_steps: u64,
    session: Option<&TraceSession>,
) -> TracedSim {
    assert!(n >= 2, "need at least two philosophers");
    let tracer = session.map(|s| SimTrace {
        phils: (0..n).map(|i| s.thread(i as u32)).collect(),
        fork_sites: (0..n).map(|_| trace::next_site_id()).collect(),
        room_site: trace::next_site_id(),
    });
    let mut forks: Vec<Option<usize>> = vec![None; n]; // holder
    let mut room_used = 0usize; // arbitrator admissions
    let room_cap = n - 1;
    let mut phils: Vec<Phil> = (0..n)
        .map(|i| {
            let left = i;
            let right = (i + 1) % n;
            let (first, second) = match strategy {
                Strategy::Naive | Strategy::Arbitrator => (left, right),
                Strategy::Ordered => (left.min(right), left.max(right)),
            };
            Phil {
                pc: if strategy == Strategy::Arbitrator {
                    Pc::AcquireRoom
                } else {
                    Pc::AcquireFirst
                },
                meals_left: meals,
                first,
                second,
            }
        })
        .collect();
    let mut meals_eaten = vec![0u32; n];
    let mut steps = 0u64;
    let mut sched_iter = schedule.iter().copied().chain((0..).map(|k| k % n));

    let finish = |deadlocked, cycle, meals: Vec<u32>, steps, tracer: Option<SimTrace>| TracedSim {
        outcome: SimOutcome {
            deadlocked,
            cycle,
            meals,
            steps,
        },
        fork_sites: tracer
            .as_ref()
            .map(|t| t.fork_sites.clone())
            .unwrap_or_default(),
        room_site: tracer.as_ref().map(|t| t.room_site).unwrap_or(0),
    };

    while steps < max_steps {
        if phils.iter().all(|p| p.pc == Pc::Done) {
            return finish(false, None, meals_eaten, steps, tracer);
        }
        let i = sched_iter.next().expect("infinite schedule");
        let i = i % n;
        steps += 1;
        let (first, second) = (phils[i].first, phils[i].second);
        match phils[i].pc {
            Pc::Done => {}
            Pc::AcquireRoom => {
                if room_used < room_cap {
                    room_used += 1;
                    phils[i].pc = Pc::AcquireFirst;
                    if let Some(t) = &tracer {
                        t.phils[i].record(EventKind::Acquire, t.room_site, trace::SYNC_PULSE);
                    }
                }
                // Waiting on the room is not a fork wait: no graph edge
                // (the arbitrator cannot be part of a fork cycle).
            }
            Pc::AcquireFirst => {
                if forks[first].is_none() {
                    forks[first] = Some(i);
                    phils[i].pc = Pc::AcquireSecond;
                    if let Some(t) = &tracer {
                        t.phils[i].record(
                            EventKind::Acquire,
                            t.fork_sites[first],
                            trace::SYNC_EXCLUSIVE,
                        );
                    }
                }
            }
            Pc::AcquireSecond => {
                if forks[second].is_none() {
                    forks[second] = Some(i);
                    phils[i].pc = Pc::Release;
                    if let Some(t) = &tracer {
                        t.phils[i].record(
                            EventKind::Acquire,
                            t.fork_sites[second],
                            trace::SYNC_EXCLUSIVE,
                        );
                    }
                }
            }
            Pc::Release => {
                // Eat, then put both forks down.
                meals_eaten[i] += 1;
                forks[first] = None;
                forks[second] = None;
                if let Some(t) = &tracer {
                    t.phils[i].record(
                        EventKind::Release,
                        t.fork_sites[second],
                        trace::SYNC_EXCLUSIVE,
                    );
                    t.phils[i].record(
                        EventKind::Release,
                        t.fork_sites[first],
                        trace::SYNC_EXCLUSIVE,
                    );
                }
                if strategy == Strategy::Arbitrator {
                    room_used -= 1;
                    if let Some(t) = &tracer {
                        t.phils[i].record(EventKind::Release, t.room_site, trace::SYNC_PULSE);
                    }
                }
                phils[i].meals_left -= 1;
                phils[i].pc = if phils[i].meals_left == 0 {
                    Pc::Done
                } else if strategy == Strategy::Arbitrator {
                    Pc::AcquireRoom
                } else {
                    Pc::AcquireFirst
                };
            }
        }
        // Deadlock check: build the wait-for graph from the *current*
        // state (no stale edges) and look for a cycle.
        let mut graph = WaitGraph::new();
        for (p, phil) in phils.iter().enumerate() {
            let want = match phil.pc {
                Pc::AcquireFirst => Some(phil.first),
                Pc::AcquireSecond => Some(phil.second),
                _ => None,
            };
            if let Some(f) = want {
                if let Some(holder) = forks[f] {
                    if holder != p {
                        graph.add_wait(p as u64, holder as u64);
                    }
                }
            }
        }
        if let Some(cycle) = graph.find_cycle() {
            return finish(true, Some(cycle), meals_eaten, steps, tracer);
        }
    }
    finish(false, None, meals_eaten, steps, tracer)
}

/// A "lucky" sequential schedule: each philosopher runs to completion
/// (room, first, second, release — extra steps on a finished philosopher
/// are no-ops) before the next moves, so even [`Strategy::Naive`]
/// finishes every meal. The acquisition *order* it records is still
/// cyclic — the schedule that "worked when I tested it" is exactly what
/// `pdc-analyze`'s lock-order graph exists to catch.
pub fn lucky_sequential_schedule(n: usize, meals: u32) -> Vec<usize> {
    let mut s = Vec::new();
    for _ in 0..meals {
        for i in 0..n {
            s.extend([i; 4]);
        }
    }
    s
}

/// The adversarial schedule that deadlocks the naive strategy: every
/// philosopher takes exactly one step (grabbing their first fork), then
/// everyone tries their second.
pub fn all_grab_left_schedule(n: usize) -> Vec<usize> {
    let mut s: Vec<usize> = (0..n).collect();
    s.extend(0..n);
    s
}

/// Outcome of a threaded philosophers run.
#[derive(Debug, Clone)]
pub struct ThreadedOutcome {
    /// Meals eaten per philosopher (always `meals` on success).
    pub meals: Vec<u32>,
}

/// Run dining philosophers on real threads with real locks, using a
/// deadlock-free strategy.
///
/// # Panics
/// Panics if called with [`Strategy::Naive`] — that strategy can deadlock
/// for real, which would hang the test suite.
pub fn run_threaded(strategy: Strategy, n: usize, meals: u32) -> ThreadedOutcome {
    assert!(
        strategy != Strategy::Naive,
        "refusing to run a deadlock-prone strategy on real threads"
    );
    assert!(n >= 2);
    let forks: Arc<Vec<SpinLock<()>>> = Arc::new((0..n).map(|_| SpinLock::new(())).collect());
    let room = Arc::new(Semaphore::new(n as i64 - 1));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let forks = Arc::clone(&forks);
            let room = Arc::clone(&room);
            std::thread::spawn(move || {
                let left = i;
                let right = (i + 1) % n;
                let (first, second) = match strategy {
                    Strategy::Ordered => (left.min(right), left.max(right)),
                    Strategy::Arbitrator | Strategy::Naive => (left, right),
                };
                let mut eaten = 0u32;
                for _ in 0..meals {
                    if strategy == Strategy::Arbitrator {
                        room.acquire();
                    }
                    let _f1 = forks[first].lock();
                    let _f2 = forks[second].lock();
                    eaten += 1; // eat
                    drop(_f2);
                    drop(_f1);
                    if strategy == Strategy::Arbitrator {
                        room.release();
                    }
                    std::thread::yield_now(); // think
                }
                eaten
            })
        })
        .collect();
    let meals_vec = handles.into_iter().map(|h| h.join().unwrap()).collect();
    ThreadedOutcome { meals: meals_vec }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_deadlocks_under_adversarial_schedule() {
        let n = 5;
        let out = simulate(Strategy::Naive, n, 1, &all_grab_left_schedule(n), 10_000);
        assert!(out.deadlocked, "naive must deadlock: {out:?}");
        let cycle = out.cycle.unwrap();
        assert_eq!(cycle.len(), n, "full ring deadlock");
        assert!(out.meals.iter().all(|&m| m == 0), "no one ate");
    }

    #[test]
    fn ordered_never_deadlocks_same_schedule() {
        let n = 5;
        let out = simulate(Strategy::Ordered, n, 3, &all_grab_left_schedule(n), 100_000);
        assert!(!out.deadlocked);
        assert!(out.meals.iter().all(|&m| m == 3), "{:?}", out.meals);
    }

    #[test]
    fn arbitrator_never_deadlocks_same_schedule() {
        let n = 5;
        let out = simulate(
            Strategy::Arbitrator,
            n,
            3,
            &all_grab_left_schedule(n),
            100_000,
        );
        assert!(!out.deadlocked);
        assert!(out.meals.iter().all(|&m| m == 3));
    }

    #[test]
    fn naive_can_succeed_under_lucky_schedule() {
        // Sequential schedule: each philosopher eats completely before the
        // next moves — no deadlock even for the naive strategy. This is
        // the "it worked when I tested it!" lesson about race conditions.
        let n = 5;
        let mut schedule = Vec::new();
        for i in 0..n {
            schedule.extend([i; 3]); // first, second, release
        }
        let out = simulate(Strategy::Naive, n, 1, &schedule, 1_000);
        assert!(!out.deadlocked);
        assert!(out.meals.iter().all(|&m| m == 1));
    }

    #[test]
    fn deadlock_detected_for_many_sizes() {
        for n in [2usize, 3, 7, 12] {
            let out = simulate(Strategy::Naive, n, 1, &all_grab_left_schedule(n), 10_000);
            assert!(out.deadlocked, "n={n} should deadlock");
            assert_eq!(out.cycle.unwrap().len(), n);
        }
    }

    #[test]
    fn threaded_ordered_all_eat() {
        let out = run_threaded(Strategy::Ordered, 5, 50);
        assert!(out.meals.iter().all(|&m| m == 50), "{:?}", out.meals);
    }

    #[test]
    fn threaded_arbitrator_all_eat() {
        let out = run_threaded(Strategy::Arbitrator, 5, 50);
        assert!(out.meals.iter().all(|&m| m == 50), "{:?}", out.meals);
    }

    #[test]
    #[should_panic(expected = "deadlock-prone")]
    fn threaded_naive_refused() {
        run_threaded(Strategy::Naive, 5, 1);
    }

    #[test]
    fn traced_simulation_matches_untraced_and_records_events() {
        let n = 5;
        let schedule = lucky_sequential_schedule(n, 1);
        let plain = simulate(Strategy::Naive, n, 1, &schedule, 1_000);
        let session = TraceSession::new();
        let traced = simulate_traced(Strategy::Naive, n, 1, &schedule, 1_000, &session);
        assert_eq!(traced.outcome, plain, "tracing must not change the run");
        assert!(!traced.outcome.deadlocked);
        assert_eq!(traced.fork_sites.len(), n);
        let events = session.events();
        // Each philosopher: 2 acquires + 2 releases for one meal.
        assert_eq!(events.len(), 4 * n);
        let acquires = events
            .iter()
            .filter(|e| e.kind == EventKind::Acquire)
            .count();
        assert_eq!(acquires, 2 * n);
        // Fork sites are exclusive-mode; no pulses without an arbitrator.
        assert!(events.iter().all(|e| e.b == trace::SYNC_EXCLUSIVE));
    }

    #[test]
    fn traced_arbitrator_records_room_pulses() {
        let n = 4;
        let session = TraceSession::new();
        let traced = simulate_traced(
            Strategy::Arbitrator,
            n,
            1,
            &lucky_sequential_schedule(n, 1),
            1_000,
            &session,
        );
        assert!(!traced.outcome.deadlocked);
        let events = session.events();
        let room_acquires = events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Acquire && e.a == traced.room_site && e.b == trace::SYNC_PULSE
            })
            .count();
        let room_releases = events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Release && e.a == traced.room_site && e.b == trace::SYNC_PULSE
            })
            .count();
        assert_eq!(room_acquires, n, "one room admission per meal");
        assert_eq!(room_releases, n, "every admission released");
    }
}
