//! Classic synchronization problems: dining philosophers.
//!
//! The lab sequence the paper describes ("practice with synchronization
//! problems and with solving them using Pthread synchronization
//! primitives") centers on demonstrating deadlock and then fixing it.
//! This module provides both:
//!
//! 1. A **deterministic simulation** ([`simulate`]) in which philosopher
//!    state machines advance under an explicit schedule, forks are
//!    resources, and deadlock is *detected* via the wait-for graph — so a
//!    test can prove "the naive strategy deadlocks under this schedule"
//!    without hanging a real thread.
//! 2. A **real threaded run** ([`run_threaded`]) of the deadlock-free
//!    strategies on actual [`crate::spin::SpinLock`] forks, verifying
//!    that every philosopher eats.

use crate::semaphore::Semaphore;
use crate::spin::SpinLock;
use crate::waitgraph::WaitGraph;
use std::sync::Arc;

/// Fork-acquisition strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Everyone picks up the left fork first — deadlocks under the
    /// all-grab-left schedule.
    Naive,
    /// Global resource ordering: lower-numbered fork first — deadlock-free
    /// (no cycle can form in the acquisition order).
    Ordered,
    /// An arbitrator (room semaphore) admits at most `n-1` philosophers to
    /// the table — deadlock-free (pigeonhole: someone gets both forks).
    Arbitrator,
}

/// Result of a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Whether the run ended in a detected deadlock.
    pub deadlocked: bool,
    /// The deadlock cycle (philosopher ids), if any.
    pub cycle: Option<Vec<u64>>,
    /// Meals eaten per philosopher.
    pub meals: Vec<u32>,
    /// Simulation steps executed.
    pub steps: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pc {
    AcquireRoom,
    AcquireFirst,
    AcquireSecond,
    Release,
    Done,
}

struct Phil {
    pc: Pc,
    meals_left: u32,
    first: usize,
    second: usize,
}

/// Deterministically simulate `n` philosophers eating `meals` meals each
/// under the given `strategy`.
///
/// `schedule` yields philosopher indices; each step advances that
/// philosopher by one action if it is runnable (not blocked on a held
/// fork). The run ends when all philosophers finish, when the schedule is
/// exhausted (treated as round-robin thereafter, up to `max_steps`), or
/// when deadlock is detected.
pub fn simulate(
    strategy: Strategy,
    n: usize,
    meals: u32,
    schedule: &[usize],
    max_steps: u64,
) -> SimOutcome {
    assert!(n >= 2, "need at least two philosophers");
    let mut forks: Vec<Option<usize>> = vec![None; n]; // holder
    let mut room_used = 0usize; // arbitrator admissions
    let room_cap = n - 1;
    let mut phils: Vec<Phil> = (0..n)
        .map(|i| {
            let left = i;
            let right = (i + 1) % n;
            let (first, second) = match strategy {
                Strategy::Naive | Strategy::Arbitrator => (left, right),
                Strategy::Ordered => (left.min(right), left.max(right)),
            };
            Phil {
                pc: if strategy == Strategy::Arbitrator {
                    Pc::AcquireRoom
                } else {
                    Pc::AcquireFirst
                },
                meals_left: meals,
                first,
                second,
            }
        })
        .collect();
    let mut meals_eaten = vec![0u32; n];
    let mut steps = 0u64;
    let mut sched_iter = schedule.iter().copied().chain((0..).map(|k| k % n));

    while steps < max_steps {
        if phils.iter().all(|p| p.pc == Pc::Done) {
            return SimOutcome {
                deadlocked: false,
                cycle: None,
                meals: meals_eaten,
                steps,
            };
        }
        let i = sched_iter.next().expect("infinite schedule");
        let i = i % n;
        steps += 1;
        let (first, second) = (phils[i].first, phils[i].second);
        match phils[i].pc {
            Pc::Done => {}
            Pc::AcquireRoom => {
                if room_used < room_cap {
                    room_used += 1;
                    phils[i].pc = Pc::AcquireFirst;
                }
                // Waiting on the room is not a fork wait: no graph edge
                // (the arbitrator cannot be part of a fork cycle).
            }
            Pc::AcquireFirst => {
                if forks[first].is_none() {
                    forks[first] = Some(i);
                    phils[i].pc = Pc::AcquireSecond;
                }
            }
            Pc::AcquireSecond => {
                if forks[second].is_none() {
                    forks[second] = Some(i);
                    phils[i].pc = Pc::Release;
                }
            }
            Pc::Release => {
                // Eat, then put both forks down.
                meals_eaten[i] += 1;
                forks[first] = None;
                forks[second] = None;
                if strategy == Strategy::Arbitrator {
                    room_used -= 1;
                }
                phils[i].meals_left -= 1;
                phils[i].pc = if phils[i].meals_left == 0 {
                    Pc::Done
                } else if strategy == Strategy::Arbitrator {
                    Pc::AcquireRoom
                } else {
                    Pc::AcquireFirst
                };
            }
        }
        // Deadlock check: build the wait-for graph from the *current*
        // state (no stale edges) and look for a cycle.
        let mut graph = WaitGraph::new();
        for (p, phil) in phils.iter().enumerate() {
            let want = match phil.pc {
                Pc::AcquireFirst => Some(phil.first),
                Pc::AcquireSecond => Some(phil.second),
                _ => None,
            };
            if let Some(f) = want {
                if let Some(holder) = forks[f] {
                    if holder != p {
                        graph.add_wait(p as u64, holder as u64);
                    }
                }
            }
        }
        if let Some(cycle) = graph.find_cycle() {
            return SimOutcome {
                deadlocked: true,
                cycle: Some(cycle),
                meals: meals_eaten,
                steps,
            };
        }
    }
    SimOutcome {
        deadlocked: false,
        cycle: None,
        meals: meals_eaten,
        steps,
    }
}

/// The adversarial schedule that deadlocks the naive strategy: every
/// philosopher takes exactly one step (grabbing their first fork), then
/// everyone tries their second.
pub fn all_grab_left_schedule(n: usize) -> Vec<usize> {
    let mut s: Vec<usize> = (0..n).collect();
    s.extend(0..n);
    s
}

/// Outcome of a threaded philosophers run.
#[derive(Debug, Clone)]
pub struct ThreadedOutcome {
    /// Meals eaten per philosopher (always `meals` on success).
    pub meals: Vec<u32>,
}

/// Run dining philosophers on real threads with real locks, using a
/// deadlock-free strategy.
///
/// # Panics
/// Panics if called with [`Strategy::Naive`] — that strategy can deadlock
/// for real, which would hang the test suite.
pub fn run_threaded(strategy: Strategy, n: usize, meals: u32) -> ThreadedOutcome {
    assert!(
        strategy != Strategy::Naive,
        "refusing to run a deadlock-prone strategy on real threads"
    );
    assert!(n >= 2);
    let forks: Arc<Vec<SpinLock<()>>> = Arc::new((0..n).map(|_| SpinLock::new(())).collect());
    let room = Arc::new(Semaphore::new(n as i64 - 1));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let forks = Arc::clone(&forks);
            let room = Arc::clone(&room);
            std::thread::spawn(move || {
                let left = i;
                let right = (i + 1) % n;
                let (first, second) = match strategy {
                    Strategy::Ordered => (left.min(right), left.max(right)),
                    Strategy::Arbitrator | Strategy::Naive => (left, right),
                };
                let mut eaten = 0u32;
                for _ in 0..meals {
                    if strategy == Strategy::Arbitrator {
                        room.acquire();
                    }
                    let _f1 = forks[first].lock();
                    let _f2 = forks[second].lock();
                    eaten += 1; // eat
                    drop(_f2);
                    drop(_f1);
                    if strategy == Strategy::Arbitrator {
                        room.release();
                    }
                    std::thread::yield_now(); // think
                }
                eaten
            })
        })
        .collect();
    let meals_vec = handles.into_iter().map(|h| h.join().unwrap()).collect();
    ThreadedOutcome { meals: meals_vec }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_deadlocks_under_adversarial_schedule() {
        let n = 5;
        let out = simulate(Strategy::Naive, n, 1, &all_grab_left_schedule(n), 10_000);
        assert!(out.deadlocked, "naive must deadlock: {out:?}");
        let cycle = out.cycle.unwrap();
        assert_eq!(cycle.len(), n, "full ring deadlock");
        assert!(out.meals.iter().all(|&m| m == 0), "no one ate");
    }

    #[test]
    fn ordered_never_deadlocks_same_schedule() {
        let n = 5;
        let out = simulate(Strategy::Ordered, n, 3, &all_grab_left_schedule(n), 100_000);
        assert!(!out.deadlocked);
        assert!(out.meals.iter().all(|&m| m == 3), "{:?}", out.meals);
    }

    #[test]
    fn arbitrator_never_deadlocks_same_schedule() {
        let n = 5;
        let out = simulate(
            Strategy::Arbitrator,
            n,
            3,
            &all_grab_left_schedule(n),
            100_000,
        );
        assert!(!out.deadlocked);
        assert!(out.meals.iter().all(|&m| m == 3));
    }

    #[test]
    fn naive_can_succeed_under_lucky_schedule() {
        // Sequential schedule: each philosopher eats completely before the
        // next moves — no deadlock even for the naive strategy. This is
        // the "it worked when I tested it!" lesson about race conditions.
        let n = 5;
        let mut schedule = Vec::new();
        for i in 0..n {
            schedule.extend([i; 3]); // first, second, release
        }
        let out = simulate(Strategy::Naive, n, 1, &schedule, 1_000);
        assert!(!out.deadlocked);
        assert!(out.meals.iter().all(|&m| m == 1));
    }

    #[test]
    fn deadlock_detected_for_many_sizes() {
        for n in [2usize, 3, 7, 12] {
            let out = simulate(Strategy::Naive, n, 1, &all_grab_left_schedule(n), 10_000);
            assert!(out.deadlocked, "n={n} should deadlock");
            assert_eq!(out.cycle.unwrap().len(), n);
        }
    }

    #[test]
    fn threaded_ordered_all_eat() {
        let out = run_threaded(Strategy::Ordered, 5, 50);
        assert!(out.meals.iter().all(|&m| m == 50), "{:?}", out.meals);
    }

    #[test]
    fn threaded_arbitrator_all_eat() {
        let out = run_threaded(Strategy::Arbitrator, 5, 50);
        assert!(out.meals.iter().all(|&m| m == 50), "{:?}", out.meals);
    }

    #[test]
    #[should_panic(expected = "deadlock-prone")]
    fn threaded_naive_refused() {
        run_threaded(Strategy::Naive, 5, 1);
    }
}
