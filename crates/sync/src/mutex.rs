//! A parking mutex: spin briefly, then sleep.
//!
//! Pure spinlocks burn CPU while waiting; the OS-backed mutex of the
//! lecture parks the waiting thread instead. Real implementations use
//! futexes; our portable stand-in is `thread::park`/`unpark` plus an
//! explicit waiter queue. The acquisition protocol is the standard
//! spin-then-park with barging (a newly arriving thread may grab the lock
//! ahead of parked waiters — the throughput-friendly policy).

use crate::hooks;
use crate::spin::SpinLock;
use pdc_core::trace::{self, EventKind, SiteId};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread::Thread;

/// A blocking mutex protecting `T`.
pub struct PdcMutex<T> {
    locked: AtomicBool,
    waiters: SpinLock<VecDeque<Thread>>,
    parks: AtomicU64,
    /// Stable analysis site id (lazily allocated; see `pdc-analyze`).
    site: SiteId,
    value: UnsafeCell<T>,
}

// SAFETY: mutual exclusion via the `locked` flag; only the CAS winner
// accesses `value`, scoped by the guard (see SpinLock).
unsafe impl<T: Send> Sync for PdcMutex<T> {}
// SAFETY: moving the mutex moves the T.
unsafe impl<T: Send> Send for PdcMutex<T> {}

/// RAII guard for [`PdcMutex`].
pub struct MutexGuard<'a, T> {
    lock: &'a PdcMutex<T>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// The mutex this guard locks (used by [`crate::condvar::PdcCondvar`]
    /// to re-acquire after waiting).
    pub fn mutex(&self) -> &'a PdcMutex<T> {
        self.lock
    }
}

/// How long to spin before parking (iterations of the fast retry loop).
const SPIN_LIMIT: u32 = 64;

impl<T> PdcMutex<T> {
    /// Create an unlocked mutex.
    pub fn new(value: T) -> Self {
        PdcMutex {
            locked: AtomicBool::new(false),
            // The waiter queue's lock is implementation detail, not a
            // user-visible synchronisation site: keep it out of traces.
            waiters: SpinLock::untraced(VecDeque::new()),
            parks: AtomicU64::new(0),
            site: SiteId::new(),
            value: UnsafeCell::new(value),
        }
    }

    fn acquired(&self) -> MutexGuard<'_, T> {
        trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_EXCLUSIVE);
        MutexGuard { lock: self }
    }

    fn try_acquire(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquire the mutex, parking the thread if it stays contended.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        hooks::yield_point();
        // Fast path + bounded spin. Under a checker the spin is pure
        // noise (64 identical decision points per contended acquire), so
        // checked tasks go straight to the deterministic park protocol.
        if !hooks::is_checked() {
            for _ in 0..SPIN_LIMIT {
                if self.try_acquire() {
                    return self.acquired();
                }
                std::hint::spin_loop();
            }
        } else if self.try_acquire() {
            return self.acquired();
        }
        // Slow path: enqueue, re-check, park.
        loop {
            self.waiters.lock().push_back(std::thread::current());
            // Re-check after enqueueing: if the lock was released in
            // between, our queue entry may never be popped, so we must
            // not park unconditionally. A stale queue entry is harmless:
            // an eventual spurious unpark lands on a thread whose parks
            // are all in retry loops.
            if self.try_acquire() {
                return self.acquired();
            }
            self.parks.fetch_add(1, Ordering::Relaxed);
            hooks::park();
            if self.try_acquire() {
                return self.acquired();
            }
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.try_acquire().then(|| self.acquired())
    }

    /// Number of times any thread parked on this mutex (contention metric
    /// students compare against the spinlock's spin counts).
    pub fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard implies the lock is held by this thread.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; &mut self prevents guard aliasing.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // The trace event precedes the releasing store so that in
        // logical-timestamp order no acquire can observe this release
        // before it was recorded.
        trace::record_sync_site(EventKind::Release, &self.lock.site, trace::SYNC_EXCLUSIVE);
        // Release the lock first (Release pairs with acquirers' Acquire),
        // then wake one waiter, if any. Waking after releasing guarantees
        // the woken thread can succeed immediately.
        self.lock.locked.store(false, Ordering::Release);
        hooks::site_changed(&self.lock.site);
        let waiter = self.lock.waiters.lock().pop_front();
        if let Some(t) = waiter {
            hooks::unpark(&t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn uncontended_lock() {
        let m = PdcMutex::new(10);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 15);
    }

    #[test]
    fn try_lock_contention() {
        let m = PdcMutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(PdcMutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..25_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 100_000);
    }

    #[test]
    fn parked_waiter_gets_woken() {
        let m = Arc::new(PdcMutex::new(0));
        let g = m.lock();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            *m2.lock() = 99; // must park until main drops the guard
        });
        // Give the thread time to reach the parked state.
        thread::sleep(Duration::from_millis(50));
        drop(g);
        h.join().unwrap();
        assert_eq!(*m.lock(), 99);
    }

    #[test]
    fn long_hold_causes_parks_not_spins() {
        let m = Arc::new(PdcMutex::new(()));
        let g = m.lock();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let _g = m.lock();
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(100));
        assert!(m.park_count() >= 1, "waiters should have parked");
        drop(g);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn guard_released_on_panic_is_not_poisoned() {
        // Our teaching mutex has no poisoning: a panicking holder simply
        // releases (the Drop runs during unwinding).
        let m = Arc::new(PdcMutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // Must still be acquirable.
        assert_eq!(*m.lock(), 1);
    }
}
