//! A writer-preferring readers-writer lock.
//!
//! The readers-writers problem from CS45: many readers may share the
//! lock, writers need exclusivity, and naive "readers first" policies
//! starve writers. This implementation packs the state into one atomic
//! word and gives *waiting writers* preference: once a writer announces
//! itself, new readers hold back, so writers cannot starve (readers can,
//! under a continuous writer stream — the documented trade-off).
//!
//! State word layout: bit 63 = writer active; bits 32..63 = writers
//! waiting; bits 0..32 = active readers.

use crate::hooks;
use pdc_core::trace::{self, EventKind, SiteId};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

const WRITER_ACTIVE: u64 = 1 << 63;
const WAITING_ONE: u64 = 1 << 32;
const WAITING_MASK: u64 = ((1u64 << 31) - 1) << 32;
const READERS_MASK: u64 = (1u64 << 32) - 1;

/// A readers-writer lock protecting `T`.
pub struct PdcRwLock<T> {
    state: AtomicU64,
    /// Stable analysis site id (lazily allocated; see `pdc-analyze`).
    site: SiteId,
    value: UnsafeCell<T>,
}

// SAFETY: the state machine guarantees either one writer (unique access)
// or N readers (shared access); guards scope the references. Readers get
// &T so T: Send + Sync is required for Sync.
unsafe impl<T: Send + Sync> Sync for PdcRwLock<T> {}
// SAFETY: moving the lock moves the T.
unsafe impl<T: Send> Send for PdcRwLock<T> {}

/// Shared (read) guard.
pub struct ReadGuard<'a, T> {
    lock: &'a PdcRwLock<T>,
}

/// Exclusive (write) guard.
pub struct WriteGuard<'a, T> {
    lock: &'a PdcRwLock<T>,
}

impl<T> PdcRwLock<T> {
    /// Create an unlocked lock.
    pub const fn new(value: T) -> Self {
        PdcRwLock {
            state: AtomicU64::new(0),
            site: SiteId::new(),
            value: UnsafeCell::new(value),
        }
    }

    fn read_acquired(&self) -> ReadGuard<'_, T> {
        trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_SHARED);
        ReadGuard { lock: self }
    }

    fn write_acquired(&self) -> WriteGuard<'_, T> {
        trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_EXCLUSIVE);
        WriteGuard { lock: self }
    }

    /// Acquire shared access. Blocks (spins with yields) while a writer is
    /// active **or waiting** — the writer-preference rule.
    pub fn read(&self) -> ReadGuard<'_, T> {
        hooks::yield_point();
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & (WRITER_ACTIVE | WAITING_MASK) == 0 {
                // No writer active or waiting: try to join the readers.
                if self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return self.read_acquired();
                }
                continue;
            }
            hooks::spin_wait(&mut spins, &self.site);
        }
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<ReadGuard<'_, T>> {
        let s = self.state.load(Ordering::Relaxed);
        if s & (WRITER_ACTIVE | WAITING_MASK) != 0 {
            return None;
        }
        self.state
            .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| self.read_acquired())
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> WriteGuard<'_, T> {
        hooks::yield_point();
        // Announce intent: bump the waiting-writers count.
        self.state.fetch_add(WAITING_ONE, Ordering::Relaxed);
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & (WRITER_ACTIVE | READERS_MASK) == 0 {
                // No writer, no readers: claim; move one waiting count to
                // active in a single CAS.
                let target = (s - WAITING_ONE) | WRITER_ACTIVE;
                if self
                    .state
                    .compare_exchange_weak(s, target, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return self.write_acquired();
                }
                continue;
            }
            hooks::spin_wait(&mut spins, &self.site);
        }
    }

    /// Try to acquire exclusive access without blocking (does not announce
    /// as waiting).
    pub fn try_write(&self) -> Option<WriteGuard<'_, T>> {
        let s = self.state.load(Ordering::Relaxed);
        if s & (WRITER_ACTIVE | READERS_MASK) != 0 {
            return None;
        }
        self.state
            .compare_exchange(s, s | WRITER_ACTIVE, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| self.write_acquired())
    }

    /// `(active_readers, waiting_writers, writer_active)` — diagnostics.
    pub fn state_snapshot(&self) -> (u64, u64, bool) {
        let s = self.state.load(Ordering::Relaxed);
        (
            s & READERS_MASK,
            (s & WAITING_MASK) >> 32,
            s & WRITER_ACTIVE != 0,
        )
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T> Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: readers hold a positive reader count; no writer can be
        // active simultaneously, so shared access is sound.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        // Event before the state change: timestamp order must show this
        // release ahead of any acquire it enables.
        trace::record_sync_site(EventKind::Release, &self.lock.site, trace::SYNC_SHARED);
        // Release pairs with the next writer's Acquire.
        self.lock.state.fetch_sub(1, Ordering::Release);
        hooks::site_changed(&self.lock.site);
    }
}

impl<T> Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: WRITER_ACTIVE grants exclusive access.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; &mut self prevents guard aliasing.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        trace::record_sync_site(EventKind::Release, &self.lock.site, trace::SYNC_EXCLUSIVE);
        self.lock.state.fetch_and(!WRITER_ACTIVE, Ordering::Release);
        hooks::site_changed(&self.lock.site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64 as Cnt, Ordering as O};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn multiple_readers_coexist() {
        let l = PdcRwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        let (readers, _, active) = l.state_snapshot();
        assert_eq!(readers, 2);
        assert!(!active);
    }

    #[test]
    fn writer_excludes_readers_and_writers() {
        let l = PdcRwLock::new(0);
        let w = l.write();
        assert!(l.try_read().is_none());
        assert!(l.try_write().is_none());
        drop(w);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn readers_block_writers() {
        let l = PdcRwLock::new(0);
        let r = l.read();
        assert!(l.try_write().is_none());
        drop(r);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let l = Arc::new(PdcRwLock::new(0u64));
        let r = l.read();
        let l2 = Arc::clone(&l);
        let writer = thread::spawn(move || {
            let mut g = l2.write();
            *g += 1;
        });
        // Wait until the writer has announced itself.
        while l.state_snapshot().1 == 0 {
            thread::yield_now();
        }
        // Writer preference: a new reader must not get in now.
        assert!(l.try_read().is_none(), "reader barged past waiting writer");
        drop(r);
        writer.join().unwrap();
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn concurrent_reads_and_writes_consistent() {
        let l = Arc::new(PdcRwLock::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&l);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut checks = 0u64;
                    while !stop.load(O::Relaxed) {
                        let g = l.read();
                        assert_eq!(g.0, g.1, "torn read");
                        checks += 1;
                    }
                    checks
                })
            })
            .collect();
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..2_000 {
                        let mut g = l.write();
                        g.0 += 1;
                        std::hint::black_box(&mut g);
                        g.1 += 1;
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, O::Relaxed);
        let total_checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total_checks > 0);
        let g = l.read();
        assert_eq!(g.0, 4_000);
    }

    #[test]
    fn writers_do_not_starve_under_reader_stream() {
        let l = Arc::new(PdcRwLock::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let read_ops = Arc::new(Cnt::new(0));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&l);
                let stop = Arc::clone(&stop);
                let read_ops = Arc::clone(&read_ops);
                thread::spawn(move || {
                    while !stop.load(O::Relaxed) {
                        let _g = l.read();
                        read_ops.fetch_add(1, O::Relaxed);
                    }
                })
            })
            .collect();
        // The writer must complete quickly despite constant readers.
        let l2 = Arc::clone(&l);
        let w = thread::spawn(move || {
            for _ in 0..100 {
                *l2.write() += 1;
            }
        });
        w.join().unwrap();
        stop.store(true, O::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*l.read(), 100);
    }

    #[test]
    fn blocked_writer_eventually_proceeds() {
        let l = Arc::new(PdcRwLock::new(false));
        let r = l.read();
        let l2 = Arc::clone(&l);
        let w = thread::spawn(move || {
            *l2.write() = true;
        });
        thread::sleep(Duration::from_millis(20));
        drop(r);
        w.join().unwrap();
        assert!(*l.read());
    }
}
