//! Yield-point seam for controlled schedulers (`pdc-check`).
//!
//! Every blocking or retrying moment in the nine `pdc-sync` primitives
//! funnels through this module: spin-wait loops call [`spin_wait`],
//! lock/acquire entries call [`yield_point`], parking calls
//! [`park`]/[`unpark`], and state changes that could satisfy a spin
//! waiter call [`site_changed`]. With no checker installed (the default,
//! and the only state production code ever sees) each helper collapses
//! to the exact uninstrumented idiom the primitives used before — one
//! relaxed atomic load is the entire overhead.
//!
//! When a [`Checker`] *is* installed (by `pdc-check` during schedule
//! exploration), threads registered as checked tasks hand control to the
//! checker at every one of these points, which serializes the whole test
//! body onto one runnable task at a time and makes the interleaving a
//! deterministic function of the checker's decisions.
//!
//! The contract with the primitives:
//!
//! * `yield_point()` — a possible preemption just before a
//!   synchronization step (lock/acquire/wait entry).
//! * `spin_wait(&mut spins, &site)` — one iteration of a condition
//!   re-check loop. Unchecked: `spin_loop` + a `yield_now` every 64
//!   iterations. Checked: block until *`site` changes* (another task
//!   ran [`site_changed`] on it), then return so the caller re-checks.
//! * `park()` / `unpark(&Thread)` — `thread::park` token semantics.
//!   Checked tasks park inside the checker; unpark of a thread the
//!   checker does not know falls back to the real `Thread::unpark`.
//! * `site_changed(&site)` — called after a release-style state change
//!   (unlock, sense flip, READY publish) so the checker can re-enable
//!   spin waiters blocked on that site. No-op unchecked.

use pdc_core::trace::SiteId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Identity of a checked task within one exploration (dense, task 0 is
/// the schedule's root body).
pub type TaskId = u32;

/// What a recorded decision chose between. Task scheduling picks the
/// next runnable task; *data* choice points ([`Checker::choice_point`])
/// resolve a nondeterministic value inside the currently running task —
/// a steal victim, a wake order — without moving the baton. Checkers
/// record the kind alongside each decision so replay, DFS backtracking
/// and partial-order reduction can tell the two apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceKind {
    /// Which runnable task runs next.
    Task,
    /// Which non-empty queue a work-stealing thief steals from.
    StealVictim,
    /// Which queued waiter a semaphore release / condvar notify wakes.
    WakeOrder,
}

/// Panic payload a [`Checker`] uses to unwind checked tasks during
/// schedule teardown. Lives here (not in the checker crate) so every
/// layer that catches panics around checked code — `pdc-check`'s own
/// spawn wrapper, `pdc_threads::join` — can tell teardown from a real
/// failure and re-raise instead of reporting it.
#[derive(Debug)]
pub struct AbortSchedule;

/// The controlled-scheduler interface `pdc-check` implements.
///
/// Methods are called from the checked threads themselves; every call
/// may block the calling thread until the checker grants it the next
/// step, and may panic (with the checker's private abort payload) to
/// tear a schedule down.
pub trait Checker: Send + Sync {
    /// A possible preemption point on `task` (no condition involved).
    fn yield_point(&self, task: TaskId);
    /// `task` observed an unavailable resource guarded by `site`; block
    /// it until [`Checker::site_changed`] is called for that site (or
    /// for any site when `None`), then return for a re-check.
    fn spin_wait(&self, task: TaskId, site: Option<u64>);
    /// A release-style state change happened on `site`.
    fn site_changed(&self, site: u64);
    /// Replaces `thread::park` for `task` (token semantics).
    fn park(&self, task: TaskId);
    /// Try to unpark the checked task running on `thread`; `false`
    /// means the checker does not manage that thread and the caller
    /// must fall back to a real unpark.
    fn unpark(&self, thread: &std::thread::Thread) -> bool;
    /// Register a child task about to be spawned by `parent`. The
    /// parent must call [`Checker::yield_point`] once the OS thread
    /// exists (never before, or the grant could precede the thread).
    fn spawn_task(&self, parent: TaskId) -> TaskId;
    /// First call on the child's own thread: binds the thread to
    /// `task` and blocks until the task is granted its first step.
    fn start_task(&self, task: TaskId);
    /// Last call on the child's own thread: marks `task` finished and
    /// passes the baton on. Never blocks.
    fn exit_task(&self, task: TaskId);
    /// Block `waiter` until `child` has exited.
    fn join_wait(&self, waiter: TaskId, child: TaskId);
    /// `task`'s body panicked with a *real* (non-teardown) panic. Must
    /// not block or panic: the caller is already unwinding and will
    /// still call [`Checker::exit_task`] afterwards.
    fn task_panicked(&self, task: TaskId, message: &str);
    /// Resolve a data nondeterminism inside `task`: pick one of `n`
    /// alternatives (`n >= 1`). The baton stays with `task`; the
    /// decision is recorded so exploration can backtrack over it. The
    /// default keeps old checkers compiling: always alternative 0.
    fn choice_point(&self, task: TaskId, kind: ChoiceKind, n: usize) -> usize {
        let _ = (task, kind, n);
        0
    }
}

// Fast global gate, mirroring trace::SYNC_TRACING_EVER: stays false
// until the first checker install anywhere in the process, so the
// uninstrumented hot path pays one relaxed load per hook.
static CHECKER_EVER: AtomicBool = AtomicBool::new(false);

static CHECKER: Mutex<Option<Arc<dyn Checker>>> = Mutex::new(None);

thread_local! {
    static CURRENT_TASK: std::cell::Cell<Option<TaskId>> = const { std::cell::Cell::new(None) };
}

fn installed_checker() -> Option<Arc<dyn Checker>> {
    if !CHECKER_EVER.load(Ordering::Acquire) {
        return None;
    }
    CHECKER
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Install `checker` process-wide, returning the previous one. Checked
/// threads are those that additionally bind a task id via
/// [`SpawnToken`]/[`bind_root_task`]; unrelated threads keep the
/// uninstrumented fast path (minus one atomic load).
pub fn install_checker(checker: Arc<dyn Checker>) -> Option<Arc<dyn Checker>> {
    CHECKER_EVER.store(true, Ordering::Release);
    CHECKER
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .replace(checker)
}

/// Remove the installed checker, if any.
pub fn uninstall_checker() -> Option<Arc<dyn Checker>> {
    if !CHECKER_EVER.load(Ordering::Acquire) {
        return None;
    }
    CHECKER
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// The checked task bound to this thread, if any.
pub fn current_task() -> Option<TaskId> {
    if !CHECKER_EVER.load(Ordering::Acquire) {
        return None;
    }
    CURRENT_TASK.with(|c| c.get())
}

/// Whether this thread is a checked task under an installed checker.
pub fn is_checked() -> bool {
    current_task().is_some()
        && CHECKER
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
}

fn checked() -> Option<(Arc<dyn Checker>, TaskId)> {
    let task = current_task()?;
    installed_checker().map(|c| (c, task))
}

/// A possible preemption point; no-op unless this thread is checked.
#[inline]
pub fn yield_point() {
    if let Some((c, task)) = checked() {
        c.yield_point(task);
    }
}

/// One iteration of a spin-wait loop on `site`.
///
/// Unchecked this is the canonical polite spin: `spin_loop()`, count,
/// and a `yield_now()` every 64 iterations (on one core, yielding is
/// what actually lets the holder run). Checked, the task blocks until
/// `site` changes, then returns for the caller's re-check; `spins` is
/// not advanced, so spin metrics read 0 under a checker.
#[inline]
pub fn spin_wait(spins: &mut u32, site: &SiteId) {
    if CHECKER_EVER.load(Ordering::Acquire) {
        if let Some((c, task)) = checked() {
            c.spin_wait(task, site.get());
            return;
        }
    }
    std::hint::spin_loop();
    *spins = spins.wrapping_add(1);
    if spins.is_multiple_of(64) {
        std::thread::yield_now();
    }
}

/// Announce a release-style change to `site` (unlock, sense flip,
/// READY publish) so the checker can re-enable its spin waiters.
/// No-op unless a checker is installed and this thread is checked.
#[inline]
pub fn site_changed(site: &SiteId) {
    if CHECKER_EVER.load(Ordering::Acquire) {
        if let Some((c, _)) = checked() {
            if let Some(id) = site.get() {
                c.site_changed(id);
            }
        }
    }
}

/// `thread::park`, routed through the checker for checked tasks.
#[inline]
pub fn park() {
    match checked() {
        Some((c, task)) => c.park(task),
        None => std::thread::park(),
    }
}

/// `Thread::unpark`, routed through the checker when it manages the
/// target thread; real unpark otherwise.
#[inline]
pub fn unpark(thread: &std::thread::Thread) {
    if CHECKER_EVER.load(Ordering::Acquire) {
        if let Some(c) = installed_checker() {
            if c.unpark(thread) {
                return;
            }
        }
    }
    thread.unpark();
}

/// Ask the checker which of `n` non-empty victims a work-stealing
/// thief should steal from. Unchecked (or with `n < 2`) this is always
/// 0 — the caller's existing preference order — so production pools
/// pay one relaxed load and keep their policy.
#[inline]
pub fn steal_victim(n: usize) -> usize {
    if n >= 2 {
        if let Some((c, task)) = checked() {
            return c.choice_point(task, ChoiceKind::StealVictim, n).min(n - 1);
        }
    }
    0
}

/// Ask the checker which of `n` queued waiters an adversarial-fairness
/// wake should pick. Unchecked this is 0 (FIFO: the oldest waiter).
#[inline]
pub fn wake_order(n: usize) -> usize {
    if n >= 2 {
        if let Some((c, task)) = checked() {
            return c.choice_point(task, ChoiceKind::WakeOrder, n).min(n - 1);
        }
    }
    0
}

/// Capability to run a child closure as a checked task; obtained by the
/// parent via [`checked_spawn`]. `Copy` so the parent can keep one for
/// [`join_task`] while moving another into the child closure.
#[derive(Debug, Clone, Copy)]
pub struct SpawnToken {
    task: TaskId,
}

impl SpawnToken {
    /// The child's task id.
    pub fn task(&self) -> TaskId {
        self.task
    }
}

/// Parent side of a checked spawn: registers a child task with the
/// checker. Returns `None` when this thread is not checked (the normal
/// path). After the OS thread has been created, the parent should call
/// [`yield_point`] to give the checker a chance to run the child.
pub fn checked_spawn() -> Option<SpawnToken> {
    let (c, parent) = checked()?;
    Some(SpawnToken {
        task: c.spawn_task(parent),
    })
}

/// Child side: bind this thread to the token's task and block until the
/// checker grants the first step. Call before any other work.
pub fn begin_task(token: &SpawnToken) {
    if let Some(c) = installed_checker() {
        CURRENT_TASK.with(|t| t.set(Some(token.task)));
        c.start_task(token.task);
    }
}

/// Child side: mark the task finished and hand the baton on. Must be
/// the thread's last interaction with the checker.
pub fn end_task(token: &SpawnToken) {
    if let Some(c) = installed_checker() {
        c.exit_task(token.task);
        CURRENT_TASK.with(|t| t.set(None));
    }
}

/// Parent side: block until the token's task has exited (replaces a
/// blocking OS join, which would stall the whole exploration).
pub fn join_task(token: &SpawnToken) {
    if let Some((c, me)) = checked() {
        c.join_wait(me, token.task);
    }
}

/// Child side: report a *real* (non-teardown) panic in the task's body
/// so the checker can abort the schedule and record the message. Safe
/// to call while unwinding; never blocks or panics.
pub fn task_panicked(token: &SpawnToken, message: &str) {
    if let Some(c) = installed_checker() {
        c.task_panicked(token.task, message);
    }
}

/// Bind the calling thread to `task` without a parent (the exploration
/// root). Used by `pdc-check` for task 0; pairs with
/// [`unbind_root_task`].
pub fn bind_root_task(task: TaskId) {
    CURRENT_TASK.with(|t| t.set(Some(task)));
}

/// Remove this thread's task binding (exploration root teardown).
pub fn unbind_root_task() {
    CURRENT_TASK.with(|t| t.set(None));
}

#[cfg(test)]
mod tests {
    use super::*;

    // The install/uninstall paths themselves are exercised end-to-end by
    // pdc-check; here we pin the uninstrumented defaults.

    #[test]
    fn unchecked_helpers_are_noops() {
        assert!(!is_checked());
        assert_eq!(current_task(), None);
        yield_point();
        let site = SiteId::new();
        site_changed(&site);
        let mut spins = 0u32;
        spin_wait(&mut spins, &site);
        assert_eq!(spins, 1, "unchecked spin_wait counts iterations");
        assert!(checked_spawn().is_none());
        assert_eq!(steal_victim(4), 0, "unchecked steals keep policy order");
        assert_eq!(wake_order(3), 0, "unchecked wakes stay FIFO");
    }

    #[test]
    fn unchecked_park_respects_token() {
        // unpark-then-park must not block (std token semantics).
        unpark(&std::thread::current());
        park();
    }
}
