//! A checked in-process MPSC channel with the crossbeam-shim surface.
//!
//! `vendor/crossbeam`'s `channel` module re-exports `std::sync::mpsc`,
//! which is invisible to both the tracer and the checker: sends and
//! receives carry no happens-before edges in `pdc-analyze` and no
//! choice points in `pdc-check`. This channel closes that gap:
//!
//! * every `send` records a [`EventKind::ChanSend`] *before* the
//!   message is enqueued, every successful `recv` records a
//!   [`EventKind::ChanRecv`] *after* it is dequeued, both keyed by the
//!   channel's site id with a per-channel FIFO sequence number —
//!   exactly the pairing rule `pdc_analyze::hb` applies, so a value
//!   handed through the channel is proven ordered;
//! * a blocking `recv` funnels through [`hooks::spin_wait`] and every
//!   `send` announces [`hooks::site_changed`], so under a `pdc-check`
//!   exploration the send/recv interleaving is a first-class
//!   schedulable decision rather than wall-clock luck.
//!
//! Unchecked, the hot path is an uncontended spinlock push/pop plus
//! one relaxed load per hook — the same cost profile as the other
//! `pdc-sync` primitives.

use crate::hooks;
use crate::spin::SpinLock;
use pdc_core::trace::{self, EventKind, SiteId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned by [`PdcSender::send`] when the receiver is gone;
/// carries the unsent value back.
#[derive(Debug, PartialEq, Eq)]
pub struct ChanSendError<T>(pub T);

/// Error returned by [`PdcReceiver::recv`] when the channel is empty
/// and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanRecvError;

/// Error returned by [`PdcReceiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanTryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Inner<T> {
    // Implementation-internal lock: the channel's own events are the
    // trace story, the queue lock would only pollute it.
    queue: SpinLock<VecDeque<T>>,
    senders: AtomicUsize,
    receiver_alive: AtomicUsize,
    sent: AtomicU64,
    received: AtomicU64,
    site: SiteId,
}

impl<T> Inner<T> {
    fn record(&self, kind: EventKind, seq: u64) {
        if let Some(t) = trace::current_sync_trace() {
            if let Some(id) = self.site.get() {
                t.record(kind, id, seq);
            }
        }
    }
}

/// The sending half; clone for multiple producers.
pub struct PdcSender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half (single consumer).
pub struct PdcReceiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create an unbounded MPSC channel whose operations are traced and
/// checkable.
pub fn channel<T>() -> (PdcSender<T>, PdcReceiver<T>) {
    let inner = Arc::new(Inner {
        queue: SpinLock::untraced(VecDeque::new()),
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicUsize::new(1),
        sent: AtomicU64::new(0),
        received: AtomicU64::new(0),
        site: SiteId::new(),
    });
    (
        PdcSender {
            inner: Arc::clone(&inner),
        },
        PdcReceiver { inner },
    )
}

impl<T> Clone for PdcSender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::Relaxed);
        PdcSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for PdcSender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake a blocked recv so it can observe
            // the disconnect instead of spinning forever.
            hooks::site_changed(&self.inner.site);
        }
    }
}

impl<T> Drop for PdcReceiver<T> {
    fn drop(&mut self) {
        self.inner.receiver_alive.store(0, Ordering::Release);
    }
}

impl<T> PdcSender<T> {
    /// Enqueue `value`, waking a blocked receiver. Fails (returning the
    /// value) when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), ChanSendError<T>> {
        hooks::yield_point();
        if self.inner.receiver_alive.load(Ordering::Acquire) == 0 {
            return Err(ChanSendError(value));
        }
        // Event before the enqueue: in logical-timestamp order no recv
        // may observe this message before its send was recorded.
        let seq = self.inner.sent.fetch_add(1, Ordering::Relaxed);
        self.inner.record(EventKind::ChanSend, seq);
        self.inner.queue.lock().push_back(value);
        hooks::site_changed(&self.inner.site);
        Ok(())
    }
}

impl<T> PdcReceiver<T> {
    /// Dequeue the oldest message without blocking.
    pub fn try_recv(&self) -> Result<T, ChanTryRecvError> {
        hooks::yield_point();
        match self.inner.queue.lock().pop_front() {
            Some(v) => {
                let seq = self.inner.received.fetch_add(1, Ordering::Relaxed);
                self.inner.record(EventKind::ChanRecv, seq);
                Ok(v)
            }
            None => {
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    Err(ChanTryRecvError::Disconnected)
                } else {
                    Err(ChanTryRecvError::Empty)
                }
            }
        }
    }

    /// Dequeue the oldest message, blocking until one arrives. Fails
    /// once the channel is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, ChanRecvError> {
        hooks::yield_point();
        let mut spins = 0u32;
        loop {
            if let Some(v) = self.inner.queue.lock().pop_front() {
                let seq = self.inner.received.fetch_add(1, Ordering::Relaxed);
                self.inner.record(EventKind::ChanRecv, seq);
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(ChanRecvError);
            }
            hooks::spin_wait(&mut spins, &self.inner.site);
        }
    }

    /// Messages sent so far (diagnostics).
    pub fn sent_count(&self) -> u64 {
        self.inner.sent.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn values_arrive_in_order() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(ChanTryRecvError::Empty));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = channel();
        let h = thread::spawn(move || rx.recv().unwrap());
        thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = channel::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1), "queued values drain first");
        assert_eq!(rx.recv(), Err(ChanRecvError));
        assert_eq!(rx.try_recv(), Err(ChanTryRecvError::Disconnected));
    }

    #[test]
    fn dropping_receiver_fails_send() {
        let (tx, rx) = channel();
        drop(rx);
        assert_eq!(tx.send(7u8), Err(ChanSendError(7)));
    }

    #[test]
    fn multi_producer_totals_add_up() {
        let (tx, rx) = channel();
        let handles: Vec<_> = (0..4u64)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }
}
