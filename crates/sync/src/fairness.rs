//! Wake-order policies for queue-based blocking primitives.
//!
//! POSIX leaves *which* waiter a release/notify wakes unspecified;
//! student code that accidentally depends on FIFO hand-off is correct
//! on Linux and broken on a different allocator of wakeups. Making the
//! policy explicit turns that nondeterminism into something a course
//! (and the `pdc-check` explorer) can vary on purpose:
//!
//! * [`Fairness::Fifo`] — wake the longest waiter (starvation-free,
//!   the default and the previous hard-coded behaviour);
//! * [`Fairness::Lifo`] — wake the most recent waiter (cache-warm,
//!   starvation-prone: the classic unfair hand-off);
//! * [`Fairness::Adversarial`] — under a `pdc-check` exploration the
//!   wake target becomes a first-class choice point
//!   ([`crate::hooks::wake_order`]), so the checker explores *every*
//!   wake order; outside a checker it behaves like FIFO.

use crate::hooks;
use std::collections::VecDeque;

/// Which queued waiter a release-style wake picks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fairness {
    /// Wake the oldest waiter (starvation-free).
    #[default]
    Fifo,
    /// Wake the newest waiter (unfair, cache-warm).
    Lifo,
    /// Let the checker choose among all waiters (FIFO unchecked).
    Adversarial,
}

impl Fairness {
    /// Remove and return the waiter this policy wakes, if any.
    pub(crate) fn select<T>(&self, queue: &mut VecDeque<T>) -> Option<T> {
        match self {
            Fairness::Fifo => queue.pop_front(),
            Fairness::Lifo => queue.pop_back(),
            Fairness::Adversarial => {
                let n = queue.len();
                if n == 0 {
                    None
                } else {
                    queue.remove(hooks::wake_order(n))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_pick_the_expected_end_unchecked() {
        let mut q: VecDeque<u32> = (0..4).collect();
        assert_eq!(Fairness::Fifo.select(&mut q), Some(0));
        assert_eq!(Fairness::Lifo.select(&mut q), Some(3));
        // Unchecked adversarial degrades to FIFO (wake_order returns 0).
        assert_eq!(Fairness::Adversarial.select(&mut q), Some(1));
        assert_eq!(Fairness::Fifo.select(&mut VecDeque::<u32>::new()), None);
    }
}
