//! One-shot lazy initialization (`OnceCell`) from a three-state atomic.
//!
//! The "lazy one-time initialization" example from *Rust Atomics and
//! Locks* ch. 2: many threads race to initialize; exactly one runs the
//! initializer, the rest wait and then share the result.

use crate::hooks;
use pdc_core::trace::{self, EventKind, SiteId};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};

const EMPTY: u8 = 0;
const RUNNING: u8 = 1;
const READY: u8 = 2;

/// A cell initialized at most once, usable from many threads.
pub struct OnceCell<T> {
    state: AtomicU8,
    /// Stable analysis site id (lazily allocated; see `pdc-analyze`).
    site: SiteId,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: `value` is written exactly once, by the thread that wins the
// EMPTY -> RUNNING CAS, before the Release store of READY; all readers
// check READY with Acquire first. After READY the value is immutable, so
// shared references are sound. T: Send + Sync because readers on other
// threads get &T and drop may happen on another thread.
unsafe impl<T: Send + Sync> Sync for OnceCell<T> {}
// SAFETY: moving the cell moves the T.
unsafe impl<T: Send> Send for OnceCell<T> {}

impl<T> OnceCell<T> {
    /// An empty cell.
    pub const fn new() -> Self {
        OnceCell {
            state: AtomicU8::new(EMPTY),
            site: SiteId::new(),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Get the value if initialized.
    pub fn get(&self) -> Option<&T> {
        if self.state.load(Ordering::Acquire) == READY {
            // Observing READY adopts the initializer's history.
            trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_PULSE);
            // SAFETY: READY (Acquire) implies the write of `value`
            // happened-before this read, and the value is never written
            // again.
            Some(unsafe { (*self.value.get()).assume_init_ref() })
        } else {
            None
        }
    }

    /// Get the value, initializing it with `init` if empty. If several
    /// threads race, exactly one runs `init`; the others wait.
    ///
    /// # Panics
    /// If `init` panics, the cell is left permanently poisoned in the
    /// RUNNING state and later callers spin forever; the teaching
    /// implementation documents rather than solves this (std's `Once`
    /// handles it with a poisoned state).
    pub fn get_or_init(&self, init: impl FnOnce() -> T) -> &T {
        hooks::yield_point();
        match self
            .state
            .compare_exchange(EMPTY, RUNNING, Ordering::Acquire, Ordering::Acquire)
        {
            Ok(_) => {
                // We won: initialize.
                let v = init();
                // SAFETY: we hold the unique RUNNING token; no other
                // thread reads until READY nor writes ever.
                unsafe { (*self.value.get()).write(v) };
                // Trace event first, then the publishing store, so the
                // pulse's timestamp precedes any reader's acquire.
                trace::record_sync_site(EventKind::Release, &self.site, trace::SYNC_PULSE);
                // Release publishes the value to Acquire readers.
                self.state.store(READY, Ordering::Release);
                hooks::site_changed(&self.site);
            }
            Err(mut s) => {
                // Lost the race (or already initialized): wait for READY.
                let mut spins = 0u32;
                while s != READY {
                    hooks::spin_wait(&mut spins, &self.site);
                    s = self.state.load(Ordering::Acquire);
                }
                trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_PULSE);
            }
        }
        // SAFETY: state is READY here in both branches.
        unsafe { (*self.value.get()).assume_init_ref() }
    }

    /// Set the value if empty; returns `Err(value)` if already set or
    /// being set.
    pub fn set(&self, value: T) -> Result<(), T> {
        if self
            .state
            .compare_exchange(EMPTY, RUNNING, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: unique RUNNING token, as in get_or_init.
            unsafe { (*self.value.get()).write(value) };
            trace::record_sync_site(EventKind::Release, &self.site, trace::SYNC_PULSE);
            self.state.store(READY, Ordering::Release);
            hooks::site_changed(&self.site);
            Ok(())
        } else {
            Err(value)
        }
    }
}

impl<T> Default for OnceCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for OnceCell<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == READY {
            // SAFETY: READY implies initialized; &mut self implies no
            // other references exist.
            unsafe { self.value.get_mut().assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn get_before_init_is_none() {
        let c: OnceCell<u32> = OnceCell::new();
        assert!(c.get().is_none());
        assert_eq!(*c.get_or_init(|| 42), 42);
        assert_eq!(c.get(), Some(&42));
    }

    #[test]
    fn second_init_ignored() {
        let c = OnceCell::new();
        assert_eq!(*c.get_or_init(|| 1), 1);
        assert_eq!(*c.get_or_init(|| 2), 1, "initializer must run once");
    }

    #[test]
    fn set_semantics() {
        let c = OnceCell::new();
        assert!(c.set(5).is_ok());
        assert_eq!(c.set(6), Err(6));
        assert_eq!(c.get(), Some(&5));
    }

    #[test]
    fn racing_initializers_run_once() {
        let cell = Arc::new(OnceCell::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let cell = Arc::clone(&cell);
                let runs = Arc::clone(&runs);
                thread::spawn(move || {
                    let v = cell.get_or_init(|| {
                        runs.fetch_add(1, Ordering::SeqCst);
                        i * 100
                    });
                    *v
                })
            })
            .collect();
        let values: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one init");
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "all see same value"
        );
    }

    #[test]
    fn drops_contained_value() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let c = OnceCell::new();
            c.get_or_init(|| Canary(Arc::clone(&drops)));
            assert_eq!(drops.load(Ordering::SeqCst), 0);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "value dropped with cell");
        // An empty cell drops nothing.
        {
            let _c: OnceCell<Canary> = OnceCell::new();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
