//! The producer-consumer bounded buffer, solved the classic way:
//! two counting semaphores (`slots`, `items`) plus a mutex on the ring.
//!
//! This is the canonical CS31 synchronization exercise (paper Table II,
//! "Producer-Consumer"): semaphores provide the *counting* (block when
//! full/empty), the lock provides *mutual exclusion* on the indices, and
//! the tests demonstrate both no-loss and FIFO-per-producer properties.

use crate::semaphore::Semaphore;
use crate::spin::SpinLock;
use pdc_core::trace::{self, EventKind, SiteId};
use std::collections::VecDeque;

/// A fixed-capacity blocking FIFO queue (multi-producer, multi-consumer).
pub struct BoundedBuffer<T> {
    queue: SpinLock<VecDeque<T>>,
    slots: Semaphore,
    items: Semaphore,
    capacity: usize,
    /// Stable analysis site id for the buffer as a whole (its `queue`
    /// lock and the two semaphores each have their own).
    site: SiteId,
}

impl<T> BoundedBuffer<T> {
    /// Create a buffer with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        BoundedBuffer {
            queue: SpinLock::new(VecDeque::with_capacity(capacity)),
            slots: Semaphore::new(capacity as i64),
            items: Semaphore::new(0),
            capacity,
            site: SiteId::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current length (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether currently empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert, blocking while the buffer is full.
    pub fn put(&self, value: T) {
        self.slots.acquire();
        self.queue.lock().push_back(value);
        // A hand-off pulse on the buffer itself, recorded before the
        // items permit that lets a consumer observe the element.
        trace::record_sync_site(EventKind::Release, &self.site, trace::SYNC_PULSE);
        self.items.release();
    }

    /// Insert without blocking; returns the value back if full.
    pub fn try_put(&self, value: T) -> Result<(), T> {
        if !self.slots.try_acquire() {
            return Err(value);
        }
        self.queue.lock().push_back(value);
        trace::record_sync_site(EventKind::Release, &self.site, trace::SYNC_PULSE);
        self.items.release();
        Ok(())
    }

    /// Remove, blocking while the buffer is empty.
    pub fn take(&self) -> T {
        self.items.acquire();
        trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_PULSE);
        let v = self
            .queue
            .lock()
            .pop_front()
            .expect("items semaphore guarantees an element");
        self.slots.release();
        v
    }

    /// Remove without blocking.
    pub fn try_take(&self) -> Option<T> {
        if !self.items.try_acquire() {
            return None;
        }
        trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_PULSE);
        let v = self
            .queue
            .lock()
            .pop_front()
            .expect("items semaphore guarantees an element");
        self.slots.release();
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_single_thread() {
        let b = BoundedBuffer::new(4);
        b.put(1);
        b.put(2);
        b.put(3);
        assert_eq!(b.take(), 1);
        assert_eq!(b.take(), 2);
        assert_eq!(b.take(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn try_put_fails_when_full() {
        let b = BoundedBuffer::new(2);
        assert!(b.try_put(1).is_ok());
        assert!(b.try_put(2).is_ok());
        assert_eq!(b.try_put(3), Err(3));
        assert_eq!(b.try_take(), Some(1));
        assert!(b.try_put(3).is_ok());
    }

    #[test]
    fn try_take_fails_when_empty() {
        let b: BoundedBuffer<u8> = BoundedBuffer::new(1);
        assert_eq!(b.try_take(), None);
    }

    #[test]
    fn producer_blocks_on_full_consumer_unblocks() {
        let b = Arc::new(BoundedBuffer::new(1));
        b.put(0);
        let b2 = Arc::clone(&b);
        let producer = thread::spawn(move || b2.put(1)); // must block
        thread::sleep(Duration::from_millis(30));
        assert_eq!(b.len(), 1, "producer still blocked");
        assert_eq!(b.take(), 0);
        producer.join().unwrap();
        assert_eq!(b.take(), 1);
    }

    #[test]
    fn no_items_lost_multi_producer_multi_consumer() {
        let b = Arc::new(BoundedBuffer::new(8));
        let producers = 4;
        let per_producer = 2_500usize;
        let consumers = 3;
        let total = producers * per_producer;

        let phandles: Vec<_> = (0..producers)
            .map(|p| {
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    for i in 0..per_producer {
                        b.put(p * per_producer + i);
                    }
                })
            })
            .collect();
        let chandles: Vec<_> = (0..consumers)
            .map(|c| {
                let b = Arc::clone(&b);
                // Consumers split the items; the last consumer takes the
                // remainder.
                let mine = if c == consumers - 1 {
                    total - (total / consumers) * (consumers - 1)
                } else {
                    total / consumers
                };
                thread::spawn(move || (0..mine).map(|_| b.take()).collect::<Vec<usize>>())
            })
            .collect();
        for h in phandles {
            h.join().unwrap();
        }
        let mut seen = HashSet::new();
        for h in chandles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "duplicate item {v}");
            }
        }
        assert_eq!(seen.len(), total, "every item consumed exactly once");
    }

    #[test]
    fn per_producer_order_preserved_single_consumer() {
        let b = Arc::new(BoundedBuffer::new(4));
        let b2 = Arc::clone(&b);
        let producer = thread::spawn(move || {
            for i in 0..1000u64 {
                b2.put(i);
            }
        });
        let mut last = None;
        for _ in 0..1000 {
            let v = b.take();
            if let Some(prev) = last {
                assert!(v > prev, "single-producer FIFO violated");
            }
            last = Some(v);
        }
        producer.join().unwrap();
    }

    #[test]
    fn capacity_never_exceeded() {
        let b = Arc::new(BoundedBuffer::new(3));
        let b2 = Arc::clone(&b);
        let producer = thread::spawn(move || {
            for i in 0..500 {
                b2.put(i);
            }
        });
        for _ in 0..500 {
            assert!(b.len() <= 3, "buffer exceeded capacity");
            let _ = b.take();
        }
        producer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BoundedBuffer::<u8>::new(0);
    }
}
