//! A FIFO-fair ticket lock.
//!
//! The spinlock's weakness — acquisition order is a free-for-all, so a
//! thread can starve — motivates the ticket lock: take a ticket
//! (`fetch_add` on `next`), wait until `serving` reaches it. Acquisitions
//! are served strictly first-come-first-served, the fairness property the
//! OS course contrasts with test-and-set locks.

use crate::hooks;
use pdc_core::trace::{self, EventKind, SiteId};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// A FIFO ticket lock protecting a `T`.
pub struct TicketLock<T> {
    next: AtomicU64,
    serving: AtomicU64,
    /// Stable analysis site id (lazily allocated; see `pdc-analyze`).
    site: SiteId,
    value: UnsafeCell<T>,
}

// SAFETY: mutual exclusion is provided by the ticket protocol: exactly one
// thread observes `serving == my_ticket` between its acquire and its
// release increment. See SpinLock for the Send/Sync reasoning.
unsafe impl<T: Send> Sync for TicketLock<T> {}
// SAFETY: moving the lock moves the T.
unsafe impl<T: Send> Send for TicketLock<T> {}

/// RAII guard for [`TicketLock`].
pub struct TicketGuard<'a, T> {
    lock: &'a TicketLock<T>,
    ticket: u64,
}

impl<T> TicketLock<T> {
    /// Create an unlocked ticket lock.
    pub const fn new(value: T) -> Self {
        TicketLock {
            next: AtomicU64::new(0),
            serving: AtomicU64::new(0),
            site: SiteId::new(),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire, waiting in FIFO order. Returns a guard that also reports
    /// the ticket number taken (handy for fairness tests).
    pub fn lock(&self) -> TicketGuard<'_, T> {
        hooks::yield_point();
        // Relaxed is fine for taking a ticket: the *wait loop*'s Acquire
        // load is what synchronizes with the previous holder's Release.
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.serving.load(Ordering::Acquire) != ticket {
            hooks::spin_wait(&mut spins, &self.site);
        }
        trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_EXCLUSIVE);
        TicketGuard { lock: self, ticket }
    }

    /// Try to acquire only if no one is waiting or holding.
    pub fn try_lock(&self) -> Option<TicketGuard<'_, T>> {
        let serving = self.serving.load(Ordering::Relaxed);
        // Attempt to take ticket `serving` only if it is also `next`
        // (lock free and no queue).
        if self
            .next
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // We hold ticket == serving, so the lock is ours.
            trace::record_sync_site(EventKind::Acquire, &self.site, trace::SYNC_EXCLUSIVE);
            Some(TicketGuard {
                lock: self,
                ticket: serving,
            })
        } else {
            None
        }
    }

    /// Number of lock acquisitions granted so far.
    pub fn served(&self) -> u64 {
        self.serving.load(Ordering::Relaxed)
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T> TicketGuard<'_, T> {
    /// The FIFO ticket this guard holds.
    pub fn ticket(&self) -> u64 {
        self.ticket
    }
}

impl<T> Deref for TicketGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard implies we are the serving ticket holder.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for TicketGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; &mut self prevents guard aliasing.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for TicketGuard<'_, T> {
    fn drop(&mut self) {
        // Event first: in timestamp order this release precedes any
        // acquire it enables.
        trace::record_sync_site(EventKind::Release, &self.lock.site, trace::SYNC_EXCLUSIVE);
        // Hand the lock to the next ticket. Release publishes our writes.
        self.lock
            .serving
            .store(self.ticket.wrapping_add(1), Ordering::Release);
        hooks::site_changed(&self.lock.site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn basic_mutual_exclusion() {
        let l = Arc::new(TicketLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), 40_000);
    }

    #[test]
    fn tickets_are_fifo() {
        let l = TicketLock::new(());
        let g0 = l.lock();
        assert_eq!(g0.ticket(), 0);
        drop(g0);
        let g1 = l.lock();
        assert_eq!(g1.ticket(), 1);
        drop(g1);
        assert_eq!(l.served(), 2);
    }

    #[test]
    fn try_lock_semantics() {
        let l = TicketLock::new(1);
        let g = l.try_lock().expect("uncontended try_lock succeeds");
        assert!(l.try_lock().is_none(), "held -> try fails");
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn acquisition_order_is_ticket_order() {
        // Record the order in which threads enter the critical section;
        // it must be sorted by ticket number.
        let l = Arc::new(TicketLock::new(Vec::<u64>::new()));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..100 {
                        let mut g = l.lock();
                        let t = g.ticket();
                        g.push(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let order = l.lock();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(*order, sorted, "entries must be in ticket order");
        assert_eq!(order.len(), 800);
    }

    #[test]
    fn into_inner() {
        let l = TicketLock::new(String::from("x"));
        assert_eq!(l.into_inner(), "x");
    }
}
