//! Prose-section experiments: GPU ladder, collectives, false sharing,
//! MapReduce, client-server.

use pdc_core::report::{count_fmt, f, speedup_fmt, Table};
use pdc_core::rng::Rng;
use pdc_gpu::device::GpuConfig;
use pdc_gpu::kernels::{reduce_global, reduce_shared_interleaved, reduce_shared_sequential};
use pdc_memsim::coherence::{counter_increment_trace, CoherenceSim, Protocol};
use pdc_mpi::coll;
use pdc_mpi::cost::{self, AlphaBeta};
use pdc_mpi::ft::{run_farm, Crash, Task};
use pdc_mpi::kv::{Request, Server};
use pdc_mpi::mapreduce::word_count;
use pdc_mpi::world::{Rank, World};

/// The CUDA reduction optimization ladder (CS40's "parallel reductions
/// on large arrays").
pub fn gpu() -> String {
    let mut rng = Rng::new(2023);
    let input: Vec<i64> = (0..1 << 16).map(|_| rng.gen_range(100) as i64).collect();
    let want: i64 = input.iter().sum();
    let cfg = GpuConfig::default();
    let mut t = Table::new(
        "E-gpu — reduction ladder, n = 65_536, block = 256 (simulated SIMT)",
        &[
            "variant",
            "sum ok",
            "global txns",
            "warp eff",
            "coalesce eff",
            "cycles",
            "speedup",
        ],
    );
    let runs = [
        ("global-memory tree", reduce_global(&input, 256)),
        (
            "shared, interleaved",
            reduce_shared_interleaved(&input, 256),
        ),
        ("shared, sequential", reduce_shared_sequential(&input, 256)),
    ];
    let base = runs[0].1 .1.cycles(&cfg) as f64;
    for (name, (sum, stats)) in &runs {
        t.row(&[
            name.to_string(),
            (sum == &want).to_string(),
            count_fmt(stats.global_transactions),
            f(stats.warp_efficiency(), 3),
            f(stats.coalescing_efficiency(&cfg), 3),
            count_fmt(stats.cycles(&cfg)),
            speedup_fmt(base / stats.cycles(&cfg) as f64),
        ]);
    }
    t.render()
}

/// Collectives: measured message counts vs the α–β formulas, and modeled
/// time scaling.
pub fn collectives() -> String {
    let mut out = String::new();
    let mut t = Table::new(
        "E-collectives — measured messages vs formula",
        &["collective", "p", "measured", "formula"],
    );
    for p in [2usize, 4, 8] {
        let (_, s) = World::run(p, |r: &mut Rank<u64>| {
            coll::broadcast(r, 0, (r.id() == 0).then_some(1))
        });
        t.row(&[
            "broadcast (binomial)".into(),
            p.to_string(),
            s.messages.to_string(),
            cost::broadcast_msgs(p as u64).to_string(),
        ]);
        let (_, s) = World::run(p, |r: &mut Rank<u64>| {
            coll::allreduce(r, r.id() as u64, |a, b| a + b)
        });
        t.row(&[
            "allreduce (tree)".into(),
            p.to_string(),
            s.messages.to_string(),
            cost::allreduce_msgs(p as u64).to_string(),
        ]);
        let (_, s) = World::run(p, |r: &mut Rank<u64>| coll::allgather(r, r.id() as u64));
        t.row(&[
            "allgather (ring)".into(),
            p.to_string(),
            s.messages.to_string(),
            cost::allgather_msgs(p as u64).to_string(),
        ]);
        let (_, s) = World::run(p, |r: &mut Rank<u64>| coll::barrier(r));
        t.row(&[
            "barrier (dissemination)".into(),
            p.to_string(),
            s.messages.to_string(),
            cost::barrier_msgs(p as u64).to_string(),
        ]);
        let (_, s) = World::run(p, move |r: &mut Rank<Vec<i64>>| {
            let n = 24; // divisible by 2, 4, 8
            let mine: Vec<i64> = (0..n).map(|j| (r.id() + j) as i64).collect();
            coll::ring_allreduce(r, mine, |a, b| a + b)
        });
        t.row(&[
            "allreduce (ring)".into(),
            p.to_string(),
            s.messages.to_string(),
            cost::ring_allreduce_msgs(p as u64).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    // Modeled time: tree vs linear broadcast on a cluster.
    let m = AlphaBeta::cluster();
    let mut t = Table::new(
        "E-collectives — modeled broadcast time, 1 KiB message (alpha-beta)",
        &["p", "linear (us)", "binomial tree (us)", "tree speedup"],
    );
    for p in [2u64, 8, 64, 512] {
        let lin = cost::broadcast_linear_time(m, p, 1024) * 1e6;
        let tree = cost::broadcast_time(m, p, 1024) * 1e6;
        t.row(&[
            p.to_string(),
            f(lin, 2),
            f(tree, 2),
            speedup_fmt(lin / tree),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Tree vs ring allreduce: the bandwidth crossover (α–β model).
pub fn allreduce_crossover() -> String {
    let m = AlphaBeta::cluster();
    let p = 64;
    let mut t = Table::new(
        "E-ft/allreduce — tree vs ring allreduce, p = 64 (modeled time, us)",
        &[
            "message size",
            "tree 2log2(p)(a+bn)",
            "ring 2(p-1)(a+bn/p)",
            "winner",
        ],
    );
    for n in [8u64, 1 << 10, 1 << 16, 1 << 20, 1 << 26, 1 << 30] {
        let tree = cost::allreduce_time(m, p, n) * 1e6;
        let ring = cost::ring_allreduce_time(m, p, n) * 1e6;
        t.row(&[
            count_fmt(n),
            f(tree, 2),
            f(ring, 2),
            if tree < ring { "tree" } else { "ring" }.to_string(),
        ]);
    }
    t.render()
}

/// Fault-tolerant master-worker farming under injected crashes.
pub fn fault_tolerance() -> String {
    let tasks: Vec<Task> = (0..20).map(|id| Task { id, duration: 5 }).collect();
    let mut t = Table::new(
        "E-ft — task farm: 20 tasks x 5 ticks, 4 workers, heartbeat timeout 3",
        &[
            "scenario",
            "makespan",
            "executions",
            "reassigned",
            "survivors",
            "all done",
        ],
    );
    let scenarios: Vec<(&str, Vec<Crash>)> = vec![
        ("no failures", vec![]),
        (
            "one crash early",
            vec![Crash {
                worker: 0,
                at_tick: 2,
            }],
        ),
        (
            "two crashes",
            vec![
                Crash {
                    worker: 0,
                    at_tick: 2,
                },
                Crash {
                    worker: 1,
                    at_tick: 12,
                },
            ],
        ),
        (
            "three crashes",
            vec![
                Crash {
                    worker: 0,
                    at_tick: 2,
                },
                Crash {
                    worker: 1,
                    at_tick: 7,
                },
                Crash {
                    worker: 2,
                    at_tick: 12,
                },
            ],
        ),
    ];
    for (name, crashes) in scenarios {
        let out = run_farm(&tasks, 4, &crashes, 3);
        t.row(&[
            name.into(),
            out.makespan.to_string(),
            out.executions.to_string(),
            out.reassignments.to_string(),
            out.survivors.to_string(),
            (out.completed.len() == 20).to_string(),
        ]);
    }
    t.render()
}

/// False sharing through the MESI simulator: padded vs packed counters.
pub fn false_sharing() -> String {
    let mut t = Table::new(
        "E-falsesharing — per-thread counters through MESI (250 increments each)",
        &[
            "cores",
            "layout",
            "bus txns",
            "invalidations",
            "txns/increment",
        ],
    );
    for cores in [2usize, 4, 8] {
        for (layout, pad) in [("packed (8 B apart)", 8u64), ("padded (64 B apart)", 64)] {
            let mut sim = CoherenceSim::new(Protocol::Mesi, cores, 64);
            let tr = counter_increment_trace(cores, 250, pad);
            let s = sim.run_trace(&tr);
            t.row(&[
                cores.to_string(),
                layout.to_string(),
                count_fmt(s.bus_traffic()),
                count_fmt(s.invalidations),
                f(s.bus_traffic() as f64 / (250.0 * cores as f64), 3),
            ]);
        }
    }
    t.render()
}

/// MapReduce word count (the Hadoop-lab substitute).
pub fn mapreduce() -> String {
    let corpus: Vec<String> = (0..64)
        .map(|i| {
            format!(
                "the quick brown fox {} jumps over the lazy dog {}",
                ["alpha", "beta", "gamma", "delta"][i % 4],
                i % 7
            )
        })
        .collect();
    let mut t = Table::new(
        "E-mapreduce — word count over 64 documents",
        &[
            "mappers",
            "reducers",
            "pairs emitted",
            "distinct keys",
            "'the' count",
        ],
    );
    for (m, r) in [(1usize, 1usize), (4, 2), (8, 4)] {
        let (results, stats) = word_count(corpus.clone(), m, r);
        let the = results
            .iter()
            .find(|(w, _)| w == "the")
            .map(|&(_, c)| c)
            .unwrap_or(0);
        t.row(&[
            m.to_string(),
            r.to_string(),
            count_fmt(stats.pairs_emitted),
            stats.distinct_keys.to_string(),
            the.to_string(),
        ]);
    }
    t.render()
}

/// Client-server KV store: request mix and linearized CAS.
pub fn kv() -> String {
    let (server, client) = Server::start();
    for i in 0..100 {
        client.put(&format!("user{}", i % 10), &format!("v{i}"));
    }
    let mut hits = 0;
    for i in 0..50 {
        if client.get(&format!("user{}", i % 20)).is_some() {
            hits += 1;
        }
    }
    let _ = client.call(Request::Cas {
        key: "user0".into(),
        expect_version: 1, // stale: user0 was rewritten 10 times
        value: "hacked".into(),
    });
    let stats = server.shutdown();
    let mut t = Table::new(
        "E-kv — client-server KV store session",
        &["metric", "value"],
    );
    t.row(&["requests serviced".into(), stats.requests.to_string()]);
    t.row(&["get hits".into(), hits.to_string()]);
    t.row(&["cas conflicts".into(), stats.cas_conflicts.to_string()]);
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn gpu_ladder_improves_monotonically() {
        let out = super::gpu();
        assert!(out.contains("shared, sequential"));
        assert!(!out.contains("false"), "all sums must be correct");
    }

    #[test]
    fn collectives_measured_equals_formula() {
        let out = super::collectives();
        // Spot-check one row: broadcast p=8 -> 7 messages both columns.
        let line = out
            .lines()
            .find(|l| l.contains("broadcast") && l.contains(" 8 "))
            .expect("row exists");
        let nums: Vec<&str> = line.split_whitespace().rev().take(2).collect();
        assert_eq!(nums[0], nums[1], "measured != formula in {line}");
    }

    #[test]
    fn false_sharing_padding_wins() {
        let out = super::false_sharing();
        assert!(out.contains("padded"));
    }
}
