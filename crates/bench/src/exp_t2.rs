//! Table II experiments: CS31's systems topics.

use pdc_arch::pipeline::{
    dependent_chain_trace, independent_alu_trace, load_use_trace, simulate, BranchPolicy,
    PipelineConfig,
};
use pdc_core::laws;
use pdc_core::report::{count_fmt, f, speedup_fmt, Table};
use pdc_memsim::cache::{Cache, CacheConfig, ReplacementPolicy, WritePolicy};
use pdc_memsim::trace;
use pdc_os::sched::{simulate as sched_sim, Job, SchedPolicy};
use pdc_os::vm::{run as vm_run, ReplacePolicy, BELADY_STRING};
use pdc_sync::problems::{all_grab_left_schedule, run_threaded, simulate as phil_sim, Strategy};

/// Memory hierarchy: layout × organization sweep + replacement policies.
pub fn cache() -> String {
    let mut out = String::new();
    // Layout experiment (row vs col major) across associativity.
    let mut t = Table::new(
        "T2-cache — 64x64 f64 matrix walk, 4 KiB cache, 64 B lines",
        &["traversal", "organization", "misses", "miss rate"],
    );
    let orgs: Vec<(&str, CacheConfig)> = vec![
        ("direct-mapped", CacheConfig::direct_mapped(64, 64)),
        (
            "2-way",
            CacheConfig {
                line_size: 64,
                sets: 32,
                ways: 2,
                replacement: ReplacementPolicy::Lru,
                write: WritePolicy::WriteBackAllocate,
            },
        ),
        ("fully-assoc", CacheConfig::fully_associative(64, 64)),
    ];
    for (walk, tr) in [
        ("row-major", trace::matrix_row_major(0, 64, 64)),
        ("col-major", trace::matrix_col_major(0, 64, 64)),
    ] {
        for (name, cfg) in &orgs {
            let mut c = Cache::new(*cfg);
            let s = c.run_trace(&tr);
            t.row(&[
                walk.to_string(),
                name.to_string(),
                s.misses.to_string(),
                f(s.miss_rate(), 3),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    // Replacement policies on a loop-with-hot-line trace.
    let mut t = Table::new(
        "T2-cache — replacement policy on hot+streaming trace (1 set, 4 ways)",
        &["policy", "misses"],
    );
    let mk_trace = || {
        let mut tr = Vec::new();
        for i in 1..500u64 {
            tr.push((0u64, false));
            tr.push((i * 64, false));
        }
        tr
    };
    for (name, pol) in [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("Random", ReplacementPolicy::Random),
    ] {
        let mut c = Cache::new(CacheConfig {
            line_size: 64,
            sets: 1,
            ways: 4,
            replacement: pol,
            write: WritePolicy::WriteBackAllocate,
        });
        let s = c.run_trace(&mk_trace());
        t.row(&[name.to_string(), s.misses.to_string()]);
    }
    out.push_str(&t.render());
    out
}

/// OS: scheduling metrics and page-replacement (with Belady's anomaly).
pub fn os() -> String {
    let mut out = String::new();
    let jobs = vec![Job::new(0, 24), Job::new(0, 3), Job::new(0, 3)];
    let mut t = Table::new(
        "T2-os — CPU scheduling, textbook workload (24/3/3 at t=0)",
        &[
            "policy",
            "avg wait",
            "avg turnaround",
            "avg response",
            "ctx switches",
        ],
    );
    for (name, policy) in [
        ("FCFS", SchedPolicy::Fcfs),
        ("SJF", SchedPolicy::Sjf),
        ("RR q=4", SchedPolicy::RoundRobin { quantum: 4 }),
        ("MLFQ q0=4", SchedPolicy::Mlfq { base_quantum: 4 }),
    ] {
        let m = sched_sim(policy, &jobs);
        t.row(&[
            name.to_string(),
            f(m.avg_waiting(), 2),
            f(m.avg_turnaround(), 2),
            f(m.avg_response(), 2),
            m.context_switches.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    let mut t = Table::new(
        "T2-os — page faults on the Belady string (FIFO anomaly!)",
        &["frames", "FIFO", "LRU", "Clock", "OPT"],
    );
    for frames in [3usize, 4] {
        t.row(&[
            frames.to_string(),
            vm_run(ReplacePolicy::Fifo, frames, &BELADY_STRING)
                .faults
                .to_string(),
            vm_run(ReplacePolicy::Lru, frames, &BELADY_STRING)
                .faults
                .to_string(),
            vm_run(ReplacePolicy::Clock, frames, &BELADY_STRING)
                .faults
                .to_string(),
            vm_run(ReplacePolicy::Opt, frames, &BELADY_STRING)
                .faults
                .to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Synchronization: dining philosophers across strategies.
pub fn sync() -> String {
    let n = 5;
    let mut t = Table::new(
        "T2-sync — dining philosophers, adversarial all-grab-left schedule",
        &["strategy", "deadlocked", "cycle size", "meals eaten"],
    );
    for (name, strat) in [
        ("naive (left-first)", Strategy::Naive),
        ("global order", Strategy::Ordered),
        ("arbitrator (n-1)", Strategy::Arbitrator),
    ] {
        let out = phil_sim(strat, n, 2, &all_grab_left_schedule(n), 100_000);
        t.row(&[
            name.to_string(),
            out.deadlocked.to_string(),
            out.cycle
                .as_ref()
                .map_or("-".into(), |c| c.len().to_string()),
            out.meals.iter().sum::<u32>().to_string(),
        ]);
    }
    let mut s = t.render();
    // Real threads for the deadlock-free strategies.
    let mut t = Table::new(
        "T2-sync — real threads (50 meals each, 5 philosophers)",
        &["strategy", "total meals", "all fed?"],
    );
    for (name, strat) in [
        ("global order", Strategy::Ordered),
        ("arbitrator", Strategy::Arbitrator),
    ] {
        let out = run_threaded(strat, 5, 50);
        t.row(&[
            name.to_string(),
            out.meals.iter().sum::<u32>().to_string(),
            out.meals.iter().all(|&m| m == 50).to_string(),
        ]);
    }
    s.push('\n');
    s.push_str(&t.render());
    s
}

/// Amdahl/Gustafson curves: the law tables students fill in.
pub fn amdahl() -> String {
    let mut out = String::new();
    let mut t = Table::new(
        "T2-amdahl — Amdahl speedup by serial fraction",
        &["p", "s=0.01", "s=0.05", "s=0.10", "s=0.25"],
    );
    for p in [1usize, 2, 4, 8, 16, 64, 1024] {
        t.row(&[
            p.to_string(),
            speedup_fmt(laws::amdahl_speedup(0.01, p)),
            speedup_fmt(laws::amdahl_speedup(0.05, p)),
            speedup_fmt(laws::amdahl_speedup(0.10, p)),
            speedup_fmt(laws::amdahl_speedup(0.25, p)),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    let mut t = Table::new(
        "T2-amdahl — Gustafson scaled speedup (same fractions)",
        &["p", "s=0.05 amdahl", "s=0.05 gustafson"],
    );
    for p in [2usize, 8, 64, 1024] {
        t.row(&[
            p.to_string(),
            speedup_fmt(laws::amdahl_speedup(0.05, p)),
            speedup_fmt(laws::gustafson_speedup(0.05, p)),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Pipelining and superscalar: CPI across hazard profiles.
pub fn pipeline() -> String {
    let mut t = Table::new(
        "T2-pipeline — 5-stage pipeline CPI by workload and configuration",
        &[
            "workload",
            "config",
            "CPI",
            "stalls",
            "flushes",
            "speedup vs unpipelined",
        ],
    );
    let workloads: Vec<(&str, Vec<pdc_arch::pipeline::PipeOp>)> = vec![
        ("independent ALU", independent_alu_trace(10_000)),
        ("dependence chain", dependent_chain_trace(10_000)),
        ("load-use loop", load_use_trace(5_000)),
    ];
    let configs: Vec<(&str, PipelineConfig)> = vec![
        ("forwarding", PipelineConfig::default()),
        (
            "no forwarding",
            PipelineConfig {
                forwarding: false,
                ..Default::default()
            },
        ),
        (
            "dual-issue",
            PipelineConfig {
                width: 2,
                ..Default::default()
            },
        ),
        (
            "perfect branches",
            PipelineConfig {
                branch_policy: BranchPolicy::Perfect,
                ..Default::default()
            },
        ),
    ];
    for (wname, tr) in &workloads {
        for (cname, cfg) in &configs {
            let r = simulate(cfg, tr);
            t.row(&[
                wname.to_string(),
                cname.to_string(),
                f(r.cpi(), 3),
                count_fmt(r.stall_cycles),
                count_fmt(r.flush_cycles),
                speedup_fmt(r.speedup_vs_unpipelined(5)),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn belady_anomaly_visible_in_table() {
        let out = super::os();
        assert!(out.contains("anomaly"));
        // FIFO at 3 frames = 9, at 4 frames = 10.
        assert!(out.contains('9') && out.contains("10"));
    }

    #[test]
    fn philosopher_table_shows_deadlock_only_for_naive() {
        let out = super::sync();
        assert!(out.contains("true"), "naive deadlocks");
        assert!(out.contains("false"), "fixes do not");
    }
}
