//! Sharded-KV and α–β batching experiments (Sec III-A, CS87: DHTs and
//! message-cost models).
//!
//! * [`shard`] — the consistent-hash ring fronting live shard ranks:
//!   the final KV state is invariant under the shard count, and routing
//!   tiny ops through a [`pdc_mpi::coll::Coalescer`] collapses the
//!   message count without changing the state.
//! * [`batch`] — the batching crossover *measured on real loopback
//!   sockets*: `k` small writes vs one coalesced write, against the
//!   α–β prediction `k(α+βn)` vs `α+βkn`. Below `n* = α/β` batching
//!   wins by up to `k×`; above it the two converge.
//!
//! Both experiments print `pdc-report` tables, which the `experiments`
//! binary captures into the `pdc-tables/1` JSON snapshot.

use pdc_core::report::{count_fmt, f, speedup_fmt, Table};
use pdc_db::sharded;
use pdc_mpi::cost::AlphaBeta;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// Sharded KV over the ring: state determinism across shard counts and
/// the batching win, all in-process.
pub fn shard() -> String {
    let ops = sharded::script(64, 2_000, 0x5EED);
    let (reference, _) = sharded::run_local(1, &ops, false);
    let mut t = Table::new(
        "E-shard — DHT-routed KV, 2000 ops over 64 keys (threads)",
        &[
            "shards",
            "keys left",
            "plain msgs",
            "batched msgs",
            "msg reduction",
            "state == 1-shard",
        ],
    );
    for shards in [1usize, 2, 4, 8] {
        let (plain_state, plain) = sharded::run_local(shards, &ops, false);
        let (batched_state, batched) = sharded::run_local(shards, &ops, true);
        assert_eq!(plain_state, batched_state, "batching must not reorder");
        t.row(&[
            shards.to_string(),
            plain_state.len().to_string(),
            count_fmt(plain.messages),
            count_fmt(batched.messages),
            speedup_fmt(plain.messages as f64 / batched.messages as f64),
            (plain_state == reference).to_string(),
        ]);
    }
    let mut out = t.render();
    out.push('\n');

    // Ring balance for the same key universe the script draws from.
    let ring = sharded::shard_ring(4);
    let keys: Vec<String> = (0..64).map(|i| format!("k{i}")).collect();
    let dist = ring.load_distribution(&keys);
    let mut t = Table::new(
        "E-shard — ring balance, 64 keys over 4 shards (64 vnodes each)",
        &["shard", "keys owned"],
    );
    for (node, n) in &dist {
        t.row(&[node.to_string(), n.to_string()]);
    }
    out.push_str(&t.render());
    out
}

/// Sink server: reads exactly `total` bytes per round, acks with one
/// byte so the client can time the full delivery.
fn sink(listener: TcpListener, rounds: usize, total: usize) {
    let (mut s, _) = listener.accept().expect("accept");
    s.set_nodelay(true).expect("nodelay");
    let mut buf = vec![0u8; 64 * 1024];
    for _ in 0..rounds {
        let mut got = 0;
        while got < total {
            let n = s.read(&mut buf).expect("sink read");
            assert!(n > 0, "client hung up mid-round");
            got += n;
        }
        s.write_all(&[1]).expect("ack");
    }
}

/// Time `rounds` deliveries of `k` chunks of `n` bytes, either as `k`
/// separate writes (`coalesced = false`) or one big write. Returns
/// seconds per round.
fn measure(k: usize, n: usize, rounds: usize, coalesced: bool) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let total = k * n;
    let server = std::thread::spawn(move || sink(listener, rounds, total));
    let mut s = TcpStream::connect(addr).expect("connect");
    // TCP_NODELAY: without it Nagle coalesces behind our back and the
    // "many small writes" side would not pay its per-message cost.
    s.set_nodelay(true).expect("nodelay");
    let chunk = vec![0xA5u8; n];
    let whole = vec![0xA5u8; total];
    let mut ack = [0u8; 1];
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        if coalesced {
            s.write_all(&whole).expect("write");
        } else {
            for _ in 0..k {
                s.write_all(&chunk).expect("write");
            }
        }
        s.read_exact(&mut ack).expect("ack");
    }
    let per_round = start.elapsed().as_secs_f64() / rounds as f64;
    server.join().expect("sink thread");
    per_round
}

/// The α–β batching crossover on real loopback sockets.
pub fn batch() -> String {
    let model = AlphaBeta::cluster();
    let k = 64;
    let rounds = 20;
    let mut t = Table::new(
        "E-batch — k=64 chunks: many writes vs one coalesced write (loopback TCP, nodelay)",
        &[
            "n (bytes)",
            "vs n* = alpha/beta",
            "many (us)",
            "coalesced (us)",
            "measured ratio",
            "modeled ratio",
        ],
    );
    for n in [16usize, 256, 4_096, 65_536, 1 << 20] {
        let many = measure(k, n, rounds, false);
        let one = measure(k, n, rounds, true);
        let modeled = model.p2p_many(k as u64, n as u64) / model.p2p_coalesced(k as u64, n as u64);
        let regime = if (n as u64) < model.coalesce_threshold() {
            "below (latency-bound)"
        } else {
            "above (bandwidth-bound)"
        };
        t.row(&[
            count_fmt(n as u64),
            regime.to_string(),
            f(many * 1e6, 1),
            f(one * 1e6, 1),
            speedup_fmt(many / one),
            f(modeled, 2),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nmodel: alpha = {:.0e} s, beta = {:.0e} s/B, crossover n* = {} bytes\n",
        model.alpha,
        model.beta,
        model.coalesce_threshold()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_experiment_reports_determinism() {
        let out = shard();
        assert!(out.contains("##"), "must render a table");
        // Every shard count reproduced the single-shard state.
        assert!(!out.contains("false"), "{out}");
    }

    #[test]
    fn batch_measure_moves_real_bytes() {
        // Smoke test only — CI boxes are too noisy to assert on time.
        let t = measure(8, 64, 2, false);
        assert!(t > 0.0);
        let t = measure(8, 64, 2, true);
        assert!(t > 0.0);
    }
}
