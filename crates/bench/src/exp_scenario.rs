//! `experiments --scenario`: the cross-backend workload gate.
//!
//! Every real workload in the workspace — Game of Life, the ray
//! tracer, external merge sort, MapReduce word count, iterative
//! pagerank — runs through the [`pdc_core::scenario`] seam on every
//! backend it supports, at three problem sizes, three timed
//! repetitions each. Word count additionally runs on `mpi-wire`: the
//! same sharded-KV shuffle over real OS processes on loopback TCP,
//! with each re-exec'd rank reconstructing the identical op stream
//! from a seed/size-carrying world id. The gate passes only if the
//! seam's contracts hold:
//!
//! * **Backend equality** — every backend reproduces the identical
//!   `Outcome` digest at every size (for extsort the digest also folds
//!   in the measured I/O count, so "same block-transfer schedule" is
//!   part of equality).
//! * **Analyze clean** — `pdc_analyze::analyze` over each kept run's
//!   trace reports zero defects, with no dropped events.
//! * **Valid tables** — every speedup/crossover row has a positive
//!   duration and a finite positive speedup (no NaN, no zero-division).
//! * **Speedup direction** — for the compute-bound workloads (life,
//!   ray) the threads backend beats sequential at the largest size.
//! * **Serve shuffle** — word count re-counted through the *full*
//!   `db::serve` TCP stack (one `PUT word 1` per token; the store's
//!   version counter is the reduce) digests identically to the seam's
//!   sequential count — the serving tier's first non-synthetic client.
//!
//! Speedup and crossover tables land under `target/pdc-trace/scenario/`
//! as `pdc-tables/1` JSON for the CI artifact.
//!
//! Like `--serve` and `--wire` this is a *gate*: it self-checks and
//! exits non-zero, so it runs behind its own flag (and CI job) rather
//! than inside the run-everything sweep.

use pdc_core::report::write_text_file;
use pdc_core::scenario::{
    run_scenario, AnalyzeVerdict, Backend, Scenario, ScenarioConfig, ScenarioReport,
};
use pdc_core::trace::TraceSession;
use pdc_db::serve::{self, ServeOptions};
use pdc_db::wordcount::{count_sequential, counts_from_kv, digest_counts, gen_docs, tokenize};
use pdc_mpi::kv_tcp::TcpKvClient;
use pdc_mpi::WireOptions;

/// World id the serve-shuffle comparison's shard children dispatch on
/// (see `experiments::main`).
pub const WORLD_ID: &str = "scenario-gate";

/// World-id prefix of the wordcount `mpi-wire` backend's rank children
/// (the full id carries the run's seed and size; see
/// [`wordcount_wire_spec`] and `experiments::main`).
pub const WC_WIRE_PREFIX: &str = "scenario-wordcount-wire";

const TRACE_DIR: &str = "target/pdc-trace/scenario";
const SEED: u64 = 0x05CE_AA10 ^ 9;
const REPEATS: u32 = 3;

/// Shards for the serve-backed word count.
const SERVE_SHARDS: usize = 3;
/// Documents pushed through the serving tier (closed-loop TCP, so the
/// corpus is deliberately smaller than the in-process sweep's largest).
const SERVE_DOCS: usize = 40;

/// The swept sizes per scenario. Small → large so the crossover column
/// means something; the largest size is where the speedup-direction
/// verdict applies.
fn sweep(name: &str) -> Vec<usize> {
    match name {
        "life" => vec![48, 96, 192],
        "ray" => vec![64, 128, 192],
        "extsort" => vec![4_000, 20_000, 60_000],
        "wordcount" => vec![40, 120, 360],
        "pagerank" => vec![64, 192, 512],
        other => panic!("no sweep for scenario {other}"),
    }
}

/// The wire spec for wordcount's `mpi-wire` backend: children re-exec
/// `experiments --scenario` and `main` routes them to
/// [`pdc_db::run_wire_wordcount_child`] by this prefix.
pub fn wordcount_wire_spec() -> pdc_db::WireSpec {
    pdc_db::WireSpec {
        world_prefix: WC_WIRE_PREFIX.to_string(),
        child_args: vec!["--scenario".to_string()],
        trace_dir: Some(format!("{TRACE_DIR}/wordcount-wire").into()),
    }
}

/// The real analyzer, condensed to the seam's verdict type.
fn analyzer(session: &TraceSession) -> AnalyzeVerdict {
    let report = pdc_analyze::analyze(session);
    AnalyzeVerdict {
        clean: report.clean(),
        defects: report.defects.len(),
        events: report.events_analyzed,
    }
}

/// Run one scenario's sweep and apply the per-scenario checks,
/// appending failure descriptions to `failures`.
fn gate_scenario(scenario: &dyn Scenario, failures: &mut Vec<String>) -> ScenarioReport {
    let name = scenario.name();
    let cfg = ScenarioConfig::new(SEED, &sweep(name)).with_repeats(REPEATS);
    let report = run_scenario(scenario, &cfg, &analyzer);

    if report.outcomes_agree() {
        println!(
            "scenario gate: {name} outcomes identical across backends ({} runs, backends: {})",
            report.runs.len(),
            report.backend_labels().join(", ")
        );
    } else {
        for m in report.mismatches() {
            failures.push(m);
        }
    }

    if report.all_clean() && report.runs.iter().all(|r| r.dropped == 0) {
        let events: usize = report.runs.iter().map(|r| r.analyze.events).sum();
        println!(
            "scenario gate: {name} analyze clean on every backend ({events} events, 0 dropped)"
        );
    } else {
        for r in &report.runs {
            if !r.analyze.clean {
                failures.push(format!(
                    "{name} on {} at n={}: {} analyze defects",
                    r.backend, r.size, r.analyze.defects
                ));
            }
            if r.dropped > 0 {
                failures.push(format!(
                    "{name} on {} at n={}: {} dropped trace events",
                    r.backend, r.size, r.dropped
                ));
            }
        }
    }

    if report.rows_valid() {
        println!("scenario gate: {name} tables valid (no NaN or zero-duration rows)");
    } else {
        failures.push(format!("{name}: invalid speedup/crossover rows"));
    }

    // Speedup direction: compute-bound workloads must profit from
    // threads at the largest size (min-of-three timing on both sides).
    // Wall-clock parallel speedup needs real parallel hardware, so on a
    // single-core host the verdict downgrades to a visible skip — the
    // digest/analyze contracts above still gate there.
    if matches!(name, "life" | "ray") {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let largest = *cfg.sizes.last().expect("non-empty sweep");
        let threads = Backend::Threads { workers: 4 };
        match report.speedup(&threads, largest) {
            Some(s) if cores < 2 => println!(
                "scenario gate: {name} speedup direction skipped on a single-core host \
                 (threads measured {s:.2}x at n={largest})"
            ),
            Some(s) if s > 1.0 => println!(
                "scenario gate: {name} threads speedup {s:.2}x > 1 at n={largest} ({cores} cores)"
            ),
            Some(s) => failures.push(format!(
                "{name}: threads speedup {s:.2}x <= 1 at n={largest} on {cores} cores"
            )),
            None => failures.push(format!("{name}: no threads run at n={largest}")),
        }
    }

    print!("{}", report.speedup_table().render());
    print!("{}", report.crossover_table().render());
    report
}

/// Re-count the gate corpus through the live serving tier: one
/// `PUT word 1` per token over real TCP, counts read back as the
/// store's final versions. Returns the digest of the recovered table.
fn serve_shuffle_digest() -> u64 {
    let docs = gen_docs(SEED, SERVE_DOCS);
    let session = TraceSession::with_capacity(1 << 18);
    let opts = ServeOptions::new(
        SERVE_SHARDS,
        WireOptions::for_args(SERVE_SHARDS, WORLD_ID, &["--scenario"]).traced(TRACE_DIR),
    );
    let handle = serve::start(opts, &session).expect("start serving tier");
    let mut client = TcpKvClient::connect(handle.addr()).expect("client connect");
    let mut puts = 0u64;
    for doc in &docs {
        for word in tokenize(doc) {
            let reply = client
                .call(&format!("PUT {word} 1"))
                .expect("closed-loop put");
            assert!(!reply.starts_with("ERR"), "PUT {word} -> {reply:?}");
            puts += 1;
        }
    }
    assert_eq!(client.call("QUIT").expect("quit"), "BYE");
    let outcome = handle.finish();
    assert_eq!(outcome.acked.len() as u64, puts, "every PUT acked");
    let counts = counts_from_kv(&outcome.state);
    println!(
        "scenario gate: serve shuffle counted {} words ({} distinct) over {SERVE_SHARDS} TCP shards",
        puts,
        counts.len()
    );
    digest_counts(&counts)
}

/// Run the gate; exits the process non-zero on any failed check.
pub fn run_scenario_gate() {
    let mut failures: Vec<String> = Vec::new();
    let scenarios: Vec<Box<dyn Scenario>> = vec![
        Box::new(pdc_life::LifeScenario),
        Box::new(pdc_ray::RayScenario),
        Box::new(pdc_extmem::ExtsortScenario),
        Box::new(pdc_db::WordCountScenario::new().with_wire(wordcount_wire_spec())),
        Box::new(pdc_db::PageRankScenario),
    ];
    let mut reports = Vec::new();
    for s in &scenarios {
        reports.push(gate_scenario(s.as_ref(), &mut failures));
    }

    // The serving stack as an out-of-process word counter: its digest
    // must match the seam's sequential count of the same corpus.
    let seam_digest = digest_counts(&count_sequential(&gen_docs(SEED, SERVE_DOCS)));
    let served_digest = serve_shuffle_digest();
    if served_digest == seam_digest {
        println!(
            "scenario gate: wordcount serve shuffle digest matches seam digest ({served_digest:#018x})"
        );
    } else {
        failures.push(format!(
            "wordcount over db::serve diverged: {served_digest:#018x} != seam {seam_digest:#018x}"
        ));
    }

    // Artifacts: one pdc-tables/1 document per scenario plus a combined
    // index the CI job greps and uploads.
    let dir = std::path::Path::new(TRACE_DIR);
    for r in &reports {
        write_text_file(
            &dir.join(format!("{}.tables.json", r.scenario)),
            &r.to_json(),
        )
        .expect("write scenario tables json");
    }
    let combined = format!(
        "{{\"schema\":\"pdc-tables/1\",\"experiments\":[{}]}}",
        reports
            .iter()
            .map(|r| format!(
                "{{\"id\":\"scenario-{}\",\"tables\":[{},{}]}}",
                r.scenario,
                r.speedup_table().to_json(),
                r.crossover_table().to_json()
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_text_file(&dir.join("scenario.tables.json"), &combined).expect("write combined json");
    println!("scenario artifacts written under {}", dir.display());

    if !failures.is_empty() {
        eprintln!("scenario gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "scenario gate passed: {} scenarios x >=2 backends, all digests equal, all traces clean",
        reports.len()
    );
}
