//! `e-check`: the schedule-count-vs-detection curve for the model
//! checker (paper §III, Table II races/deadlock rows).
//!
//! The lab's lesson in one table: how many *schedules* does it take to
//! catch a real concurrency bug? Naive stress testing answers "however
//! many the OS gives you" — here the checker controls the schedule, so
//! the question becomes quantitative. The curve shows PCT's detection
//! probability growing with the schedule budget when only the visible
//! symptom (the lost-update assertion) counts, and collapsing to
//! one schedule when each explored trace is also run through
//! `pdc-analyze` — the multiplier the tentpole exists for: analyzers ×
//! schedules, not analyzers × one lucky run.

use pdc_check::{explore_dfs, explore_dpor, explore_pct, fixtures, Config, Outcome};
use pdc_core::report::{capture_tables, write_text_file, Table};

/// Seeds per budget row of the detection curve.
const SEEDS: u64 = 16;

/// Run the curves and the exhaustive-search summary, and snapshot the
/// tables as `pdc-tables/1` JSON under `target/pdc-check/` for the CI
/// artifact.
pub fn check() -> String {
    let (out, tables) = capture_tables(check_tables);
    let dir = std::path::Path::new("target/pdc-check");
    let json = format!(
        "{{\"schema\":\"pdc-tables/1\",\"experiments\":[{{\"id\":\"e-check\",\"tables\":[{}]}}]}}",
        tables.join(",")
    );
    if let Err(e) = write_text_file(&dir.join("echeck.curve.json"), &json) {
        eprintln!("e-check: could not write curve json: {e}");
    }
    out
}

fn check_tables() -> String {
    let mut out = String::new();

    // Detection-by-symptom: only a failing assertion counts, no trace
    // analysis. This is honest stress testing with a controlled
    // scheduler — detection is probabilistic in the budget.
    let mut curve = Table::new(
        "e-check: PCT schedules vs detection, racy counter (2 tasks x 2 ops)",
        &["budget", "mode", "runs detecting", "rate"],
    );
    for budget in [1usize, 2, 4, 8, 16] {
        let mut detected = 0u64;
        for seed in 0..SEEDS {
            let cfg = Config {
                max_schedules: budget,
                seed: 0x1000 + seed * 7919,
                fail_on_defects: false,
                shrink_budget: 0,
                ..Config::default()
            };
            if explore_pct(fixtures::racy_counter_body(2), &cfg)
                .failure
                .is_some()
            {
                detected += 1;
            }
        }
        curve.row(&[
            budget.to_string(),
            "panic only".to_string(),
            format!("{detected}/{SEEDS}"),
            format!("{:.2}", detected as f64 / SEEDS as f64),
        ]);
    }
    // Detection-by-analysis: every explored trace goes through the
    // pdc-analyze passes, and the race is in *every* interleaving's
    // trace — one schedule suffices regardless of the symptom.
    let cfg = Config {
        max_schedules: 1000,
        shrink_budget: 0,
        ..Config::default()
    };
    let analyzed = explore_pct(fixtures::racy_counter_body(2), &cfg);
    curve.row(&[
        analyzed.schedules_run.to_string(),
        "with pdc-analyze".to_string(),
        format!("{}/{}", u64::from(analyzed.failure.is_some()), 1),
        format!("{:.2}", f64::from(analyzed.failure.is_some() as u8)),
    ]);
    out.push_str(&curve.render());

    // The other direction: exhaustive DFS proves the fixed body clean,
    // and finds the AB-BA deadlock precisely.
    let dfs_cfg = Config {
        max_schedules: 50_000,
        ..Config::default()
    };
    let clean = explore_dfs(fixtures::fixed_counter_body(2, 1), &dfs_cfg);
    let dl_cfg = Config {
        max_schedules: 50_000,
        fail_on_defects: false,
        ..Config::default()
    };
    let deadlock = explore_dfs(fixtures::abba_deadlock_body(), &dl_cfg);
    let deadlock_outcome = match &deadlock.failure {
        Some(f) => match &f.run.outcome {
            Outcome::Deadlock(live) => format!("deadlock of tasks {live:?}"),
            other => format!("{other:?}"),
        },
        None => "none".to_string(),
    };
    let mut dfs = Table::new(
        "e-check: exhaustive DFS over bounded bodies",
        &["body", "schedules", "complete", "verdict"],
    );
    dfs.row(&[
        "fixed counter (2 tasks x 1 op)".to_string(),
        clean.schedules_run.to_string(),
        clean.complete.to_string(),
        if clean.passed() {
            "clean".to_string()
        } else {
            "FAILED".to_string()
        },
    ]);
    dfs.row(&[
        "AB-BA locks".to_string(),
        deadlock.schedules_run.to_string(),
        deadlock.complete.to_string(),
        deadlock_outcome,
    ]);
    out.push_str(&dfs.render());

    // The scaling curve the tentpole exists for: plain DFS enumerates
    // the full interleaving tree of embarrassingly-parallel workers and
    // drowns, while DPOR's persistent/sleep sets recognise the tasks as
    // independent and prove the same completeness in a handful of
    // schedules. Same budget on both sides; "complete" is the proof.
    let mut reduction = Table::new(
        "e-check: DPOR vs DFS, independent counters (n tasks x 1 op)",
        &[
            "tasks",
            "dfs schedules",
            "dfs complete",
            "dfs ms",
            "dpor schedules",
            "dpor pruned",
            "dpor complete",
            "dpor ms",
        ],
    );
    for tasks in [2u32, 3, 4] {
        let cfg = Config {
            max_schedules: 2_000,
            shrink_budget: 0,
            ..Config::default()
        };
        let t0 = std::time::Instant::now();
        let dfs_rep = explore_dfs(fixtures::independent_counters_body(tasks, 1), &cfg);
        let dfs_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let dpor_rep = explore_dpor(fixtures::independent_counters_body(tasks, 1), &cfg);
        let dpor_ms = t1.elapsed().as_secs_f64() * 1e3;
        reduction.row(&[
            tasks.to_string(),
            dfs_rep.schedules_run.to_string(),
            dfs_rep.complete.to_string(),
            format!("{dfs_ms:.1}"),
            dpor_rep.schedules_run.to_string(),
            dpor_rep.pruned.to_string(),
            dpor_rep.complete.to_string(),
            format!("{dpor_ms:.1}"),
        ]);
    }
    out.push_str(&reduction.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_experiment_reports_both_directions() {
        let out = check();
        assert!(out.contains("with pdc-analyze"));
        assert!(out.contains("deadlock of tasks"));
        assert!(out.contains("clean"));
        assert!(out.contains("DPOR vs DFS"));
        let json = std::fs::read_to_string("target/pdc-check/echeck.curve.json")
            .expect("e-check writes its curve snapshot");
        assert!(json.starts_with("{\"schema\":\"pdc-tables/1\""));
        assert!(json.contains("DPOR vs DFS"));
    }
}
