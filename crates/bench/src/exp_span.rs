//! `experiments --span`: the empirical work/span gate.
//!
//! Every scenario sweep from the `--scenario` gate re-runs here with the
//! fork-join DAG reconstruction of [`pdc_analyze::span`] applied to each
//! kept trace: empirical **work** (total attributed steps), **span**
//! (longest weighted path over program order + Fork/Join + channel/lock
//! happens-before edges), and **parallelism** `W/S`. The gate passes
//! only if the profiler's outputs obey the theory the curriculum
//! teaches (CLRS ch. 27):
//!
//! * **Span ≤ work** — on every backend at every size; the longest path
//!   through the DAG can never exceed the sum of all its weights.
//! * **Declared Θ tracking** — each scenario's measured sequential work
//!   curve-fits its declared Θ-class over the size sweep (life/ray
//!   Θ(n²), extsort Θ(n log n), wordcount/pagerank Θ(n)) via
//!   [`pdc_core::workspan::Bounds::fit`]; a deliberately wrong class is
//!   also checked to *fail*, so the fit discriminates both directions.
//! * **Brent's bound** — for life/ray/extsort on the threads backend at
//!   every size, measured wall-clock `T_P` sits within a generous
//!   constant band of the predicted `c·(W/P + S)` where `c` is the
//!   per-step cost calibrated from the same machine's sequential run.
//!   Wall-clock needs real parallel hardware, so a single-core host
//!   downgrades this to a visible skip.
//! * **Parallelism direction** — at least one compute-bound scenario's
//!   measured parallelism grows from the smallest to the largest size.
//! * **Serial chain** — a single-strand trace reports parallelism
//!   exactly 1 (span == work), the degenerate case every formula must
//!   anchor.
//!
//! Artifacts land under `target/pdc-trace/span/` for the CI job: a
//! combined `pdc-span-tables/1` JSON of every work/span/parallelism
//! row, a representative `pdc-span/1` report, and a timeline HTML whose
//! critical-path events render in a distinct lane color.

use pdc_analyze::{analyze_span, analyze_span_session, SpanReport};
use pdc_core::report::{write_text_file, Table};
use pdc_core::scenario::{
    run_scenario, AnalyzeVerdict, Backend, BackendRun, Scenario, ScenarioConfig,
};
use pdc_core::timeline::render_html_with_path;
use pdc_core::trace::{EventKind, TraceSession, MARK_STEPS};
use pdc_core::workspan::{Bounds, Theta, WorkSpan};

const TRACE_DIR: &str = "target/pdc-trace/span";
const SEED: u64 = 0x05CE_AA10 ^ 10;
const REPEATS: u32 = 3;
/// Workers every scenario's threads backend uses.
const POOL_WORKERS: usize = 4;
/// Tolerance for the Θ curve fits (max/min ratio spread over the sweep).
const FIT_TOL: f64 = 1.5;
/// Both-direction slack on the Brent prediction. Wall-clock carries
/// thread-spawn and scheduling constants the DAG does not model, so the
/// band is generous; it still catches a profiler whose work or span is
/// off by orders of magnitude.
const BRENT_SLACK: f64 = 32.0;

/// The same sweeps the `--scenario` gate uses, so the two gates testify
/// about the same runs.
fn sweep(name: &str) -> Vec<usize> {
    match name {
        "life" => vec![48, 96, 192],
        "ray" => vec![64, 128, 192],
        "extsort" => vec![4_000, 20_000, 60_000],
        "wordcount" => vec![40, 120, 360],
        "pagerank" => vec![64, 192, 512],
        other => panic!("no sweep for scenario {other}"),
    }
}

/// Declared Θ-class of each scenario's *sequential* work — what one
/// strand executing the whole problem must cost. (The declared span
/// classes of the underlying algorithms live with the algorithms
/// themselves: `pdc_algos::mergesort::declared_bounds`,
/// `pdc_pram::algos::declared_bounds`, `pdc_db::pagerank::declared_bounds`.)
fn declared_work(name: &str) -> Theta {
    match name {
        // n is the board side; 8 generations of n² cells.
        "life" => Theta::Quadratic,
        // n is the image width; height scales with it.
        "ray" => Theta::Quadratic,
        "extsort" => Theta::NLogN,
        "wordcount" => Theta::Linear,
        "pagerank" => pdc_db::pagerank::declared_bounds().work,
        other => panic!("no declared work for scenario {other}"),
    }
}

/// One measured row of the span tables.
struct SpanRow {
    scenario: &'static str,
    backend: String,
    size: usize,
    nanos: u64,
    report: SpanReport,
    is_sequential: bool,
    is_threads: bool,
}

/// The span pass itself is the verdict here; the analyzer hook just
/// reports the event count (the `--scenario` gate already runs the
/// defect analyzer over identical sweeps).
fn event_counter(session: &TraceSession) -> AnalyzeVerdict {
    AnalyzeVerdict {
        clean: true,
        defects: 0,
        events: session.events().len(),
    }
}

/// Sweep one scenario and reduce every kept run to a [`SpanRow`].
fn sweep_scenario(scenario: &dyn Scenario) -> Vec<SpanRow> {
    let name = scenario.name();
    let cfg = ScenarioConfig::new(SEED, &sweep(name)).with_repeats(REPEATS);
    let report = run_scenario(scenario, &cfg, &event_counter);
    report
        .runs
        .iter()
        .map(|r: &BackendRun| SpanRow {
            scenario: name,
            backend: r.backend.to_string(),
            size: r.size,
            nanos: r.nanos,
            report: analyze_span(&r.events),
            is_sequential: r.backend == Backend::Sequential,
            is_threads: matches!(r.backend, Backend::Threads { .. }),
        })
        .collect()
}

/// Gate: span ≤ work on every trace, and every compute trace attributed
/// at least one step of work.
fn gate_span_le_work(rows: &[SpanRow], failures: &mut Vec<String>) {
    let mut ok = 0usize;
    for row in rows {
        if row.report.span > row.report.work {
            failures.push(format!(
                "{} on {} at n={}: span {} exceeds work {}",
                row.scenario, row.backend, row.size, row.report.span, row.report.work
            ));
        } else {
            ok += 1;
        }
        if row.report.work == 0 {
            failures.push(format!(
                "{} on {} at n={}: no attributed work in trace",
                row.scenario, row.backend, row.size
            ));
        }
    }
    println!("span gate: span <= work on every trace ({ok} backend x size traces)");
}

/// Gate: each scenario's measured sequential work tracks its declared
/// Θ-class, and a deliberately wrong class is rejected.
fn gate_declared_fit(rows: &[SpanRow], names: &[&str], failures: &mut Vec<String>) {
    for &name in names {
        let samples: Vec<(u64, WorkSpan)> = rows
            .iter()
            .filter(|r| r.scenario == name && r.is_sequential)
            .map(|r| {
                let w = r.report.work.max(r.report.span);
                (r.size as u64, WorkSpan::new(w, r.report.span))
            })
            .collect();
        let theta = declared_work(name);
        // A sequential trace is one strand, so its span class equals its
        // work class; fitting both sides of the declaration checks that
        // the profiler agrees.
        let (wfit, sfit) = Bounds::new(theta, theta).fit(&samples, FIT_TOL);
        if wfit.ok && sfit.ok {
            println!(
                "span gate: {name} measured sequential work tracks {} (spread {:.2} <= {FIT_TOL})",
                theta.label(),
                wfit.spread
            );
        } else {
            failures.push(format!(
                "{name}: sequential work does not track {} (work spread {:.2}, span spread {:.2}, tol {FIT_TOL})",
                theta.label(),
                wfit.spread,
                sfit.spread
            ));
        }
    }

    // The discriminating direction: life's Θ(n²) work must NOT fit a
    // linear declaration, or the fit proves nothing.
    let life: Vec<(u64, WorkSpan)> = rows
        .iter()
        .filter(|r| r.scenario == "life" && r.is_sequential)
        .map(|r| {
            let w = r.report.work.max(r.report.span);
            (r.size as u64, WorkSpan::new(w, r.report.span))
        })
        .collect();
    let (wrong, _) = Bounds::new(Theta::Linear, Theta::Linear).fit(&life, FIT_TOL);
    if wrong.ok {
        failures.push(format!(
            "declared-bounds fit failed to reject life work as {} (spread {:.2})",
            Theta::Linear.label(),
            wrong.spread
        ));
    } else {
        println!(
            "span gate: fit rejects life work as {} (spread {:.2} > {FIT_TOL}) — discriminates both directions",
            Theta::Linear.label(),
            wrong.spread
        );
    }
}

/// Gate: Brent's bound. Calibrate the per-step cost `c = T_seq/W_seq`
/// at each size, predict `T_P ≈ c·(W_P/P + S_P)` from the threads
/// trace, and require the measurement within [`BRENT_SLACK`] of the
/// prediction in both directions.
fn gate_brent(rows: &[SpanRow], names: &[&str], failures: &mut Vec<String>) -> Vec<String> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json_rows = Vec::new();
    for &name in names {
        for size in sweep(name) {
            let seq = rows
                .iter()
                .find(|r| r.scenario == name && r.is_sequential && r.size == size);
            let par = rows
                .iter()
                .find(|r| r.scenario == name && r.is_threads && r.size == size);
            let (Some(seq), Some(par)) = (seq, par) else {
                failures.push(format!(
                    "{name} at n={size}: missing sequential or threads run"
                ));
                continue;
            };
            if seq.report.work == 0 {
                failures.push(format!("{name} at n={size}: no work to calibrate against"));
                continue;
            }
            let c = seq.nanos as f64 / seq.report.work as f64;
            let predicted =
                c * (par.report.work as f64 / POOL_WORKERS as f64 + par.report.span as f64);
            let measured = par.nanos as f64;
            let ratio = measured / predicted;
            json_rows.push(format!(
                "{{\"scenario\":\"{name}\",\"n\":{size},\"measured_ns\":{},\"predicted_ns\":{:.0},\"ratio\":{ratio:.4}}}",
                par.nanos, predicted
            ));
            if cores < 2 {
                println!(
                    "span gate: {name} Brent bound skipped on a single-core host \
                     (n={size}: measured/predicted ratio {ratio:.2})"
                );
            } else if (1.0 / BRENT_SLACK..=BRENT_SLACK).contains(&ratio) {
                println!(
                    "span gate: {name} threads T_P within Brent band at n={size} \
                     (measured {:.2}ms vs predicted W/P+S {:.2}ms, ratio {ratio:.2})",
                    measured / 1e6,
                    predicted / 1e6
                );
            } else {
                failures.push(format!(
                    "{name} at n={size}: measured T_P {:.2}ms vs Brent prediction {:.2}ms \
                     (ratio {ratio:.2} outside [{:.3}, {BRENT_SLACK}])",
                    measured / 1e6,
                    predicted / 1e6,
                    1.0 / BRENT_SLACK
                ));
            }
        }
    }
    json_rows
}

/// Gate: measured parallelism grows with size for at least one
/// compute-bound scenario's threads backend.
fn gate_parallelism_growth(rows: &[SpanRow], names: &[&str], failures: &mut Vec<String>) {
    let mut grew = Vec::new();
    for &name in names {
        let sizes = sweep(name);
        let (first, last) = (sizes[0], *sizes.last().expect("non-empty sweep"));
        let at = |n: usize| {
            rows.iter()
                .find(|r| r.scenario == name && r.is_threads && r.size == n)
                .map(|r| r.report.parallelism())
        };
        if let (Some(small), Some(large)) = (at(first), at(last)) {
            if large > small {
                grew.push(format!("{name} {small:.2} -> {large:.2}"));
            }
        }
    }
    if grew.is_empty() {
        failures.push(format!(
            "parallelism did not grow with size for any compute-bound scenario ({})",
            names.join(", ")
        ));
    } else {
        println!(
            "span gate: parallelism grows with size ({})",
            grew.join("; ")
        );
    }
}

/// Gate: a purely serial chain — one strand, no forks — must report
/// span == work and parallelism exactly 1.
fn gate_serial_chain(failures: &mut Vec<String>) {
    let session = TraceSession::with_capacity(1 << 8);
    let strand = session.thread(1);
    for _ in 0..64 {
        strand.record(EventKind::Mark, MARK_STEPS, 7);
    }
    let report = analyze_span_session(&session);
    let par = report.parallelism();
    if report.span == report.work && report.work == 64 * 7 && par == 1.0 {
        println!(
            "span gate: serial chain reports parallelism exactly 1 (work == span == {})",
            report.work
        );
    } else {
        failures.push(format!(
            "serial chain: work {} span {} parallelism {par} (expected 448/448/1)",
            report.work, report.span
        ));
    }
}

/// Write the combined tables JSON, a representative `pdc-span/1`
/// document, and the critical-path timeline HTML.
fn write_artifacts(rows: &[SpanRow], brent_json: &[String], table: &Table) {
    let dir = std::path::Path::new(TRACE_DIR);
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"scenario\":\"{}\",\"backend\":\"{}\",\"n\":{},\"work\":{},\"span\":{},\"parallelism\":{:.4},\"events\":{}}}",
                r.scenario,
                r.backend,
                r.size,
                r.report.work,
                r.report.span,
                r.report.parallelism(),
                r.report.events
            )
        })
        .collect();
    let combined = format!(
        "{{\"schema\":\"pdc-span-tables/1\",\"rows\":[{}],\"brent\":[{}],\"table\":{}}}",
        row_json.join(","),
        brent_json.join(","),
        table.to_json()
    );
    write_text_file(&dir.join("span.tables.json"), &combined).expect("write span tables json");

    // Representative run for the pdc-span/1 document and the timeline:
    // ray on threads at its largest size (pool forks, steals, and a
    // heavy compute path make the critical path worth looking at).
    let scenario = pdc_ray::RayScenario;
    let sizes = [*sweep("ray").last().expect("non-empty sweep")];
    let cfg = ScenarioConfig::new(SEED, &sizes);
    let rep = run_scenario(&scenario, &cfg, &event_counter);
    let run = rep
        .runs
        .iter()
        .find(|r| matches!(r.backend, Backend::Threads { .. }))
        .expect("ray has a threads backend");
    let span = analyze_span(&run.events);
    write_text_file(&dir.join("ray.threads.span.json"), &span.to_json())
        .expect("write pdc-span/1 json");
    let html = render_html_with_path(
        &format!("ray on {} at n={} — critical path", run.backend, run.size),
        &run.events,
        &span.critical_ts(),
    );
    write_text_file(&dir.join("critical-path.timeline.html"), &html)
        .expect("write critical path html");
    println!("span artifacts written under {}", dir.display());
}

/// Run the gate; exits the process non-zero on any failed check.
pub fn run_span_gate() {
    let mut failures: Vec<String> = Vec::new();
    let scenarios: Vec<Box<dyn Scenario>> = vec![
        Box::new(pdc_life::LifeScenario),
        Box::new(pdc_ray::RayScenario),
        Box::new(pdc_extmem::ExtsortScenario),
        Box::new(pdc_db::WordCountScenario::new()),
        Box::new(pdc_db::PageRankScenario),
    ];
    let mut rows: Vec<SpanRow> = Vec::new();
    for s in &scenarios {
        rows.extend(sweep_scenario(s.as_ref()));
    }
    let all_names: Vec<&str> = scenarios.iter().map(|s| s.name()).collect();

    let mut table = Table::new(
        "empirical work/span per scenario x backend x size",
        &[
            "scenario",
            "backend",
            "n",
            "work",
            "span",
            "parallelism",
            "events",
        ],
    );
    for r in &rows {
        table.row(&[
            r.scenario.to_string(),
            r.backend.clone(),
            r.size.to_string(),
            r.report.work.to_string(),
            r.report.span.to_string(),
            format!("{:.2}", r.report.parallelism()),
            r.report.events.to_string(),
        ]);
    }
    print!("{}", table.render());

    gate_span_le_work(&rows, &mut failures);
    gate_declared_fit(&rows, &all_names, &mut failures);
    let brent_json = gate_brent(&rows, &["life", "ray", "extsort"], &mut failures);
    gate_parallelism_growth(
        &rows,
        &["life", "ray", "extsort", "pagerank"],
        &mut failures,
    );
    gate_serial_chain(&mut failures);
    write_artifacts(&rows, &brent_json, &table);

    if !failures.is_empty() {
        eprintln!("span gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "span gate passed: {} traces profiled, span <= work everywhere, declared bounds tracked, Brent band held",
        rows.len()
    );
}
