//! Regenerate every paper-table reproduction.
//!
//! ```text
//! experiments                 # run everything (also writes the tables JSON)
//! experiments --list          # list experiment ids
//! experiments --exp <id>      # run one (also writes the tables JSON)
//! experiments --trace [path]  # run a cross-subsystem traced workload
//!                             # and dump the pdc-trace/2 JSON snapshot
//!                             # (default path: target/pdc-trace/experiments.trace.json)
//! ```
//!
//! Every printed table is also captured as JSON: `--trace` embeds its
//! summary table in the snapshot's `tables` array, and the run-all /
//! `--exp` modes write `target/pdc-trace/experiments.tables.json` with
//! one entry per experiment (see EXPERIMENTS.md for the format).

use pdc_bench::registry;
use pdc_core::machine::{MachineConfig, SimMachine};
use pdc_core::report::{capture_tables, write_text_file, Table};
use pdc_core::trace::TraceSession;
use pdc_extmem::{multiply_into, OocMatrix};
use pdc_gpu::device::Phase;
use pdc_gpu::{Device, ThreadCtx};
use pdc_memsim::{Cache, CacheConfig, CoherenceSim, Protocol};
use pdc_threads::WorkStealingPool;

/// Drive every traced subsystem — pool, machine, MPI collectives, the
/// fault-tolerant farm, the GPU model, the external-memory model, and
/// the cache/coherence simulators — through one [`TraceSession`] and
/// write the resulting `pdc-trace/2` snapshot (summary table embedded)
/// to `path`.
fn run_traced_workload(path: &std::path::Path) {
    let session = TraceSession::new();

    let ((), tables) = capture_tables(|| {
        // pool.*: 200 tiny tasks across 4 workers.
        let pool = WorkStealingPool::with_trace(4, session.clone());
        for i in 0..200u64 {
            pool.spawn(move || {
                std::hint::black_box(i.wrapping_mul(i));
            });
        }
        pool.wait_idle();

        // machine.*: two BSP supersteps plus a critical section.
        let mut machine = SimMachine::with_trace(MachineConfig::with_cores(4), &session);
        for _ in 0..2 {
            machine.parallel_even(1_000, 4);
            machine.barrier(4);
        }
        machine.critical_each(4, 8);

        // mpi.* / coll.*: an allreduce and a barrier across 4 ranks,
        // each bracketed by coll_begin/coll_end marks.
        let (_, _) = pdc_mpi::World::run_traced(4, &session, |rank| {
            let sum = pdc_mpi::coll::allreduce(rank, rank.id() as u64, |a, b| a + b);
            pdc_mpi::coll::barrier::<u64>(rank);
            sum
        });

        pdc_mpi::ft::run_farm_traced(
            &(0..8)
                .map(|id| pdc_mpi::ft::Task { id, duration: 3 })
                .collect::<Vec<_>>(),
            3,
            &[pdc_mpi::ft::Crash {
                worker: 1,
                at_tick: 2,
            }],
            2,
            &session,
        );

        // gpu.*: a two-phase staging kernel (global → shared → global),
        // 2 blocks × 64 threads, one kernel event per launch.
        let mut dev = Device::new(256);
        dev.attach_trace(&session);
        let host: Vec<i64> = (0..128).collect();
        dev.upload(0, &host);
        let phases: Vec<Phase<'_>> = vec![
            Box::new(|t: &mut ThreadCtx<'_>| {
                let v = t.read_global(t.gtid());
                t.write_shared(t.tid(), 2 * v);
            }),
            Box::new(|t: &mut ThreadCtx<'_>| {
                let v = t.read_shared(t.tid());
                t.write_global(128 + t.gtid(), v);
            }),
        ];
        dev.launch(2, 64, 64, &phases);

        // io.*: a block-reader scan over a small file, plus an
        // out-of-core matrix multiply through three buffer pools.
        let mut disk = pdc_extmem::Disk::new(8);
        disk.attach_trace(&session);
        let file = disk.create_file((0..64i64).collect());
        let mut reader = disk.reader(file);
        let mut checksum = 0i64;
        while let Some(v) = reader.next() {
            checksum = checksum.wrapping_add(v);
        }
        std::hint::black_box(checksum);
        disk.write_file(file, (0..64i64).rev().collect());

        let n = 8;
        let mut ma = OocMatrix::from_fn(n, 4, 4, |i, j| (i + j) as f64);
        let mut mb = OocMatrix::from_fn(n, 4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let mut mc = OocMatrix::from_fn(n, 4, 4, |_, _| 0.0);
        ma.attach_trace(&session);
        mb.attach_trace(&session);
        mc.attach_trace(&session);
        multiply_into(&mut ma, &mut mb, &mut mc, 4);

        // cache.*: a thrashing scan through a direct-mapped cache, then
        // a MESI ping-pong producing invalidations and an S→M upgrade.
        let mut cache = Cache::new(CacheConfig::direct_mapped(64, 16));
        cache.attach_trace(&session);
        for i in 0..512u64 {
            cache.access((i * 64) % 4096, i % 4 == 0);
        }
        let mut coh = CoherenceSim::new(Protocol::Mesi, 2, 64);
        coh.attach_trace(&session);
        coh.access(0, 0, false);
        coh.access(1, 0, false);
        coh.access(1, 0, true);
        coh.access(0, 0, false);

        // The summary table: one row per key family, rendered to
        // stdout and captured into the snapshot's `tables` array.
        let snap = session.snapshot();
        let mut t = Table::new(
            "Traced workload summary (pdc-trace/2)",
            &["key family", "example counter", "value"],
        );
        for (family, key) in [
            ("pool.*", "pool.executed"),
            ("machine.*", "machine.barriers"),
            ("mpi.*", "mpi.msgs"),
            ("coll.*", "coll.allreduce"),
            ("gpu.*", "gpu.launches"),
            ("io.*", "io.reads"),
            ("cache.*", "cache.misses"),
        ] {
            t.row(&[
                family.to_string(),
                key.to_string(),
                snap.get(key).to_string(),
            ]);
        }
        print!("{}", t.render());
    });

    let json =
        session.to_json_with_tables(&[("source", "experiments --trace".to_string())], &tables);
    write_text_file(path, &json).expect("write trace snapshot");
    println!("pdc-trace snapshot written to {}", path.display());
    println!("{json}");
}

/// Write the captured per-experiment tables as one JSON document next
/// to the trace snapshot (same directory, fixed name).
fn write_tables_json(entries: &[(&str, Vec<String>)]) {
    let mut json = String::from("{\"schema\":\"pdc-tables/1\",\"experiments\":[");
    for (i, (id, tables)) in entries.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"id\":\"{id}\",\"tables\":[{}]}}",
            tables.join(",")
        ));
    }
    json.push_str("]}");
    let path = std::path::Path::new("target/pdc-trace/experiments.tables.json");
    write_text_file(path, &json).expect("write tables json");
    println!("tables JSON written to {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    match args.as_slice() {
        [flag] if flag == "--list" => {
            for e in &reg {
                println!("{:16} {}", e.id, e.anchor);
            }
        }
        [flag, rest @ ..] if flag == "--trace" && rest.len() <= 1 => {
            let default = "target/pdc-trace/experiments.trace.json".to_string();
            let path = rest.first().unwrap_or(&default);
            run_traced_workload(std::path::Path::new(path));
        }
        [flag, id] if flag == "--exp" => match reg.iter().find(|e| e.id == *id) {
            Some(e) => {
                let (out, tables) = capture_tables(e.run);
                println!("=== {} — {}\n", e.id, e.anchor);
                println!("{out}");
                write_tables_json(&[(e.id, tables)]);
            }
            None => {
                eprintln!("unknown experiment {id:?}; try --list");
                std::process::exit(1);
            }
        },
        [] => {
            let mut entries = Vec::new();
            for e in &reg {
                let (out, tables) = capture_tables(e.run);
                println!("=== {} — {}\n", e.id, e.anchor);
                println!("{out}");
                entries.push((e.id, tables));
            }
            write_tables_json(&entries);
        }
        _ => {
            eprintln!("usage: experiments [--list | --exp <id> | --trace [path]]");
            std::process::exit(2);
        }
    }
}
