//! Regenerate every paper-table reproduction.
//!
//! ```text
//! experiments                 # run everything
//! experiments --list          # list experiment ids
//! experiments --exp <id>      # run one
//! experiments --trace [path]  # run a cross-subsystem traced workload
//!                             # and dump the pdc-trace/1 JSON snapshot
//!                             # (default path: target/pdc-trace/experiments.trace.json)
//! ```

use pdc_bench::registry;
use pdc_core::machine::{MachineConfig, SimMachine};
use pdc_core::trace::TraceSession;
use pdc_threads::WorkStealingPool;

/// Drive every traced subsystem — pool, machine, MPI collectives, and
/// the fault-tolerant farm — through one [`TraceSession`] and write the
/// resulting `pdc-trace/1` snapshot to `path`.
fn run_traced_workload(path: &std::path::Path) {
    let session = TraceSession::new();

    let pool = WorkStealingPool::with_trace(4, session.clone());
    for i in 0..200u64 {
        pool.spawn(move || {
            std::hint::black_box(i.wrapping_mul(i));
        });
    }
    pool.wait_idle();

    let mut machine = SimMachine::with_trace(MachineConfig::with_cores(4), &session);
    for _ in 0..2 {
        machine.parallel_even(1_000, 4);
        machine.barrier(4);
    }
    machine.critical_each(4, 8);

    let (_, _) = pdc_mpi::World::run_traced(4, &session, |rank| {
        let sum = pdc_mpi::coll::allreduce(rank, rank.id() as u64, |a, b| a + b);
        pdc_mpi::coll::barrier::<u64>(rank);
        sum
    });

    pdc_mpi::ft::run_farm_traced(
        &(0..8)
            .map(|id| pdc_mpi::ft::Task { id, duration: 3 })
            .collect::<Vec<_>>(),
        3,
        &[pdc_mpi::ft::Crash {
            worker: 1,
            at_tick: 2,
        }],
        2,
        &session,
    );

    let json = session.to_json_with_meta(&[("source", "experiments --trace".to_string())]);
    pdc_core::report::write_text_file(path, &json).expect("write trace snapshot");
    println!("pdc-trace snapshot written to {}", path.display());
    println!("{json}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    match args.as_slice() {
        [flag] if flag == "--list" => {
            for e in &reg {
                println!("{:16} {}", e.id, e.anchor);
            }
        }
        [flag, rest @ ..] if flag == "--trace" && rest.len() <= 1 => {
            let default = "target/pdc-trace/experiments.trace.json".to_string();
            let path = rest.first().unwrap_or(&default);
            run_traced_workload(std::path::Path::new(path));
        }
        [flag, id] if flag == "--exp" => match reg.iter().find(|e| e.id == *id) {
            Some(e) => {
                println!("=== {} — {}\n", e.id, e.anchor);
                println!("{}", (e.run)());
            }
            None => {
                eprintln!("unknown experiment {id:?}; try --list");
                std::process::exit(1);
            }
        },
        [] => {
            for e in &reg {
                println!("=== {} — {}\n", e.id, e.anchor);
                println!("{}", (e.run)());
            }
        }
        _ => {
            eprintln!("usage: experiments [--list | --exp <id> | --trace [path]]");
            std::process::exit(2);
        }
    }
}
