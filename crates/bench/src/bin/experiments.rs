//! Regenerate every paper-table reproduction.
//!
//! ```text
//! experiments                 # run everything (also writes the tables JSON)
//! experiments --list          # list experiment ids
//! experiments --exp <id>      # run one (also writes the tables JSON)
//! experiments --trace [path]  # run a cross-subsystem traced workload
//!                             # and dump the pdc-trace/2 JSON snapshot
//!                             # (default path: target/pdc-trace/experiments.trace.json)
//! experiments --analyze       # run a data-race-free cross-subsystem workload
//!                             # plus the known-defect fixtures through
//!                             # pdc-analyze, write both pdc-analyze/1 reports
//!                             # (experiments.analyze.json and
//!                             # experiments.fixtures.analyze.json), and exit
//!                             # non-zero unless every verdict matches
//! experiments --shard         # run the DHT-sharded KV as 1 process (threads)
//!                             # AND as router+shard OS processes over loopback
//!                             # TCP, assert the final states are identical,
//!                             # write the merged pdc-trace/3 snapshot
//!                             # (target/pdc-trace/shard/merged.trace.json),
//!                             # and exit non-zero unless the multi-process
//!                             # trace passes pdc-analyze clean
//! experiments --serve         # run the live-traffic failover gate: a
//!                             # closed-loop load generator over the
//!                             # replicated sharded KV with one shard
//!                             # process killed mid-run; writes latency
//!                             # percentiles (pdc-tables/1), the merged
//!                             # pdc-trace/3 snapshot, and its analyze
//!                             # report under target/pdc-trace/serve/,
//!                             # and exits non-zero if any acked write
//!                             # was lost, no promotion happened, or the
//!                             # shrunk survivor trace analyzes dirty
//! experiments --wire          # run the wire-topology gate: the same
//!                             # child↔child workload over the star and
//!                             # mesh topologies; checks hop counts from
//!                             # the router's counters (star forwards
//!                             # everything, mesh forwards nothing),
//!                             # measures per-topology α/β, and requires
//!                             # the mesh to beat the star on latency and
//!                             # to shift the coalescing crossover n*=α/β
//!                             # left; writes the comparison as
//!                             # pdc-tables/1 JSON under
//!                             # target/pdc-trace/wire/
//! experiments --check         # run the pdc-check soundness gate: PCT must
//!                             # flag the racy counter within 1000 schedules,
//!                             # exhaustive DFS must prove the fixed counter
//!                             # clean, and replaying the minimized schedule
//!                             # written to target/pdc-check/minimal.schedule.json
//!                             # must reproduce the race verdict byte-for-byte;
//!                             # exits non-zero on any mismatch
//! experiments --render [path] # run a compact traced workload (threads + MPI
//!                             # collectives) and render it as a self-contained
//!                             # HTML timeline (default path:
//!                             # target/pdc-trace/experiments.timeline.html)
//! ```
//!
//! Every printed table is also captured as JSON: `--trace` embeds its
//! summary table in the snapshot's `tables` array, and the run-all /
//! `--exp` modes write `target/pdc-trace/experiments.tables.json` with
//! one entry per experiment (see EXPERIMENTS.md for the format).

use pdc_analyze::{fixtures, DefectKind, Report};
use pdc_bench::registry;
use pdc_core::machine::{MachineConfig, SimMachine};
use pdc_core::report::{capture_tables, write_text_file, Table};
use pdc_core::trace::{self, TraceSession};
use pdc_extmem::{multiply_into, OocMatrix};
use pdc_gpu::device::Phase;
use pdc_gpu::{Device, ThreadCtx};
use pdc_memsim::{Cache, CacheConfig, CoherenceSim, Protocol};
use pdc_threads::WorkStealingPool;

/// Drive every traced subsystem — pool, machine, MPI collectives, the
/// fault-tolerant farm, the GPU model, the external-memory model, and
/// the cache/coherence simulators — through one [`TraceSession`] and
/// write the resulting `pdc-trace/2` snapshot (summary table embedded)
/// to `path`.
fn run_traced_workload(path: &std::path::Path) {
    let session = TraceSession::new();

    let ((), tables) = capture_tables(|| {
        // pool.*: 200 tiny tasks across 4 workers.
        let pool = WorkStealingPool::with_trace(4, session.clone());
        for i in 0..200u64 {
            pool.spawn(move || {
                std::hint::black_box(i.wrapping_mul(i));
            });
        }
        pool.wait_idle();

        // machine.*: two BSP supersteps plus a critical section.
        let mut machine = SimMachine::with_trace(MachineConfig::with_cores(4), &session);
        for _ in 0..2 {
            machine.parallel_even(1_000, 4);
            machine.barrier(4);
        }
        machine.critical_each(4, 8);

        // mpi.* / coll.*: an allreduce and a barrier across 4 ranks,
        // each bracketed by coll_begin/coll_end marks.
        let (_, _) = pdc_mpi::World::run_traced(4, &session, |rank| {
            let sum = pdc_mpi::coll::allreduce(rank, rank.id() as u64, |a, b| a + b);
            pdc_mpi::coll::barrier::<u64, _>(rank);
            sum
        });

        pdc_mpi::ft::run_farm_traced(
            &(0..8)
                .map(|id| pdc_mpi::ft::Task { id, duration: 3 })
                .collect::<Vec<_>>(),
            3,
            &[pdc_mpi::ft::Crash {
                worker: 1,
                at_tick: 2,
            }],
            2,
            &session,
        );

        // gpu.*: a two-phase staging kernel (global → shared → global),
        // 2 blocks × 64 threads, one kernel event per launch.
        let mut dev = Device::new(256);
        dev.attach_trace(&session);
        let host: Vec<i64> = (0..128).collect();
        dev.upload(0, &host);
        let phases: Vec<Phase<'_>> = vec![
            Box::new(|t: &mut ThreadCtx<'_>| {
                let v = t.read_global(t.gtid());
                t.write_shared(t.tid(), 2 * v);
            }),
            Box::new(|t: &mut ThreadCtx<'_>| {
                let v = t.read_shared(t.tid());
                t.write_global(128 + t.gtid(), v);
            }),
        ];
        dev.launch(2, 64, 64, &phases);

        // io.*: a block-reader scan over a small file, plus an
        // out-of-core matrix multiply through three buffer pools.
        let mut disk = pdc_extmem::Disk::new(8);
        disk.attach_trace(&session);
        let file = disk.create_file((0..64i64).collect());
        let mut reader = disk.reader(file);
        let mut checksum = 0i64;
        while let Some(v) = reader.next() {
            checksum = checksum.wrapping_add(v);
        }
        std::hint::black_box(checksum);
        disk.write_file(file, (0..64i64).rev().collect());

        let n = 8;
        let mut ma = OocMatrix::from_fn(n, 4, 4, |i, j| (i + j) as f64);
        let mut mb = OocMatrix::from_fn(n, 4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let mut mc = OocMatrix::from_fn(n, 4, 4, |_, _| 0.0);
        ma.attach_trace(&session);
        mb.attach_trace(&session);
        mc.attach_trace(&session);
        multiply_into(&mut ma, &mut mb, &mut mc, 4);

        // cache.*: a thrashing scan through a direct-mapped cache, then
        // a MESI ping-pong producing invalidations and an S→M upgrade.
        let mut cache = Cache::new(CacheConfig::direct_mapped(64, 16));
        cache.attach_trace(&session);
        for i in 0..512u64 {
            cache.access((i * 64) % 4096, i % 4 == 0);
        }
        let mut coh = CoherenceSim::new(Protocol::Mesi, 2, 64);
        coh.attach_trace(&session);
        coh.access(0, 0, false);
        coh.access(1, 0, false);
        coh.access(1, 0, true);
        coh.access(0, 0, false);

        // The summary table: one row per key family, rendered to
        // stdout and captured into the snapshot's `tables` array.
        let snap = session.snapshot();
        let mut t = Table::new(
            "Traced workload summary (pdc-trace/2)",
            &["key family", "example counter", "value"],
        );
        for (family, key) in [
            ("pool.*", "pool.executed"),
            ("machine.*", "machine.barriers"),
            ("mpi.*", "mpi.msgs"),
            ("coll.*", "coll.allreduce"),
            ("gpu.*", "gpu.launches"),
            ("io.*", "io.reads"),
            ("cache.*", "cache.misses"),
        ] {
            t.row(&[
                family.to_string(),
                key.to_string(),
                snap.get(key).to_string(),
            ]);
        }
        print!("{}", t.render());
    });

    let json =
        session.to_json_with_tables(&[("source", "experiments --trace".to_string())], &tables);
    write_text_file(path, &json).expect("write trace snapshot");
    println!("pdc-trace snapshot written to {}", path.display());
    println!("{json}");
}

/// A deliberately data-race-free workload spanning every instrumented
/// subsystem: a work-stealing pool incrementing a mutex-protected
/// counter, a fork-join diamond, the BSP machine with its critical
/// section, MPI collectives, rwlock readers/writer, a oncecell
/// publication, a sense barrier, a bounded-buffer pipeline, and both
/// deadlock-free philosopher strategies. `pdc-analyze` must find
/// nothing here — this is the false-positive gate.
fn drf_workload_session() -> TraceSession {
    use pdc_sync::{BoundedBuffer, OnceCell, PdcMutex, PdcRwLock, SenseBarrier};
    let session = TraceSession::new();

    // Pool + mutex-protected shared counter: every access inside the
    // guard, recorded under each worker's own trace actor.
    let counter = std::sync::Arc::new(PdcMutex::new(0u64));
    let var_counter = trace::next_site_id();
    let pool = pdc_threads::WorkStealingPool::with_trace(4, session.clone());
    for _ in 0..64 {
        let counter = std::sync::Arc::clone(&counter);
        pool.spawn(move || {
            let mut g = counter.lock();
            trace::record_var_read(var_counter);
            let v = *g;
            trace::record_var_write(var_counter);
            *g = v + 1;
        });
    }
    pool.wait_idle();
    assert_eq!(*counter.lock(), 64);

    // Fork-join diamond: parent initialises, child reads after the
    // fork edge, parent resumes after the join edge.
    trace::install_sync_trace(session.thread(0));
    let var_join = trace::next_site_id();
    trace::record_var_write(var_join);
    let (a, b) = pdc_threads::join(
        || 21u64,
        || {
            trace::record_var_read(var_join);
            21u64
        },
    );
    std::hint::black_box(a + b);

    // BSP machine supersteps plus its modeled critical section.
    let mut machine = SimMachine::with_trace(MachineConfig::with_cores(4), &session);
    machine.parallel_even(1_000, 4);
    machine.barrier(4);
    machine.critical_each(4, 8);
    trace::clear_sync_trace();

    // MPI: matched collectives across 4 ranks.
    let (_, _) = pdc_mpi::World::run_traced(4, &session, |rank| {
        let sum = pdc_mpi::coll::allreduce(rank, rank.id() as u64, |a, b| a + b);
        pdc_mpi::coll::barrier::<u64, _>(rank);
        sum
    });

    // RwLock readers/writer, a oncecell publication, and a barrier-
    // published value, all on real threads with their own actors.
    let rw = PdcRwLock::new(0u64);
    let var_rw = trace::next_site_id();
    let cell: OnceCell<u64> = OnceCell::new();
    let var_cell = trace::next_site_id();
    let bar = SenseBarrier::new(3);
    let var_bar = trace::next_site_id();
    std::thread::scope(|s| {
        for t in 0..3u32 {
            let session = &session;
            let (rw, cell, bar) = (&rw, &cell, &bar);
            s.spawn(move || {
                trace::install_sync_trace(session.thread(30 + t));
                for _ in 0..8 {
                    if t == 0 {
                        let mut g = rw.write();
                        trace::record_var_write(var_rw);
                        *g += 1;
                    } else {
                        let g = rw.read();
                        trace::record_var_read(var_rw);
                        std::hint::black_box(*g);
                    }
                }
                let v = cell.get_or_init(|| {
                    trace::record_var_write(var_cell);
                    7u64
                });
                trace::record_var_read(var_cell);
                std::hint::black_box(*v);
                if t == 0 {
                    trace::record_var_write(var_bar);
                }
                bar.wait();
                trace::record_var_read(var_bar);
                trace::clear_sync_trace();
            });
        }
    });

    // Bounded-buffer pipeline: pulse edges only, item ownership moves
    // with the item.
    let buf: BoundedBuffer<u64> = BoundedBuffer::new(4);
    std::thread::scope(|s| {
        let (buf_p, buf_c) = (&buf, &buf);
        let session = &session;
        s.spawn(move || {
            trace::install_sync_trace(session.thread(40));
            for i in 0..16u64 {
                buf_p.put(i);
            }
            trace::clear_sync_trace();
        });
        s.spawn(move || {
            trace::install_sync_trace(session.thread(41));
            let mut sum = 0u64;
            for _ in 0..16 {
                sum += buf_c.take();
            }
            std::hint::black_box(sum);
            trace::clear_sync_trace();
        });
    });

    // Deadlock-free philosophers: global ordering, then the arbitrator
    // (whose raw ring must come back gate-suppressed, not as a defect).
    use pdc_sync::problems::{lucky_sequential_schedule, simulate_traced, Strategy};
    let schedule = lucky_sequential_schedule(5, 1);
    simulate_traced(Strategy::Ordered, 5, 1, &schedule, 10_000, &session);
    simulate_traced(Strategy::Arbitrator, 5, 1, &schedule, 10_000, &session);

    session
}

/// `--analyze`: the self-gating soundness check. The DRF workload must
/// analyze clean, the known-defect fixtures must each be flagged for
/// the right reason, and the known-good fixtures must be clean. Any
/// mismatch exits non-zero, which is what CI's analyze-gate step
/// relies on.
fn run_analyze() {
    let mut failures: Vec<String> = Vec::new();
    let mut check = |name: &str, report: &Report, ok: bool, expect: &str| {
        if !ok {
            failures.push(format!(
                "{name}: expected {expect}, got {} defect(s): {:?}",
                report.defects.len(),
                report
                    .defects
                    .iter()
                    .map(|d| d.kind.name())
                    .collect::<Vec<_>>()
            ));
        }
    };

    let session = drf_workload_session();
    let workload = pdc_analyze::analyze(&session);
    check(
        "drf_workload",
        &workload,
        workload.clean() && workload.dropped == 0,
        "a clean report with no dropped events",
    );

    let racy = pdc_analyze::analyze(&fixtures::racy_counter_session());
    check(
        "racy_counter",
        &racy,
        racy.count_kind(DefectKind::DataRace) >= 1
            && racy.count_kind(DefectKind::LocksetViolation) >= 1,
        "both a data_race and a lockset_violation",
    );
    let fixed = pdc_analyze::analyze(&fixtures::fixed_counter_session());
    check("fixed_counter", &fixed, fixed.clean(), "a clean report");
    let (dl_session, _) = fixtures::deadlocky_philosophers_session(5);
    let deadlocky = pdc_analyze::analyze(&dl_session);
    check(
        "deadlocky_philosophers",
        &deadlocky,
        deadlocky.count_kind(DefectKind::LockOrderCycle) >= 1,
        "a predicted lock_order_cycle",
    );
    let (ord_session, _) = fixtures::ordered_philosophers_session(5);
    let ordered = pdc_analyze::analyze(&ord_session);
    check(
        "ordered_philosophers",
        &ordered,
        ordered.clean(),
        "a clean report",
    );
    let (arb_session, _) = fixtures::arbitrator_philosophers_session(5);
    let arbitrator = pdc_analyze::analyze(&arb_session);
    check(
        "arbitrator_philosophers",
        &arbitrator,
        arbitrator.clean() && arbitrator.gated_cycles.len() == 1,
        "a clean report with the ring gate-suppressed",
    );
    let mpi = pdc_analyze::analyze(&fixtures::mpi_mismatch_session());
    check(
        "mpi_mismatch",
        &mpi,
        mpi.count_kind(DefectKind::MpiUnmatchedSend) >= 1
            && mpi.count_kind(DefectKind::MpiCollectiveOrder) >= 1
            && mpi.count_kind(DefectKind::MpiUnmatchedCollective) >= 1,
        "all three MPI lint kinds",
    );

    let named: Vec<(&str, &Report, &str)> = vec![
        ("drf_workload", &workload, "clean"),
        ("racy_counter", &racy, "race + lockset"),
        ("fixed_counter", &fixed, "clean"),
        ("deadlocky_philosophers", &deadlocky, "lock-order cycle"),
        ("ordered_philosophers", &ordered, "clean"),
        ("arbitrator_philosophers", &arbitrator, "clean (gated ring)"),
        ("mpi_mismatch", &mpi, "3 MPI lints"),
    ];
    let mut t = Table::new(
        "pdc-analyze self-test (experiments --analyze)",
        &["workload", "events", "defects", "gated", "expected"],
    );
    for (name, r, expect) in &named {
        t.row(&[
            name.to_string(),
            r.events_analyzed.to_string(),
            r.defects.len().to_string(),
            r.gated_cycles.len().to_string(),
            expect.to_string(),
        ]);
    }
    print!("{}", t.render());

    write_text_file(
        std::path::Path::new("target/pdc-trace/experiments.analyze.json"),
        &workload.to_json(),
    )
    .expect("write analyze report");
    let mut fx = String::from("{\"schema\":\"pdc-analyze/1\",\"mode\":\"fixtures\",\"fixtures\":[");
    for (i, (name, r, _)) in named.iter().skip(1).enumerate() {
        if i > 0 {
            fx.push(',');
        }
        fx.push_str(&format!(
            "{{\"name\":\"{name}\",\"report\":{}}}",
            r.to_json()
        ));
    }
    fx.push_str("]}");
    write_text_file(
        std::path::Path::new("target/pdc-trace/experiments.fixtures.analyze.json"),
        &fx,
    )
    .expect("write fixtures report");
    println!("analyze reports written to target/pdc-trace/experiments.analyze.json");
    println!("               and to target/pdc-trace/experiments.fixtures.analyze.json");

    if failures.is_empty() {
        println!("analyze gate: all {} verdicts match", named.len());
    } else {
        for f in &failures {
            eprintln!("analyze gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// `--shard`: the multi-process determinism gate. One op script runs
/// through the DHT-sharded KV three ways — single process unbatched,
/// single process batched, and as `1 + SHARDS` OS processes over
/// loopback TCP with batching — and every way must land on the same
/// final state. The wire run's per-process pdc-trace snapshots are
/// merged into one `pdc-trace/3` document, which must carry nonzero
/// per-process `mpi.msgs` and analyze clean. Children re-executed by
/// [`pdc_mpi::WireWorld`] re-enter this function (dispatched in `main`
/// before argument parsing) and never return from `run_wire`.
fn run_shard_gate() {
    use pdc_db::sharded;
    const SHARDS: usize = 3;
    let ops = sharded::script(64, 2_000, 0x5EED);
    let opts = pdc_mpi::WireOptions::for_args(SHARDS + 1, "shard-gate", &["--shard"])
        .traced("target/pdc-trace/shard");
    // Children exit inside this call; everything below is parent-only.
    let wire = sharded::run_wire(&opts, SHARDS, &ops, true);

    let (plain_state, plain_stats) = sharded::run_local(SHARDS, &ops, false);
    let (batched_state, batched_stats) = sharded::run_local(SHARDS, &ops, true);
    let merged = wire.trace.as_ref().expect("traced wire run");
    let report = pdc_analyze::analyze_merged(merged);

    let mut failures: Vec<String> = Vec::new();
    if wire.results[0] != plain_state {
        failures.push("multi-process state diverged from single-process".into());
    }
    if batched_state != plain_state {
        failures.push("batched routing changed the final state".into());
    }
    if batched_stats.messages >= plain_stats.messages {
        failures.push(format!(
            "batching did not reduce messages ({} vs {})",
            batched_stats.messages, plain_stats.messages
        ));
    }
    for p in &merged.processes {
        if p.counters.get("mpi.msgs").copied().unwrap_or(0) == 0 {
            failures.push(format!("process {} recorded zero mpi.msgs", p.process));
        }
    }
    if merged.counter("db.shard_ops") != ops.len() as u64 {
        failures.push(format!(
            "shards served {} of {} ops",
            merged.counter("db.shard_ops"),
            ops.len()
        ));
    }
    if !report.clean() {
        failures.push(format!(
            "pdc-analyze flagged the merged trace: {:?}",
            report
                .defects
                .iter()
                .map(|d| d.kind.name())
                .collect::<Vec<_>>()
        ));
    }

    let mut t = Table::new(
        "shard gate (experiments --shard) — 2000 ops, 3 shards + router",
        &["run", "processes", "messages", "keys left"],
    );
    t.row(&[
        "threads, unbatched".into(),
        "1".into(),
        plain_stats.messages.to_string(),
        plain_state.len().to_string(),
    ]);
    t.row(&[
        "threads, batched".into(),
        "1".into(),
        batched_stats.messages.to_string(),
        batched_state.len().to_string(),
    ]);
    t.row(&[
        "OS processes, batched".into(),
        (SHARDS + 1).to_string(),
        wire.stats.messages.to_string(),
        wire.results[0].len().to_string(),
    ]);
    print!("{}", t.render());

    let path = std::path::Path::new("target/pdc-trace/shard/merged.trace.json");
    write_text_file(
        path,
        &merged.to_json(&[("source", "experiments --shard".to_string())]),
    )
    .expect("write merged trace");
    println!("merged pdc-trace/3 snapshot written to {}", path.display());
    write_text_file(
        std::path::Path::new("target/pdc-trace/shard/merged.analyze.json"),
        &report.to_json(),
    )
    .expect("write merged analyze report");

    if failures.is_empty() {
        println!(
            "shard gate: states identical across {} runs, {} events analyzed clean",
            3, report.events_analyzed
        );
    } else {
        for f in &failures {
            eprintln!("shard gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// `--check`: the model-checker soundness gate, CI's check-gate step.
/// Seven verdicts, each printed as a greppable line and any mismatch
/// exits non-zero:
///
/// 1. PCT exploration must flag the racy counter fixture within 1000
///    schedules (the "finds the bug" direction);
/// 2. exhaustive DFS over the 2-thread/1-op fixed counter must
///    terminate `complete` with every schedule clean (the "no false
///    alarm" direction);
/// 3. the minimized failing schedule is written to
///    `target/pdc-check/minimal.schedule.json`, parsed back from disk,
///    and strict-replayed — the replay must reproduce the race verdict
///    and a byte-identical canonical trace (the record/replay
///    contract);
/// 4. DPOR must prove the same fixed counter clean with the same
///    `complete` certificate in *strictly fewer* schedules than DFS
///    (the reduction is real, not a renamed DFS);
/// 5. DPOR must still flag the racy counter (pruning never drops a
///    behaviour class);
/// 6. DPOR must still find the AB-BA deadlock precisely;
/// 7. DPOR must finish the independent-counters body `complete` at a
///    budget where DFS provably cannot (the scaling claim).
///
/// The minimal run's analyze report and HTML timeline land next to the
/// schedule for artifact upload.
fn run_check_gate() {
    use pdc_check::{
        explore_dfs, explore_dpor, explore_pct, fixtures as check_fx, replay_strict, Config,
        Outcome,
    };

    let mut failures: Vec<String> = Vec::new();
    let cfg = Config {
        max_schedules: 1000,
        ..Config::default()
    };

    // Direction 1: the bug is found.
    let racy = explore_pct(check_fx::racy_counter_body(2), &cfg);
    match &racy.failure {
        Some(found) => {
            println!(
                "check gate: racy counter flagged after {} schedule(s) via pct: {}",
                racy.schedules_run, found.description
            );
            if found.minimal_run.report.count_kind(DefectKind::DataRace) == 0 {
                failures.push(format!(
                    "minimal schedule's trace lost the data_race verdict: {:?}",
                    found
                        .minimal_run
                        .report
                        .defects
                        .iter()
                        .map(|d| d.kind.name())
                        .collect::<Vec<_>>()
                ));
            }
        }
        None => failures.push(format!(
            "pct missed the racy counter in {} schedules",
            racy.schedules_run
        )),
    }

    // Direction 2: the fix is proven, not just stress-tested.
    let dfs_cfg = Config {
        max_schedules: 50_000,
        ..Config::default()
    };
    let fixed = explore_dfs(check_fx::fixed_counter_body(2, 1), &dfs_cfg);
    if fixed.complete && fixed.passed() {
        println!(
            "check gate: fixed counter proven clean by exhaustive dfs ({} schedules, complete)",
            fixed.schedules_run
        );
    } else {
        failures.push(format!(
            "dfs verdict on the fixed counter: complete={}, failure={:?}",
            fixed.complete,
            fixed.failure.as_ref().map(|f| &f.description)
        ));
    }

    // The record/replay contract, through the filesystem like a student
    // (or CI artifact consumer) would exercise it.
    let dir = std::path::Path::new("target/pdc-check");
    if let Some(found) = &racy.failure {
        let sched_path = dir.join("minimal.schedule.json");
        write_text_file(&sched_path, &found.minimal.to_json()).expect("write minimal schedule");
        println!(
            "minimized pdc-check/1 schedule ({} choices) written to {}",
            found.minimal.choices.len(),
            sched_path.display()
        );
        write_text_file(
            &dir.join("minimal.analyze.json"),
            &found.minimal_run.report.to_json(),
        )
        .expect("write minimal analyze report");
        write_text_file(
            &dir.join("minimal.timeline.html"),
            &pdc_core::timeline::render_html(
                "pdc-check minimal racy-counter schedule",
                &found.minimal_run.events,
            ),
        )
        .expect("write minimal timeline");

        let reread = std::fs::read_to_string(&sched_path).expect("re-read minimal schedule");
        match pdc_check::Schedule::parse(&reread) {
            // Strict replay: a schedule naming tasks the body never
            // spawned is a typed error here, not a mid-replay panic.
            Ok(parsed) => match replay_strict(check_fx::racy_counter_body(2), &parsed, &cfg) {
                Ok(rerun) => {
                    let verdict_ok =
                        rerun.failed(&cfg) && rerun.report.count_kind(DefectKind::DataRace) >= 1;
                    let trace_ok = rerun.trace_jsonl == found.minimal_run.trace_jsonl;
                    if verdict_ok && trace_ok {
                        println!(
                            "check gate: minimal schedule replay reproduced the race verdict byte-identically"
                        );
                    } else {
                        failures.push(format!(
                            "replay of the written schedule diverged: verdict_ok={verdict_ok}, trace_ok={trace_ok}"
                        ));
                    }
                }
                Err(e) => failures.push(format!("strict replay rejected the schedule: {e}")),
            },
            Err(e) => failures.push(format!("written schedule failed to parse: {e}")),
        }
    }

    // Directions 4-7: the partial-order reduction, both ways. A
    // reduction that misses bugs is unsound; one that runs as many
    // schedules as DFS is not a reduction.
    let dpor_fixed = explore_dpor(check_fx::fixed_counter_body(2, 1), &dfs_cfg);
    if dpor_fixed.complete && dpor_fixed.passed() && dpor_fixed.schedules_run < fixed.schedules_run
    {
        println!(
            "check gate: dpor proves fixed counter clean in strictly fewer schedules than dfs ({} vs {}, {} sleep-set prunes)",
            dpor_fixed.schedules_run, fixed.schedules_run, dpor_fixed.pruned
        );
    } else {
        failures.push(format!(
            "dpor on the fixed counter: complete={}, passed={}, schedules {} vs dfs {}",
            dpor_fixed.complete,
            dpor_fixed.passed(),
            dpor_fixed.schedules_run,
            fixed.schedules_run
        ));
    }

    let dpor_racy = explore_dpor(check_fx::racy_counter_body(2), &cfg);
    match &dpor_racy.failure {
        Some(found) => println!(
            "check gate: dpor flags racy counter after {} schedule(s): {}",
            dpor_racy.schedules_run, found.description
        ),
        None => failures.push(format!(
            "dpor missed the racy counter in {} schedules",
            dpor_racy.schedules_run
        )),
    }

    let dl_cfg = Config {
        max_schedules: 50_000,
        fail_on_defects: false,
        ..Config::default()
    };
    let dpor_dl = explore_dpor(check_fx::abba_deadlock_body(), &dl_cfg);
    match dpor_dl.failure.as_ref().map(|f| &f.run.outcome) {
        Some(Outcome::Deadlock(live)) => println!(
            "check gate: dpor finds ab-ba deadlock of tasks {live:?} ({} schedules)",
            dpor_dl.schedules_run
        ),
        other => failures.push(format!("dpor on AB-BA locks returned {other:?}")),
    }

    let scale_cfg = Config {
        max_schedules: 200,
        ..Config::default()
    };
    let dfs_scale = explore_dfs(check_fx::independent_counters_body(4, 1), &scale_cfg);
    let dpor_scale = explore_dpor(check_fx::independent_counters_body(4, 1), &scale_cfg);
    if !dfs_scale.complete && dpor_scale.complete && dpor_scale.passed() {
        println!(
            "check gate: dpor completes a body dfs could not finish at equal budget ({} schedules vs {}+ for dfs)",
            dpor_scale.schedules_run, dfs_scale.schedules_run
        );
    } else {
        failures.push(format!(
            "scaling direction: dfs complete={} ({} schedules), dpor complete={} passed={} ({} schedules)",
            dfs_scale.complete,
            dfs_scale.schedules_run,
            dpor_scale.complete,
            dpor_scale.passed(),
            dpor_scale.schedules_run
        ));
    }

    let mut t = Table::new(
        "pdc-check soundness gate (experiments --check)",
        &["direction", "strategy", "schedules", "verdict"],
    );
    t.row(&[
        "racy counter is flagged".into(),
        "pct".into(),
        racy.schedules_run.to_string(),
        racy.failure
            .as_ref()
            .map_or("MISSED".into(), |f| f.description.clone()),
    ]);
    t.row(&[
        "fixed counter is clean".into(),
        "dfs (exhaustive)".into(),
        fixed.schedules_run.to_string(),
        if fixed.complete && fixed.passed() {
            "clean, complete".into()
        } else {
            "FAILED".into()
        },
    ]);
    t.row(&[
        "replay reproduces the verdict".into(),
        "strict replay".into(),
        "1".into(),
        if failures.is_empty() {
            "byte-identical".into()
        } else {
            "see failures".into()
        },
    ]);
    t.row(&[
        "fixed counter, reduced".into(),
        "dpor".into(),
        format!(
            "{} (dfs: {})",
            dpor_fixed.schedules_run, fixed.schedules_run
        ),
        if dpor_fixed.complete && dpor_fixed.passed() {
            "clean, complete".into()
        } else {
            "FAILED".into()
        },
    ]);
    t.row(&[
        "racy counter, reduced".into(),
        "dpor".into(),
        dpor_racy.schedules_run.to_string(),
        dpor_racy
            .failure
            .as_ref()
            .map_or("MISSED".into(), |f| f.description.clone()),
    ]);
    t.row(&[
        "AB-BA deadlock, reduced".into(),
        "dpor".into(),
        dpor_dl.schedules_run.to_string(),
        dpor_dl
            .failure
            .as_ref()
            .map_or("MISSED".into(), |f| f.description.clone()),
    ]);
    t.row(&[
        "independent counters scale".into(),
        "dpor vs dfs @200".into(),
        format!(
            "{} vs {}+",
            dpor_scale.schedules_run, dfs_scale.schedules_run
        ),
        if dpor_scale.complete && !dfs_scale.complete {
            "dpor complete, dfs out of budget".into()
        } else {
            "FAILED".into()
        },
    ]);
    print!("{}", t.render());

    if failures.is_empty() {
        println!("check gate: all 7 verdicts match");
    } else {
        for f in &failures {
            eprintln!("check gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// `--render`: run a compact traced workload spanning threads and MPI
/// collectives and emit it as a self-contained HTML timeline — the
/// trace-viewer stub from the roadmap. No scripts, no assets: the file
/// opens from `target/` in any browser.
fn run_render(path: &std::path::Path) {
    use pdc_sync::PdcMutex;
    let session = TraceSession::new();

    // Threads: a fork-join diamond plus a short mutex hand-off, so the
    // timeline shows fork/join arrows-worth of markers and lock pairs.
    trace::install_sync_trace(session.thread(0));
    let counter = std::sync::Arc::new(PdcMutex::new(0u64));
    let var = trace::next_site_id();
    let c2 = std::sync::Arc::clone(&counter);
    let (a, b) = pdc_threads::join(
        move || {
            for _ in 0..2 {
                let mut g = counter.lock();
                trace::record_var_write(var);
                *g += 1;
            }
            1u64
        },
        move || {
            for _ in 0..2 {
                let mut g = c2.lock();
                trace::record_var_write(var);
                *g += 1;
            }
            1u64
        },
    );
    std::hint::black_box(a + b);
    trace::clear_sync_trace();

    // MPI: 4 ranks through an allreduce and a barrier — the coll
    // begin/end pairs become the shaded spans in the rendering.
    let (_, _) = pdc_mpi::World::run_traced(4, &session, |rank| {
        let sum = pdc_mpi::coll::allreduce(rank, rank.id() as u64, |a, b| a + b);
        pdc_mpi::coll::barrier::<u64, _>(rank);
        sum
    });

    let events = session.events();
    let html = pdc_core::timeline::render_html(
        "pdc-trace timeline — fork-join + mutex + MPI collectives",
        &events,
    );
    write_text_file(path, &html).expect("write timeline html");
    println!(
        "timeline rendered: {} events across {} actors to {}",
        events.len(),
        {
            let mut actors: Vec<u32> = events.iter().map(|e| e.actor).collect();
            actors.sort_unstable();
            actors.dedup();
            actors.len()
        },
        path.display()
    );
}

/// Write the captured per-experiment tables as one JSON document next
/// to the trace snapshot (same directory, fixed name).
fn write_tables_json(entries: &[(&str, Vec<String>)]) {
    let mut json = String::from("{\"schema\":\"pdc-tables/1\",\"experiments\":[");
    for (i, (id, tables)) in entries.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"id\":\"{id}\",\"tables\":[{}]}}",
            tables.join(",")
        ));
    }
    json.push_str("]}");
    let path = std::path::Path::new("target/pdc-trace/experiments.tables.json");
    write_text_file(path, &json).expect("write tables json");
    println!("tables JSON written to {}", path.display());
}

fn main() {
    // Wire children re-exec this binary; route them straight back into
    // the world they belong to before any argument handling.
    if let Some(world) = pdc_mpi::WireWorld::child_world_id() {
        if world == pdc_bench::exp_serve::WORLD_ID || world == pdc_bench::exp_scenario::WORLD_ID {
            pdc_db::serve::run_shard_child();
        }
        if world.starts_with(pdc_bench::exp_scenario::WC_WIRE_PREFIX) {
            pdc_db::run_wire_wordcount_child(
                &pdc_bench::exp_scenario::wordcount_wire_spec(),
                &world,
            );
        }
        if world == pdc_bench::exp_wire::WORLD_STAR || world == pdc_bench::exp_wire::WORLD_MESH {
            pdc_bench::exp_wire::reenter(&world);
        }
        run_shard_gate();
        unreachable!("wire child returned from its world");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    match args.as_slice() {
        [flag] if flag == "--list" => {
            for e in &reg {
                let kind = if e.gate { " [gate]" } else { "" };
                println!("{:16} {}{kind}", e.id, e.anchor);
            }
        }
        [flag, rest @ ..] if flag == "--trace" && rest.len() <= 1 => {
            let default = "target/pdc-trace/experiments.trace.json".to_string();
            let path = rest.first().unwrap_or(&default);
            run_traced_workload(std::path::Path::new(path));
        }
        [flag] if flag == "--analyze" => run_analyze(),
        [flag] if flag == "--shard" => run_shard_gate(),
        [flag] if flag == "--serve" => pdc_bench::exp_serve::run_serve_gate(),
        [flag] if flag == "--wire" => pdc_bench::exp_wire::run_wire_gate(),
        [flag] if flag == "--scenario" => pdc_bench::exp_scenario::run_scenario_gate(),
        [flag] if flag == "--span" => pdc_bench::exp_span::run_span_gate(),
        [flag] if flag == "--check" => run_check_gate(),
        [flag, rest @ ..] if flag == "--render" && rest.len() <= 1 => {
            let default = "target/pdc-trace/experiments.timeline.html".to_string();
            let path = rest.first().unwrap_or(&default);
            run_render(std::path::Path::new(path));
        }
        [flag, id] if flag == "--exp" => match reg.iter().find(|e| e.id == *id) {
            Some(e) => {
                let (out, tables) = capture_tables(e.run);
                println!("=== {} — {}\n", e.id, e.anchor);
                println!("{out}");
                write_tables_json(&[(e.id, tables)]);
            }
            None => {
                eprintln!("unknown experiment {id:?}; try --list");
                std::process::exit(1);
            }
        },
        [] => {
            let mut entries = Vec::new();
            // Gates self-check, spawn OS processes, and exit non-zero on
            // failure — they run behind their own flags, not the sweep.
            for e in reg.iter().filter(|e| !e.gate) {
                let (out, tables) = capture_tables(e.run);
                println!("=== {} — {}\n", e.id, e.anchor);
                println!("{out}");
                entries.push((e.id, tables));
            }
            write_tables_json(&entries);
        }
        _ => {
            eprintln!(
                "usage: experiments [--list | --exp <id> | --trace [path] | --analyze | --shard | --serve | --wire | --scenario | --span | --check | --render [path]]"
            );
            std::process::exit(2);
        }
    }
}
