//! Regenerate every paper-table reproduction.
//!
//! ```text
//! experiments              # run everything
//! experiments --list       # list experiment ids
//! experiments --exp <id>   # run one
//! ```

use pdc_bench::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    match args.as_slice() {
        [flag] if flag == "--list" => {
            for e in &reg {
                println!("{:16} {}", e.id, e.anchor);
            }
        }
        [flag, id] if flag == "--exp" => match reg.iter().find(|e| e.id == *id) {
            Some(e) => {
                println!("=== {} — {}\n", e.id, e.anchor);
                println!("{}", (e.run)());
            }
            None => {
                eprintln!("unknown experiment {id:?}; try --list");
                std::process::exit(1);
            }
        },
        [] => {
            for e in &reg {
                println!("=== {} — {}\n", e.id, e.anchor);
                println!("{}", (e.run)());
            }
        }
        _ => {
            eprintln!("usage: experiments [--list | --exp <id>]");
            std::process::exit(2);
        }
    }
}
