//! Extension experiments: the capstones the paper proposes for future
//! semesters — the hybrid ray tracer (CS40), the compilers unit (CS75),
//! and the databases unit (CS44).

use pdc_arch::compiler::{compile, compile_and_run, random_expr, Expr, OptLevel};
use pdc_core::report::{count_fmt, f, speedup_fmt, Table};
use pdc_core::rng::Rng;
use pdc_db::dht::HashRing;
use pdc_db::join::{hash_join, nested_loop_join, parallel_hash_join, sort_merge_join, Tuple};
use pdc_db::twopc::{Coordinator, Decision, Fault};
use pdc_os::deadlock::{Banker, RequestOutcome};
use pdc_ray::render::{render_distributed, render_sequential, render_threaded};
use pdc_ray::scene::{Camera, Scene};
use pdc_threads::parfor::Schedule;

/// The hybrid ray tracer: three execution models, identical pixels.
pub fn ray() -> String {
    let (w, h, depth) = (160usize, 120usize, 2u32);
    let scene = Scene::demo();
    let cam = Camera::demo();
    let seq = render_sequential(&scene, &cam, w, h, depth);
    let mut t = Table::new(
        "EXT-ray — hybrid ray tracer, 160x120, depth 2",
        &["renderer", "identical image", "messages", "bytes"],
    );
    t.row(&["sequential".into(), "-".into(), "-".into(), "-".into()]);
    for (name, sched) in [
        ("threads x4, static", Schedule::Static),
        ("threads x4, dynamic(4)", Schedule::Dynamic { chunk: 4 }),
        ("threads x4, guided", Schedule::Guided { min_chunk: 2 }),
    ] {
        let img = render_threaded(&scene, &cam, w, h, depth, 4, sched);
        t.row(&[
            name.into(),
            (img == seq).to_string(),
            "-".into(),
            "-".into(),
        ]);
    }
    for ranks in [2usize, 4] {
        let (img, traffic) = render_distributed(&scene, &cam, w, h, depth, ranks);
        t.row(&[
            format!("distributed p={ranks}"),
            (img == seq).to_string(),
            traffic.messages.to_string(),
            count_fmt(traffic.bytes),
        ]);
    }
    t.render()
}

/// The CS75 compilers unit: optimization payoff measured in executed
/// VM instructions.
pub fn compilers() -> String {
    let mut out = String::new();
    let mut t = Table::new(
        "EXT-compilers — optimizer payoff on random expressions (PDC-1 steps)",
        &[
            "expr",
            "O0 instrs",
            "O1 instrs",
            "O0 steps",
            "O1 steps",
            "agree",
        ],
    );
    for seed in [3u64, 8, 21, 34] {
        let e = random_expr(seed, 5, 2);
        let p0 = compile(&e, OptLevel::O0);
        let p1 = compile(&e, OptLevel::O1);
        let inputs = [7, -3];
        let (r0, s0) = compile_and_run(&e, OptLevel::O0, &inputs).unwrap();
        let (r1, s1) = compile_and_run(&e, OptLevel::O1, &inputs).unwrap();
        t.row(&[
            format!("seed {seed} (size {})", e.size()),
            p0.code.len().to_string(),
            p1.code.len().to_string(),
            s0.to_string(),
            s1.to_string(),
            (r0 == r1).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    // The named passes, one-liners each.
    let x = Expr::Var(0);
    let mut t = Table::new(
        "EXT-compilers — the three passes on canonical inputs",
        &["pass", "input", "output"],
    );
    let show = |e: &Expr| format!("{e:?}");
    t.row(&[
        "constant folding".into(),
        "(2+3)*(10-4)".into(),
        show(&pdc_arch::compiler::optimize(&Expr::mul(
            Expr::add(Expr::Const(2), Expr::Const(3)),
            Expr::sub(Expr::Const(10), Expr::Const(4)),
        ))),
    ]);
    t.row(&[
        "algebraic simplify".into(),
        "(x*1)+0".into(),
        show(&pdc_arch::compiler::optimize(&Expr::add(
            Expr::mul(x.clone(), Expr::Const(1)),
            Expr::Const(0),
        ))),
    ]);
    let shifted = compile(&Expr::mul(x, Expr::Const(8)), OptLevel::O1);
    t.row(&[
        "strength reduction".into(),
        "x*8".into(),
        format!("{} instrs incl. shl", shifted.code.len()),
    ]);
    out.push_str(&t.render());
    out
}

/// The CS44 databases unit: joins, DHT, 2PC, and the banker.
pub fn db() -> String {
    let mut out = String::new();
    // Joins agree; partitioned join balances.
    let mut rng = Rng::new(44);
    let r: Vec<Tuple> = (0..5_000)
        .map(|_| (rng.gen_range(1_000), rng.gen_range(100)))
        .collect();
    let s: Vec<Tuple> = (0..5_000)
        .map(|_| (rng.gen_range(1_000), rng.gen_range(100)))
        .collect();
    let want = {
        let mut v = nested_loop_join(&r[..500], &s[..500]);
        v.sort_unstable();
        v
    };
    let check = |mut v: Vec<pdc_db::join::Joined>| {
        v.sort_unstable();
        v == want
    };
    let mut t = Table::new(
        "EXT-db — equijoin algorithms (500x500 subset cross-check + full-size balance)",
        &[
            "algorithm",
            "matches nested-loop",
            "output rows (full)",
            "partition imbalance",
        ],
    );
    let hj_small = hash_join(&r[..500], &s[..500]);
    let sm_small = sort_merge_join(&r[..500], &s[..500]);
    let (pj_small, _) = parallel_hash_join(&r[..500], &s[..500], 4);
    let full = hash_join(&r, &s).len();
    let (_, stats) = parallel_hash_join(&r, &s, 8);
    t.row(&[
        "hash join".into(),
        check(hj_small).to_string(),
        count_fmt(full as u64),
        "-".into(),
    ]);
    t.row(&[
        "sort-merge join".into(),
        check(sm_small).to_string(),
        count_fmt(full as u64),
        "-".into(),
    ]);
    t.row(&[
        "parallel hash join (8)".into(),
        check(pj_small).to_string(),
        count_fmt(full as u64),
        f(stats.imbalance(), 3),
    ]);
    out.push_str(&t.render());
    out.push('\n');
    // DHT: key movement on node join.
    let keys: Vec<String> = (0..10_000).map(|i| format!("k{i}")).collect();
    let mut ring = HashRing::new(64);
    for n in [1u64, 2, 3, 4] {
        ring.add_node(n);
    }
    let before: Vec<_> = keys.iter().map(|k| ring.node_for(k)).collect();
    ring.add_node(5);
    let moved = keys
        .iter()
        .zip(&before)
        .filter(|(k, b)| ring.node_for(k) != **b)
        .count();
    let mut t = Table::new(
        "EXT-db — consistent hashing: adding node 5 of 5 (10_000 keys)",
        &["strategy", "keys moved", "fraction"],
    );
    t.row(&[
        "consistent hashing".into(),
        moved.to_string(),
        f(moved as f64 / keys.len() as f64, 3),
    ]);
    t.row(&[
        "naive hash % N (theory)".into(),
        "~8_000".into(),
        "~0.800".into(),
    ]);
    out.push_str(&t.render());
    out.push('\n');
    // 2PC fault matrix summary.
    let faults = [
        ("all healthy", vec![Fault::None; 3], Decision::Commit),
        (
            "one NO vote",
            vec![Fault::None, Fault::VoteNo, Fault::None],
            Decision::Abort,
        ),
        (
            "crash before vote",
            vec![Fault::None, Fault::CrashBeforeVote, Fault::None],
            Decision::Abort,
        ),
        (
            "crash after YES",
            vec![Fault::None, Fault::CrashAfterVote, Fault::None],
            Decision::Commit,
        ),
    ];
    let mut t = Table::new(
        "EXT-db — two-phase commit under failure injection (3 participants)",
        &["scenario", "decision", "atomic after recovery"],
    );
    for (name, fs, want) in faults {
        let mut c = Coordinator::new(&fs);
        let d = c.run();
        c.recover_all();
        assert_eq!(d, want);
        t.row(&[name.into(), format!("{d:?}"), c.is_atomic().to_string()]);
    }
    out.push_str(&t.render());
    out.push('\n');
    // Banker's algorithm on the textbook example.
    let mut b = Banker::new(
        vec![3, 3, 2],
        vec![
            vec![7, 5, 3],
            vec![3, 2, 2],
            vec![9, 0, 2],
            vec![2, 2, 2],
            vec![4, 3, 3],
        ],
        vec![
            vec![0, 1, 0],
            vec![2, 0, 0],
            vec![3, 0, 2],
            vec![2, 1, 1],
            vec![0, 0, 2],
        ],
    );
    let mut t = Table::new(
        "EXT-db/os — banker's algorithm (Silberschatz example)",
        &["event", "outcome"],
    );
    t.row(&[
        "initial safety".into(),
        format!("safe, sequence {:?}", b.safe_sequence().unwrap()),
    ]);
    t.row(&[
        "P1 requests (1,0,2)".into(),
        format!("{:?}", b.request(1, &[1, 0, 2])),
    ]);
    let denied = b.request(0, &[0, 2, 0]);
    assert_eq!(denied, RequestOutcome::DeniedUnsafe);
    t.row(&["P0 requests (0,2,0)".into(), format!("{denied:?}")]);
    out.push_str(&t.render());
    out
}

/// Speedup helper reused in tables (kept for API symmetry).
pub fn speedup_cell(base: f64, x: f64) -> String {
    speedup_fmt(base / x)
}

#[cfg(test)]
mod tests {
    #[test]
    fn ray_table_all_identical() {
        let out = super::ray();
        assert!(!out.contains("false"), "every renderer must match: {out}");
    }

    #[test]
    fn db_table_atomic_everywhere() {
        let out = super::db();
        assert!(out.contains("DeniedUnsafe"));
        assert!(!out.contains("false"));
    }

    #[test]
    fn compilers_o1_agrees() {
        let out = super::compilers();
        assert!(!out.contains("false"));
    }
}
