//! Table I experiments: the CS31 lab sequence.

use pdc_arch::bomb::{Bomb, Phase};
use pdc_arch::datarep;
use pdc_arch::logic::Circuit;
use pdc_arch::veclab::{AccountedVec, Growth};
use pdc_core::report::{count_fmt, f, speedup_fmt, Table};
use pdc_core::scaling;
use pdc_life::grid::{Boundary, Grid};
use pdc_life::scaling::{modeled_strong_scaling, verified_run};
use pdc_os::process::Signal;
use pdc_os::shell::Shell;

/// Data-representation lab: encodings and overflow cases at 8 bits.
pub fn datarep() -> String {
    let mut t = Table::new(
        "T1-datarep — two's complement at 8 bits (lab answer table)",
        &[
            "value",
            "pattern (bin)",
            "pattern (hex)",
            "add 1 ->",
            "overflow?",
        ],
    );
    for v in [0i64, 1, -1, 127, -128, 42, -42] {
        let p = datarep::to_twos_complement(v, 8).unwrap();
        let r = datarep::add_with_flags(p, 1, 8);
        t.row(&[
            v.to_string(),
            datarep::to_binary_string(p, 8),
            datarep::to_hex_string(p, 8),
            datarep::from_twos_complement(r.pattern, 8)
                .unwrap()
                .to_string(),
            if r.overflow { "signed-OV" } else { "-" }.to_string(),
        ]);
    }
    t.render()
}

/// ALU lab: gate counts and depths of the two adder designs.
pub fn alu() -> String {
    let mut t = Table::new(
        "T1-alu — adder designs from NAND gates (cost vs delay)",
        &["width", "design", "gates", "depth"],
    );
    for width in [4usize, 8, 16, 32] {
        for kogge in [false, true] {
            let mut c = Circuit::new();
            let a = c.input_bus("a", width);
            let b = c.input_bus("b", width);
            let cin = c.constant(false);
            let (sum, _) = if kogge {
                c.kogge_stone_adder(&a, &b, cin)
            } else {
                c.ripple_adder(&a, &b, cin)
            };
            t.row(&[
                width.to_string(),
                if kogge { "kogge-stone" } else { "ripple" }.to_string(),
                c.gate_count().to_string(),
                c.depth_of_bus(&sum).to_string(),
            ]);
        }
    }
    t.render()
}

/// Binary-bomb lab: generated bombs, defusal outcomes.
pub fn bomb() -> String {
    let mut t = Table::new(
        "T1-bomb — seeded binary bombs on the PDC-1 ISA",
        &["seed", "phases", "attempt", "defused", "exploded"],
    );
    for seed in [1u64, 2, 3] {
        let bomb = Bomb::generate(seed, 3);
        let key = bomb.answer_key();
        let good = bomb.attempt(&key).unwrap();
        t.row(&[
            seed.to_string(),
            "3".into(),
            "answer key".into(),
            good.phases_defused.to_string(),
            good.exploded.to_string(),
        ]);
        let mut bad = key.clone();
        bad[0] += 1;
        let oops = bomb.attempt(&bad).unwrap();
        t.row(&[
            seed.to_string(),
            "3".into(),
            "wrong first input".into(),
            oops.phases_defused.to_string(),
            oops.exploded.to_string(),
        ]);
    }
    // One fancy phase for the table's sake.
    let fib = Bomb::new(vec![Phase::Fibonacci(20)]);
    let out = fib.attempt(&fib.answer_key()).unwrap();
    t.row(&[
        "-".into(),
        "fib(20)".into(),
        "answer key".into(),
        out.phases_defused.to_string(),
        out.exploded.to_string(),
    ]);
    t.render()
}

/// Python-lists-in-C lab: growth policy vs copy traffic.
pub fn veclab() -> String {
    let n = 100_000usize;
    let mut t = Table::new(
        "T1-veclab — growable-array growth policy vs memcpy traffic (n = 100_000 appends)",
        &["policy", "allocations", "elements copied", "copies/append"],
    );
    let policies: Vec<(&str, Growth)> = vec![
        ("double (x2.0)", Growth::Factor(2.0)),
        ("x1.5", Growth::Factor(1.5)),
        ("+1024", Growth::Increment(1024)),
        ("+64", Growth::Increment(64)),
    ];
    for (name, g) in policies {
        let mut v = AccountedVec::with_growth(g);
        for i in 0..n {
            v.push(i);
        }
        let s = v.stats();
        t.row(&[
            name.to_string(),
            s.allocations.to_string(),
            count_fmt(s.elements_copied),
            f(s.elements_copied as f64 / n as f64, 2),
        ]);
    }
    t.render()
}

/// Unix-shell lab: a scripted session against the process model.
pub fn shell() -> String {
    let mut sh = Shell::new();
    let mut t = Table::new(
        "T1-shell — scripted shell session (fork/exec/wait/signals)",
        &["action", "pid", "observed"],
    );
    let fg = sh.run("gcc prog.c", 0).unwrap();
    t.row(&[
        "run gcc (fg)".into(),
        fg.to_string(),
        "completed rc=0".into(),
    ]);
    let j = sh.spawn_bg("./simulate &").unwrap();
    t.row(&[
        "spawn bg job".into(),
        j.pid.to_string(),
        format!("job [{}]", j.job_no),
    ]);
    let fg2 = sh.run("ls", 0).unwrap();
    t.row(&[
        "run ls (fg)".into(),
        fg2.to_string(),
        "completed rc=0".into(),
    ]);
    t.row(&[
        "jobs".into(),
        "-".into(),
        format!("{} running", sh.jobs().len()),
    ]);
    sh.kill(j.pid, Signal::Kill).unwrap();
    sh.prompt();
    t.row(&[
        "kill -9 then prompt".into(),
        j.pid.to_string(),
        format!("{} running, job reaped", sh.jobs().len()),
    ]);
    t.render()
}

/// Game-of-Life timing lab (sequential): work grows with area.
pub fn life_seq() -> String {
    let mut t = Table::new(
        "T1-life — sequential Game of Life (work scales with area)",
        &["grid", "generations", "cell updates", "final population"],
    );
    for n in [64usize, 128, 256] {
        let g = Grid::random(n, n, Boundary::Torus, 0.3, 2013);
        let (out, updates) = pdc_life::engine::step_generations(&g, 20);
        t.row(&[
            format!("{n}x{n}"),
            "20".into(),
            count_fmt(updates),
            out.population().to_string(),
        ]);
    }
    t.render()
}

/// The scalability study: modeled strong scaling + threaded-vs-seq
/// verification (the lab's full report).
pub fn parlife() -> String {
    let mut out = String::new();
    // Verification: threaded result identical to sequential.
    let g = Grid::random(64, 64, Boundary::Torus, 0.35, 31);
    let (_, updates) = verified_run(&g, 10, 4);
    let mut v = Table::new(
        "T1-parlife — correctness check (threads vs sequential)",
        &["grid", "generations", "workers", "updates", "identical?"],
    );
    v.row(&[
        "64x64".into(),
        "10".into(),
        "4".into(),
        count_fmt(updates),
        "yes".into(),
    ]);
    out.push_str(&v.render());
    out.push('\n');
    // The study proper, on the deterministic machine model.
    for (rows, cols) in [(256usize, 256usize), (1024, 1024)] {
        let curve = modeled_strong_scaling(rows, cols, 100, &[1, 2, 4, 8, 16, 32]);
        let t = scaling::scaling_table(
            &format!("T1-parlife — modeled strong scaling, {rows}x{cols}, 100 generations"),
            &curve,
        );
        out.push_str(&t.render());
        out.push('\n');
    }
    // Amdahl fit of the large curve.
    let curve = modeled_strong_scaling(1024, 1024, 100, &[1, 2, 4, 8, 16, 32]);
    if let Some(s) = curve.fit_serial_fraction() {
        let mut t = Table::new(
            "T1-parlife — Amdahl fit of the modeled curve",
            &["fitted serial fraction", "implied ceiling"],
        );
        t.row(&[
            f(s, 4),
            if s > 0.0 {
                speedup_fmt(1.0 / s)
            } else {
                "inf".into()
            },
        ]);
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn parlife_tables_contain_speedups() {
        let out = super::parlife();
        assert!(out.contains("speedup"));
        assert!(out.contains("1024x1024"));
        assert!(out.contains("yes"));
    }

    #[test]
    fn veclab_shows_doubling_is_cheap() {
        let out = super::veclab();
        assert!(out.contains("double"));
    }
}
