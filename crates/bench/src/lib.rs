//! # pdc-bench — the experiment harness
//!
//! Regenerates every table/figure reproduction listed in `DESIGN.md` and
//! `EXPERIMENTS.md`. The paper (an education paper) has three content
//! tables rather than measurement tables; each experiment here runs the
//! *quantitative phenomenon* a table row teaches and prints it in the
//! lab-report format students would produce.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p pdc-bench --bin experiments --release
//! ```
//!
//! or one experiment: `... -- --exp t1-parlife`. Criterion wall-clock
//! benches live in `benches/`.

#![warn(missing_docs)]

pub mod exp_check;
pub mod exp_e;
pub mod exp_ext;
pub mod exp_scenario;
pub mod exp_serve;
pub mod exp_shard;
pub mod exp_span;
pub mod exp_t1;
pub mod exp_t2;
pub mod exp_t3;
pub mod exp_wire;

/// One runnable experiment: id, paper anchor, and the renderer.
pub struct Experiment {
    /// Short id (`t1-parlife`).
    pub id: &'static str,
    /// What part of the paper it reproduces.
    pub anchor: &'static str,
    /// Runs the experiment and renders its table(s).
    pub run: fn() -> String,
    /// Self-gated experiments (`--serve`, `--wire`, `--scenario`) spawn
    /// OS processes and exit non-zero on failed checks, so the
    /// run-everything sweep skips them; they are registered so
    /// `--list` shows the complete experiment surface.
    pub gate: bool,
}

/// The registry of every experiment, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "t1-datarep",
            anchor: "Table I: Data Representation lab",
            run: exp_t1::datarep,
            gate: false,
        },
        Experiment {
            id: "t1-alu",
            anchor: "Table I: Building an ALU lab",
            run: exp_t1::alu,
            gate: false,
        },
        Experiment {
            id: "t1-bomb",
            anchor: "Table I: Binary Bomb lab",
            run: exp_t1::bomb,
            gate: false,
        },
        Experiment {
            id: "t1-veclab",
            anchor: "Table I: Python lists in C lab",
            run: exp_t1::veclab,
            gate: false,
        },
        Experiment {
            id: "t1-shell",
            anchor: "Table I: Unix Shell lab",
            run: exp_t1::shell,
            gate: false,
        },
        Experiment {
            id: "t1-life",
            anchor: "Table I: Game of Life lab (timing)",
            run: exp_t1::life_seq,
            gate: false,
        },
        Experiment {
            id: "t1-parlife",
            anchor: "Table I: Parallel Game of Life + scalability study",
            run: exp_t1::parlife,
            gate: false,
        },
        Experiment {
            id: "t2-cache",
            anchor: "Table II: The Memory Hierarchy",
            run: exp_t2::cache,
            gate: false,
        },
        Experiment {
            id: "t2-os",
            anchor: "Table II: Operating Systems (scheduling, paging)",
            run: exp_t2::os,
            gate: false,
        },
        Experiment {
            id: "t2-sync",
            anchor: "Table II: Parallel Algorithms and Programming (sync)",
            run: exp_t2::sync,
            gate: false,
        },
        Experiment {
            id: "t2-amdahl",
            anchor: "Table II: Amdahl's Law, Scalability, Speed-up",
            run: exp_t2::amdahl,
            gate: false,
        },
        Experiment {
            id: "t2-pipeline",
            anchor: "Table II: Pipelining, Super-scalar (lecture topics)",
            run: exp_t2::pipeline,
            gate: false,
        },
        Experiment {
            id: "t3-models",
            anchor: "Table III: PRAM, Work, Span, Scalability",
            run: exp_t3::models,
            gate: false,
        },
        Experiment {
            id: "t3-mergesort",
            anchor: "Table III: merge sort across RAM/parallel/I-O models",
            run: exp_t3::mergesort,
            gate: false,
        },
        Experiment {
            id: "t3-problems",
            anchor: "Table III: Sorting, Selection, Matrix Computation",
            run: exp_t3::problems,
            gate: false,
        },
        Experiment {
            id: "e-gpu",
            anchor: "Sec III-A (CS40): CUDA reduction ladder",
            run: exp_e::gpu,
            gate: false,
        },
        Experiment {
            id: "e-collectives",
            anchor: "Sec III-A (CS87): MPI collectives, alpha-beta",
            run: exp_e::collectives,
            gate: false,
        },
        Experiment {
            id: "e-falsesharing",
            anchor: "Sec III-A (CS75/CS87): false sharing",
            run: exp_e::false_sharing,
            gate: false,
        },
        Experiment {
            id: "e-mapreduce",
            anchor: "Sec III-A (CS87): Map-Reduce (Hadoop lab)",
            run: exp_e::mapreduce,
            gate: false,
        },
        Experiment {
            id: "e-ft",
            anchor: "Sec III-A (CS87): fault tolerance (task farm + crossover)",
            run: || {
                let mut out = exp_e::fault_tolerance();
                out.push('\n');
                out.push_str(&exp_e::allreduce_crossover());
                out
            },
            gate: false,
        },
        Experiment {
            id: "ext-ray",
            anchor: "Sec III-A (CS40): hybrid MPI/GPU-cluster ray tracer",
            run: exp_ext::ray,
            gate: false,
        },
        Experiment {
            id: "ext-compilers",
            anchor: "Sec III-A (CS75): compiler optimization unit",
            run: exp_ext::compilers,
            gate: false,
        },
        Experiment {
            id: "ext-db",
            anchor: "Sec III-A (CS44): joins, DHT, 2PC, banker",
            run: exp_ext::db,
            gate: false,
        },
        Experiment {
            id: "e-kv",
            anchor: "Sec III-A (CS45/CS87): client-server KV store",
            run: exp_e::kv,
            gate: false,
        },
        Experiment {
            id: "e-shard",
            anchor: "Sec III-A (CS44/CS87): DHT-sharded KV over the transport seam",
            run: exp_shard::shard,
            gate: false,
        },
        Experiment {
            id: "e-batch",
            anchor: "Sec III-A (CS87): alpha-beta message batching crossover",
            run: exp_shard::batch,
            gate: false,
        },
        Experiment {
            id: "e-check",
            anchor: "Table II (sync/races): schedule-count vs defect detection",
            run: exp_check::check,
            gate: false,
        },
        Experiment {
            id: "serve-gate",
            anchor: "north star: replicated sharded KV survives a shard kill under live TCP load",
            run: || {
                exp_serve::run_serve_gate();
                "## serve gate (self-gated; tables above)".to_string()
            },
            gate: true,
        },
        Experiment {
            id: "wire-gate",
            anchor: "north star: full-mesh wire transport vs star topology over OS processes",
            run: || {
                exp_wire::run_wire_gate();
                "## wire gate (self-gated; tables above)".to_string()
            },
            gate: true,
        },
        Experiment {
            id: "scenario-gate",
            anchor: "applications-first: every workload on >=2 backends via the Scenario seam",
            run: || {
                exp_scenario::run_scenario_gate();
                "## scenario gate (self-gated; tables above)".to_string()
            },
            gate: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate experiment ids");
        assert!(before >= 19);
    }

    #[test]
    fn every_gate_is_listed() {
        // The flag-only gates must appear in `--list` output (i.e. the
        // registry), marked as gates so the sweep skips them.
        let reg = registry();
        for id in ["serve-gate", "wire-gate", "scenario-gate"] {
            let e = reg
                .iter()
                .find(|e| e.id == id)
                .unwrap_or_else(|| panic!("{id} missing from registry"));
            assert!(e.gate, "{id} must be marked as a gate");
        }
    }

    #[test]
    fn every_experiment_runs_and_produces_a_table() {
        // Gates spawn OS processes and exit the process on failure;
        // they run under their own flags/CI jobs, not here.
        for e in registry().iter().filter(|e| !e.gate) {
            let out = (e.run)();
            assert!(
                out.contains("##") && out.contains('\n'),
                "{} produced no table",
                e.id
            );
        }
    }
}
