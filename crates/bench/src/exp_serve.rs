//! `experiments --serve`: the live-traffic failover gate.
//!
//! A closed-loop load generator — N client threads, each issuing its
//! next request only after the previous reply — drives the replicated
//! sharded KV ([`pdc_db::serve`]) over real TCP while one shard process
//! is SIGKILLed mid-run. The gate passes only if serving *kept its
//! promises through the failure*:
//!
//! * **Zero lost acknowledged writes** — the survivors' final state
//!   equals a direct single-node replay of exactly the acknowledged
//!   ops, in acknowledgement order.
//! * **The failure was detected and repaired** — `serve.promotions >= 1`
//!   and the death surfaced through the typed
//!   [`pdc_mpi::TransportError`] path, not a panic.
//! * **The survivors' communication is causally complete** — the merged
//!   `pdc-trace/3` snapshot, shrunk around the killed rank
//!   ([`pdc_analyze::shrink_failed`], the communicator-shrink
//!   analogue), passes [`pdc_analyze::analyze_merged`] clean.
//! * **Clients never noticed** — every request got its reply in order,
//!   `kv.conn_errors == 0`.
//!
//! Throughput and p50/p95/p99 reply latency are reported as a table and
//! captured in `pdc-tables/1` JSON, because a serving tier that
//! survives failures by stalling forever hasn't survived them.
//!
//! This is a *gate*, not a registry experiment: it spawns OS processes
//! and kills one, so it runs behind its own `--serve` flag (and a
//! dedicated CI job) rather than inside the run-everything sweep.

use pdc_analyze::{analyze_merged, shrink_failed};
use pdc_core::report::{write_text_file, Table};
use pdc_core::rng::Rng;
use pdc_core::stats::Samples;
use pdc_core::trace::TraceSession;
use pdc_db::serve::{self, ServeOptions};
use pdc_db::sharded::apply_script;
use pdc_db::ShardOp;
use pdc_mpi::kv_tcp::TcpKvClient;
use pdc_mpi::WireOptions;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// World id the serve gate's shard children dispatch on (see
/// `experiments::main`).
pub const WORLD_ID: &str = "serve-gate";

const SHARDS: usize = 4;
const CLIENTS: usize = 8;
const OPS_PER_CLIENT: usize = 400;
const KILL_RANK: usize = 1;
const TRACE_DIR: &str = "target/pdc-trace/serve";

/// One client's deterministic op script: 70% PUT / 20% GET / 10% DEL
/// over a key space shared by all clients, so the killed shard's keys
/// see traffic from everyone, before and after the failure.
fn client_script(client: usize) -> Vec<String> {
    let mut rng = Rng::new(0xC0FFEE ^ client as u64);
    (0..OPS_PER_CLIENT)
        .map(|i| {
            let key = format!("k{}", rng.gen_range(96));
            match rng.gen_range(10) {
                0..=6 => format!("PUT {key} c{client}v{i}"),
                7..=8 => format!("GET {key}"),
                _ => format!("DEL {key}"),
            }
        })
        .collect()
}

/// Run the gate; exits the process non-zero on any failed check.
pub fn run_serve_gate() {
    let total_ops = (CLIENTS * OPS_PER_CLIENT) as u64;
    let session = TraceSession::with_capacity(1 << 18);
    let opts = ServeOptions::new(
        SHARDS,
        WireOptions::for_args(SHARDS, WORLD_ID, &["--serve"]).traced(TRACE_DIR),
    );
    let handle = serve::start(opts, &session).expect("start serving tier");
    let addr = handle.addr();

    let completed = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                let mut client = TcpKvClient::connect(addr).expect("client connect");
                let mut lat: Vec<f64> = Vec::with_capacity(OPS_PER_CLIENT);
                for line in client_script(c) {
                    let sent = Instant::now();
                    let reply = client.call(&line).expect("closed-loop call");
                    lat.push(sent.elapsed().as_secs_f64() * 1e6);
                    assert!(
                        !reply.starts_with("ERR"),
                        "client {c}: {line:?} -> {reply:?}"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                assert_eq!(client.call("QUIT").expect("quit"), "BYE");
                lat
            })
        })
        .collect();

    // Fault injection: once a quarter of the load has been served, kill
    // one shard out from under the remaining three quarters.
    while completed.load(Ordering::Relaxed) < total_ops / 4 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    handle.kill_shard(KILL_RANK);
    println!(
        "killed shard rank {KILL_RANK} after {} of {total_ops} ops",
        completed.load(Ordering::Relaxed)
    );

    let mut all_lat: Vec<f64> = Vec::with_capacity(total_ops as usize);
    for w in workers {
        all_lat.extend(w.join().expect("client thread"));
    }
    let latencies = Samples::from_vec(all_lat);
    let elapsed = t0.elapsed();
    let outcome = handle.finish();

    // ---- The gate's checks ----
    let mut failures: Vec<String> = Vec::new();

    let acked_ops: Vec<ShardOp> = outcome.acked.iter().map(|(_, op)| op.clone()).collect();
    if outcome.acked.len() as u64 != total_ops {
        failures.push(format!(
            "acked {} of {total_ops} issued ops",
            outcome.acked.len()
        ));
    }
    if outcome.state == apply_script(&acked_ops) {
        println!(
            "serve gate: zero lost acknowledged writes ({} acked ops replay to the served state)",
            outcome.acked.len()
        );
    } else {
        failures.push("survivor state diverged from a replay of the acked ops".into());
    }

    if outcome.promotions >= 1 {
        println!(
            "serve gate: promotions={} (backup took over for rank {KILL_RANK}, {} ops re-sent)",
            outcome.promotions, outcome.retries
        );
    } else {
        failures.push("no promotion recorded despite a killed shard".into());
    }

    let typed_death = outcome
        .dead
        .iter()
        .any(|d| d.rank == KILL_RANK && d.error.is_some());
    if typed_death {
        println!(
            "serve gate: shard death surfaced as TransportError ({:?}), not a panic",
            outcome.dead[0].error.as_ref().unwrap()
        );
    } else {
        failures.push(format!(
            "rank {KILL_RANK}'s death did not surface through the TransportError path: {:?}",
            outcome.dead
        ));
    }

    if outcome.conn_errors == 0 {
        println!("serve gate: kv.conn_errors=0 (no client saw a failure)");
    } else {
        failures.push(format!("{} client connection errors", outcome.conn_errors));
    }

    if outcome.hub_forwarded == 0 {
        println!(
            "serve gate: hub forwarded 0 data frames (chain replication rode peer connections)"
        );
    } else {
        failures.push(format!(
            "{} chain frames relayed through the hub despite the mesh topology",
            outcome.hub_forwarded
        ));
    }

    let merged = outcome.trace.as_ref().expect("traced run");
    let shrunk = shrink_failed(merged, &[KILL_RANK as u32]);
    let report = analyze_merged(&shrunk);
    if report.clean() {
        println!(
            "serve gate: merged trace analyzed clean after shrinking rank {KILL_RANK} \
             ({} survivor events)",
            report.events_analyzed
        );
    } else {
        failures.push(format!(
            "pdc-analyze flagged the shrunk survivor trace: {:?}",
            report
                .defects
                .iter()
                .map(|d| d.kind.name())
                .collect::<Vec<_>>()
        ));
    }

    // ---- Throughput / latency report ----
    let throughput = total_ops as f64 / elapsed.as_secs_f64();
    let mut t = Table::new(
        format!(
            "serve gate (experiments --serve) — {CLIENTS} closed-loop clients, \
             {SHARDS} shards (rank {KILL_RANK} killed mid-run), 2-way replication"
        ),
        &["metric", "value"],
    );
    t.row(&["ops acked".into(), outcome.acked.len().to_string()]);
    t.row(&[
        "wall time (s)".into(),
        format!("{:.2}", elapsed.as_secs_f64()),
    ]);
    t.row(&["throughput (ops/s)".into(), format!("{throughput:.0}")]);
    t.row(&[
        "p50 latency (us)".into(),
        format!("{:.0}", latencies.percentile(50.0)),
    ]);
    t.row(&[
        "p95 latency (us)".into(),
        format!("{:.0}", latencies.percentile(95.0)),
    ]);
    t.row(&[
        "p99 latency (us)".into(),
        format!("{:.0}", latencies.percentile(99.0)),
    ]);
    t.row(&["promotions".into(), outcome.promotions.to_string()]);
    t.row(&["retried ops".into(), outcome.retries.to_string()]);
    t.row(&[
        "hub-forwarded frames".into(),
        outcome.hub_forwarded.to_string(),
    ]);
    t.row(&[
        "rebalanced keys".into(),
        merged.counter("serve.rebalanced_keys").to_string(),
    ]);
    let (rendered, tables) = pdc_core::report::capture_tables(|| t.render());
    print!("{rendered}");

    let dir = std::path::Path::new(TRACE_DIR);
    let tables_json = format!(
        "{{\"schema\":\"pdc-tables/1\",\"experiments\":[{{\"id\":\"serve-gate\",\"tables\":[{}]}}]}}",
        tables.join(",")
    );
    write_text_file(&dir.join("serve.tables.json"), &tables_json).expect("write tables json");
    write_text_file(
        &dir.join("merged.trace.json"),
        &merged.to_json(&[("source", "experiments --serve".to_string())]),
    )
    .expect("write merged trace");
    write_text_file(&dir.join("merged.analyze.json"), &report.to_json())
        .expect("write analyze report");
    println!("serve artifacts written under {}", dir.display());

    if !failures.is_empty() {
        eprintln!("serve gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("serve gate passed");
}
