//! `experiments --wire`: the wire-topology gate — star vs mesh, measured.
//!
//! The same three-rank workload runs over both wire topologies:
//!
//! * **star** — the historical layout: every child↔child message is
//!   framed to the parent and forwarded back down (two hops);
//! * **mesh** — the default: children hold a direct TCP connection per
//!   pair and the parent is a control plane only (one hop).
//!
//! Two kinds of evidence are collected, each checked in *both*
//! directions so a regression in either topology trips the gate:
//!
//! 1. **Hop counts** (exact, from the router's own counters): on the
//!    star, the parent's forwarded-frame count equals the world's total
//!    message count; on the mesh it is exactly zero.
//! 2. **α–β parameters** (measured wall-clock): an 8-byte ping-pong
//!    between two *children* pins the per-message latency α; a bulk
//!    child→child stream pins the per-byte cost β. Cutting the second
//!    hop must cut α, and with it the coalescing threshold `n* = α/β` —
//!    the crossover the `e-batch` experiment reasons about shifts left
//!    when messages stop paying the relay tax (see
//!    [`pdc_mpi::cost::AlphaBeta::with_hops`] for the model's version
//!    of the same statement).
//!
//! Results land as a table on stdout and as `pdc-tables/1` JSON at
//! `target/pdc-trace/wire/wire.tables.json` for the CI artifact.
//!
//! Like the other process-spawning gates this runs behind its own flag
//! (`--wire`, CI's mesh-gate job), not inside the registry sweep.

use pdc_core::report::{capture_tables, write_text_file, Table};
use pdc_mpi::{Rank, WireOptions, WireTransport, WireWorld};
use std::time::Instant;

/// World id for the star-topology measurement world (children dispatch
/// on this in `experiments::main`).
pub const WORLD_STAR: &str = "wire-bench#star";
/// World id for the mesh-topology measurement world.
pub const WORLD_MESH: &str = "wire-bench#mesh";

/// Timed round trips for the latency estimate.
const PING_ITERS: u32 = 400;
/// Untimed round trips to warm caches, buffers, and the connection.
const WARMUP_ITERS: u32 = 50;
/// Bulk-stream chunk size (bytes).
const CHUNK: usize = 256 * 1024;
/// Bulk-stream chunk count (total bytes = CHUNK * CHUNKS).
const CHUNKS: u32 = 32;
/// Independent world runs per topology; the minimum wins (standard for
/// latency: noise is strictly additive).
const TRIALS: usize = 3;

/// What one topology's trials boil down to.
struct Measured {
    /// One-way per-message latency, microseconds.
    alpha_us: f64,
    /// Per-byte cost, nanoseconds (from the bulk stream).
    beta_ns: f64,
    /// Parent-forwarded data frames across all trials.
    forwarded: u64,
    /// Total messages across all trials.
    messages: u64,
}

impl Measured {
    /// The measured coalescing threshold `n* = α/β`, bytes.
    fn crossover_bytes(&self) -> f64 {
        (self.alpha_us * 1e3) / self.beta_ns
    }
}

/// The per-rank measurement body. Ranks 1 and 2 exchange directly —
/// the traffic whose hop count the topology decides — while rank 0
/// only proves a third rank doesn't perturb the pair. Returns packed
/// nanoseconds: ping-pong elapsed for rank 1, stream elapsed for rank 2.
fn measure_rank(r: &mut Rank<Vec<u8>, WireTransport<Vec<u8>>>) -> u64 {
    let tiny = vec![0u8; 8];
    match r.id() {
        1 => {
            for _ in 0..WARMUP_ITERS {
                r.send(2, 1, tiny.clone());
                r.recv(2, 1);
            }
            let t0 = Instant::now();
            for _ in 0..PING_ITERS {
                r.send(2, 1, tiny.clone());
                r.recv(2, 1);
            }
            let pp = t0.elapsed().as_nanos() as u64;
            // Bulk phase: stream once rank 2 says go.
            r.recv(2, 2);
            let blob = vec![0u8; CHUNK];
            for _ in 0..CHUNKS {
                r.send(2, 3, blob.clone());
            }
            pp
        }
        2 => {
            for _ in 0..(WARMUP_ITERS + PING_ITERS) {
                r.recv(1, 1);
                r.send(1, 1, tiny.clone());
            }
            r.send(1, 2, vec![1]);
            let t0 = Instant::now();
            for _ in 0..CHUNKS {
                r.recv(1, 3);
            }
            t0.elapsed().as_nanos() as u64
        }
        _ => 0,
    }
}

fn options_for(world_id: &str) -> WireOptions {
    let opts = WireOptions::for_args(3, world_id, &["--wire"]);
    if world_id == WORLD_STAR {
        opts.star()
    } else {
        opts
    }
}

/// Child re-entry point: never returns. `experiments::main` routes
/// re-executed children here when their world id is one of ours.
pub fn reenter(world_id: &str) -> ! {
    WireWorld::run(&options_for(world_id), measure_rank);
    unreachable!("wire child returned from its world");
}

/// Run `TRIALS` worlds on one topology and reduce.
fn bench_topology(world_id: &str) -> Measured {
    let opts = options_for(world_id);
    let mut best_pp = u64::MAX;
    let mut best_stream = u64::MAX;
    let mut forwarded = 0;
    let mut messages = 0;
    for _ in 0..TRIALS {
        let run = WireWorld::run(&opts, measure_rank);
        best_pp = best_pp.min(run.results[1]);
        best_stream = best_stream.min(run.results[2]);
        forwarded += run.forwarded;
        messages += run.stats.messages;
    }
    Measured {
        // A round trip is two one-way messages.
        alpha_us: best_pp as f64 / (2.0 * f64::from(PING_ITERS)) / 1e3,
        beta_ns: best_stream as f64 / (f64::from(CHUNKS) * CHUNK as f64),
        forwarded,
        messages,
    }
}

/// Run the gate; exits the process non-zero on any failed check.
pub fn run_wire_gate() {
    println!("wire gate: measuring star topology ({TRIALS} trials)...");
    let star = bench_topology(WORLD_STAR);
    println!("wire gate: measuring mesh topology ({TRIALS} trials)...");
    let mesh = bench_topology(WORLD_MESH);

    let mut failures: Vec<String> = Vec::new();

    // Direction 1: the mesh really is one hop.
    if mesh.forwarded == 0 && mesh.messages > 0 {
        println!(
            "wire gate: mesh forwarded 0 of {} data frames through the parent (one hop)",
            mesh.messages
        );
    } else {
        failures.push(format!(
            "mesh relayed {} of {} frames through the parent",
            mesh.forwarded, mesh.messages
        ));
    }

    // Direction 2: the star regression path still forwards everything
    // (if this drops, the star world silently stopped routing).
    if star.forwarded == star.messages && star.messages > 0 {
        println!(
            "wire gate: star forwarded all {} data frames through the parent (two hops)",
            star.messages
        );
    } else {
        failures.push(format!(
            "star forwarded {} of {} frames",
            star.forwarded, star.messages
        ));
    }

    // Direction 3: killing the relay hop shows up in measured α.
    if mesh.alpha_us < star.alpha_us {
        println!(
            "wire gate: one-hop latency beat two-hop ({:.1}us < {:.1}us per message)",
            mesh.alpha_us, star.alpha_us
        );
    } else {
        failures.push(format!(
            "mesh latency {:.1}us did not beat star {:.1}us",
            mesh.alpha_us, star.alpha_us
        ));
    }

    // Direction 4: the coalescing crossover n* = α/β moves left — small
    // messages stop being worth batching sooner once each stops paying
    // the relay tax.
    if mesh.crossover_bytes() < star.crossover_bytes() {
        println!(
            "wire gate: measured crossover shifted left ({:.0}B mesh < {:.0}B star)",
            mesh.crossover_bytes(),
            star.crossover_bytes()
        );
    } else {
        failures.push(format!(
            "measured crossover did not shrink: {:.0}B mesh vs {:.0}B star",
            mesh.crossover_bytes(),
            star.crossover_bytes()
        ));
    }

    let mut t = Table::new(
        format!(
            "wire topology gate (experiments --wire) — 3 child ranks, \
             {PING_ITERS} timed round trips, {} MiB bulk stream, best of {TRIALS}",
            CHUNK * CHUNKS as usize / (1024 * 1024)
        ),
        &[
            "topology",
            "alpha (us/msg)",
            "beta (ns/B)",
            "n* = a/b (B)",
            "forwarded",
            "messages",
        ],
    );
    for (name, m) in [("star", &star), ("mesh", &mesh)] {
        t.row(&[
            name.into(),
            format!("{:.2}", m.alpha_us),
            format!("{:.3}", m.beta_ns),
            format!("{:.0}", m.crossover_bytes()),
            m.forwarded.to_string(),
            m.messages.to_string(),
        ]);
    }
    t.row(&[
        "mesh/star".into(),
        format!("{:.2}x", mesh.alpha_us / star.alpha_us),
        format!("{:.2}x", mesh.beta_ns / star.beta_ns),
        format!("{:.2}x", mesh.crossover_bytes() / star.crossover_bytes()),
        "-".into(),
        "-".into(),
    ]);
    let (rendered, tables) = capture_tables(|| t.render());
    print!("{rendered}");

    let dir = std::path::Path::new("target/pdc-trace/wire");
    let tables_json = format!(
        "{{\"schema\":\"pdc-tables/1\",\"experiments\":[{{\"id\":\"wire-topology\",\"tables\":[{}]}}]}}",
        tables.join(",")
    );
    write_text_file(&dir.join("wire.tables.json"), &tables_json).expect("write tables json");
    println!("wire artifacts written under {}", dir.display());

    if !failures.is_empty() {
        eprintln!("wire gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("wire gate passed");
}
