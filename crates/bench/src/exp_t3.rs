//! Table III experiments: CS41's models-and-algorithms unit.

use pdc_algos::mergesort::{
    analysis_parallel_pmerge, analysis_parallel_serial_merge, analysis_sequential,
};
use pdc_algos::{matrix, selection, sorting};
use pdc_core::report::{count_fmt, f, Table};
use pdc_core::rng::Rng;
use pdc_extmem::device::Disk;
use pdc_extmem::extsort::{external_merge_sort, SortConfig};
use pdc_extmem::theory;
use pdc_pram::algos as pram_algos;

/// PRAM models: measured work/span of the classic algorithms plus Brent
/// replay onto finite processor counts.
pub fn models() -> String {
    let mut out = String::new();
    let n = 1024usize;
    let input: Vec<i64> = (0..n as i64).collect();
    let mut t = Table::new(
        "T3-models — PRAM algorithms at n = 1024 (measured by the simulator)",
        &["algorithm", "mode", "steps (span)", "work", "parallelism"],
    );
    let (_, reduce) = pram_algos::reduce_sum(&input).unwrap();
    let (_, hs) = pram_algos::scan_hillis_steele(&input).unwrap();
    let (_, _, bl) = pram_algos::scan_blelloch(&input).unwrap();
    let (_, bc) = pram_algos::broadcast_erew(7, n).unwrap();
    let small: Vec<i64> = (0..64).collect();
    let (_, mx) = pram_algos::max_crcw_constant_time(&small).unwrap();
    let next: Vec<usize> = (0..n).map(|i| (i + 1).min(n - 1)).collect();
    let (_, lr) = pram_algos::list_rank(&next).unwrap();
    for (name, mode, pram) in [
        ("reduce", "EREW", &reduce),
        ("scan (Hillis-Steele)", "CREW", &hs),
        ("scan (Blelloch)", "EREW", &bl),
        ("broadcast", "EREW", &bc),
        ("max, n=64", "CRCW-common", &mx),
        ("list ranking", "CREW", &lr),
    ] {
        let ws = pram.work_span();
        t.row(&[
            name.to_string(),
            mode.to_string(),
            ws.span.to_string(),
            count_fmt(ws.work),
            f(ws.parallelism(), 1),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    // Brent replay: reduce on p processors.
    let mut t = Table::new(
        "T3-models — Brent replay: PRAM reduce (n = 1024) on p processors",
        &["p", "time", "speedup", "bounds ok?"],
    );
    let ws = reduce.work_span();
    let t1 = reduce.time_on(1) as f64;
    for p in [1usize, 2, 4, 8, 16, 64, 1024] {
        let tp = reduce.time_on(p);
        let ok = (tp as f64) >= ws.brent_lower(p) - 1e-9 && (tp as f64) <= ws.brent_upper(p) + 1e-9;
        t.row(&[
            p.to_string(),
            tp.to_string(),
            f(t1 / tp as f64, 2),
            ok.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Merge sort across the three models — the paper's unifying example.
pub fn mergesort() -> String {
    let mut out = String::new();
    // Closed-form work/span ladder.
    let mut t = Table::new(
        "T3-mergesort — work/span across models (closed form)",
        &["n", "variant", "work", "span", "parallelism"],
    );
    for n in [1u64 << 10, 1 << 16, 1 << 20] {
        for (name, ws) in [
            ("sequential (RAM)", analysis_sequential(n)),
            ("parallel, serial merge", analysis_parallel_serial_merge(n)),
            ("parallel, parallel merge", analysis_parallel_pmerge(n)),
        ] {
            t.row(&[
                count_fmt(n),
                name.to_string(),
                count_fmt(ws.work),
                count_fmt(ws.span),
                f(ws.parallelism(), 1),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    // Out-of-core: measured I/Os vs the sort bound.
    let mut t = Table::new(
        "T3-mergesort — external merge sort, B = 16, measured vs theory",
        &[
            "n",
            "M",
            "passes",
            "measured I/Os",
            "theory I/Os",
            "naive (1/rec)",
        ],
    );
    let mut rng = Rng::new(41);
    for (n, m) in [(4_096usize, 256usize), (16_384, 256), (16_384, 1_024)] {
        let data = rng.u64_vec(n);
        let mut disk = Disk::new(16);
        let input = disk.create_file(data);
        let sorted = external_merge_sort(&mut disk, input, SortConfig { memory: m });
        assert!(disk.contents(sorted).windows(2).all(|w| w[0] <= w[1]));
        t.row(&[
            count_fmt(n as u64),
            m.to_string(),
            theory::merge_passes(n as u64, m as u64, 16).to_string(),
            count_fmt(disk.stats().total()),
            count_fmt(theory::sort_ios(n as u64, m as u64, 16)),
            count_fmt(theory::unblocked_ios(n as u64)),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Sorting / selection / matrix computation: correctness + scaling shape.
pub fn problems() -> String {
    let mut out = String::new();
    let mut rng = Rng::new(3);
    // Sorting: comparisons of bucket balance for sample sort.
    let data = rng.u64_vec(50_000);
    let data_i64: Vec<i64> = data.iter().map(|&x| x as i64).collect();
    let mut t = Table::new(
        "T3-problems — sample sort bucket balance (n = 50_000)",
        &["buckets", "largest/ideal"],
    );
    for buckets in [2usize, 4, 8, 16] {
        let (_, stats) = sorting::sample_sort(&data_i64, buckets, 4, 9);
        t.row(&[buckets.to_string(), f(stats.imbalance(), 3)]);
    }
    out.push_str(&t.render());
    out.push('\n');
    // Selection: medians agree across algorithms.
    let mut t = Table::new(
        "T3-problems — selection agreement (n = 20_000)",
        &["k", "quickselect", "median-of-medians", "parallel"],
    );
    let sel_data = rng.i64_vec(20_000);
    for k in [0usize, 10_000, 19_999] {
        t.row(&[
            k.to_string(),
            selection::quickselect(&sel_data, k, 1).to_string(),
            selection::median_of_medians(&sel_data, k).to_string(),
            selection::parallel_select(&sel_data, k, 4, 1).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    // Matrix: Strassen's asymptotic win in multiplication counts.
    let mut t = Table::new(
        "T3-problems — matmul scalar multiplications: classical vs Strassen",
        &["n", "classical n^3", "strassen n^2.807 (cutoff 1)"],
    );
    fn strassen_mults(n: u64) -> u64 {
        if n <= 1 {
            1
        } else {
            7 * strassen_mults(n / 2)
        }
    }
    for n in [64u64, 256, 1024] {
        t.row(&[
            n.to_string(),
            count_fmt(n * n * n),
            count_fmt(strassen_mults(n)),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    // And a correctness spot check of the executable variants.
    let a = matrix::Matrix::from_fn(32, 32, |i, j| ((i * 31 + j * 7) % 13) as f64);
    let b = matrix::Matrix::from_fn(32, 32, |i, j| ((i * 5 + j * 17) % 11) as f64);
    let naive = matrix::matmul_naive(&a, &b);
    let strassen = matrix::matmul_strassen(&a, &b, 8);
    let blocked = matrix::matmul_blocked(&a, &b, 8);
    let mut t = Table::new(
        "T3-problems — matmul variant agreement (max |diff| vs naive)",
        &["variant", "max abs diff"],
    );
    t.row(&["blocked 8x8".into(), f(blocked.max_abs_diff(&naive), 12)]);
    t.row(&["strassen".into(), f(strassen.max_abs_diff(&naive), 12)]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_table_shows_blelloch_work_efficiency() {
        let out = models();
        assert!(out.contains("Blelloch"));
        assert!(out.contains("bounds ok?"));
        assert!(!out.contains("false"), "Brent bounds must hold everywhere");
    }

    #[test]
    fn mergesort_table_has_all_three_models() {
        let out = mergesort();
        assert!(out.contains("sequential (RAM)"));
        assert!(out.contains("parallel merge"));
        assert!(out.contains("external merge sort"));
    }

    #[test]
    fn closed_form_sanity() {
        assert_eq!(pdc_core::workspan::closed_form::ceil_log2(1024), 10);
    }
}
