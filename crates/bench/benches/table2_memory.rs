//! Table II bench: memory-hierarchy simulations — traversal order,
//! replacement policy, and coherence false sharing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_memsim::cache::{Cache, CacheConfig};
use pdc_memsim::coherence::{counter_increment_trace, CoherenceSim, Protocol};
use pdc_memsim::trace;
use std::hint::black_box;

fn bench_traversal_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_traversal");
    group.sample_size(20);
    let row = trace::matrix_row_major(0, 128, 128);
    let col = trace::matrix_col_major(0, 128, 128);
    for (name, tr) in [("row_major", &row), ("col_major", &col)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), tr, |b, tr| {
            b.iter(|| {
                let mut cache = Cache::new(CacheConfig::direct_mapped(64, 128));
                black_box(cache.run_trace(black_box(tr)))
            })
        });
    }
    group.finish();
}

fn bench_false_sharing_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence_false_sharing");
    group.sample_size(20);
    for (name, pad) in [("packed", 8u64), ("padded", 64)] {
        let tr = counter_increment_trace(4, 500, pad);
        group.bench_with_input(BenchmarkId::from_parameter(name), &tr, |b, tr| {
            b.iter(|| {
                let mut sim = CoherenceSim::new(Protocol::Mesi, 4, 64);
                black_box(sim.run_trace(black_box(tr)))
            })
        });
    }
    group.finish();
}

fn bench_real_false_sharing(c: &mut Criterion) {
    // The wall-clock companion: padded vs packed atomic counters on real
    // threads (effect visible only on real multicore hardware).
    use std::sync::atomic::{AtomicU64, Ordering};
    let mut group = c.benchmark_group("real_counters");
    group.sample_size(10);

    #[repr(align(64))]
    struct Padded(AtomicU64);

    group.bench_function("packed", |b| {
        b.iter(|| {
            let counters: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            std::thread::scope(|s| {
                for c in &counters {
                    s.spawn(move || {
                        for _ in 0..20_000 {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            black_box(
                counters
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .sum::<u64>(),
            )
        })
    });
    group.bench_function("padded", |b| {
        b.iter(|| {
            let counters: Vec<Padded> = (0..4).map(|_| Padded(AtomicU64::new(0))).collect();
            std::thread::scope(|s| {
                for c in &counters {
                    s.spawn(move || {
                        for _ in 0..20_000 {
                            c.0.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            black_box(
                counters
                    .iter()
                    .map(|c| c.0.load(Ordering::Relaxed))
                    .sum::<u64>(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_traversal_order,
    bench_false_sharing_sim,
    bench_real_false_sharing
);
criterion_main!(benches);
