//! Prose-section benches: GPU reduction ladder, MPI collectives,
//! MapReduce scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_core::rng::Rng;
use pdc_gpu::kernels::{reduce_global, reduce_shared_interleaved, reduce_shared_sequential};
use pdc_mpi::coll;
use pdc_mpi::mapreduce::word_count;
use pdc_mpi::world::{Rank, World};
use std::hint::black_box;

fn bench_gpu_reduction_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_reduce");
    group.sample_size(10);
    let mut rng = Rng::new(31);
    let input: Vec<i64> = (0..1 << 14).map(|_| rng.gen_range(100) as i64).collect();
    group.bench_function("global", |b| {
        b.iter(|| reduce_global(black_box(&input), 256))
    });
    group.bench_function("shared_interleaved", |b| {
        b.iter(|| reduce_shared_interleaved(black_box(&input), 256))
    });
    group.bench_function("shared_sequential", |b| {
        b.iter(|| reduce_shared_sequential(black_box(&input), 256))
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("allreduce", p), &p, |b, &p| {
            b.iter(|| {
                World::run(p, |r: &mut Rank<u64>| {
                    coll::allreduce(r, r.id() as u64, |a, b| a + b)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("alltoall", p), &p, |b, &p| {
            b.iter(|| {
                World::run(p, |r: &mut Rank<u64>| {
                    let vals: Vec<u64> = (0..r.size() as u64).collect();
                    coll::alltoall(r, vals)
                })
            })
        });
    }
    group.finish();
}

fn bench_mapreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapreduce_wordcount");
    group.sample_size(10);
    let docs: Vec<String> = (0..128)
        .map(|i| {
            format!(
                "lorem ipsum dolor sit amet {} consectetur {}",
                i % 11,
                i % 5
            )
        })
        .collect();
    for (m, r) in [(1usize, 1usize), (4, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_r{r}")),
            &(m, r),
            |b, &(m, r)| b.iter(|| word_count(black_box(docs.clone()), m, r)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gpu_reduction_ladder,
    bench_collectives,
    bench_mapreduce
);
criterion_main!(benches);
