//! Table I bench: Game of Life — sequential sizes and threaded worker
//! sweep (the lab's timing experiment, wall clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_life::engine::step_generations;
use pdc_life::grid::{Boundary, Grid};
use pdc_life::parallel::parallel_step_generations;
use std::hint::black_box;

fn bench_seq_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("life_seq");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let g = Grid::random(n, n, Boundary::Torus, 0.3, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| step_generations(black_box(g), 4))
        });
    }
    group.finish();
}

fn bench_threaded_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("life_threads");
    group.sample_size(10);
    let g = Grid::random(128, 128, Boundary::Torus, 0.3, 7);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| parallel_step_generations(black_box(&g), 4, w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seq_sizes, bench_threaded_workers);
criterion_main!(benches);
