//! Table II bench: synchronization primitives — lock ladder and the
//! producer-consumer buffer.

use criterion::{criterion_group, BenchmarkId, Criterion};
use pdc_core::machine::{MachineConfig, SimMachine};
use pdc_core::trace::TraceSession;
use pdc_sync::{BoundedBuffer, PdcMutex, SpinLock, TicketLock};
use pdc_threads::WorkStealingPool;
use std::hint::black_box;
use std::sync::{Arc, Mutex};

const THREADS: usize = 2;
const ITERS: usize = 5_000;

fn contended_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_ladder");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("spinlock"), |b| {
        b.iter(|| {
            let l = Arc::new(SpinLock::new(0u64));
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let l = Arc::clone(&l);
                    s.spawn(move || {
                        for _ in 0..ITERS {
                            *l.lock() += 1;
                        }
                    });
                }
            });
            let v = *l.lock();
            black_box(v)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("ticketlock"), |b| {
        b.iter(|| {
            let l = Arc::new(TicketLock::new(0u64));
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let l = Arc::clone(&l);
                    s.spawn(move || {
                        for _ in 0..ITERS {
                            *l.lock() += 1;
                        }
                    });
                }
            });
            let v = *l.lock();
            black_box(v)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("pdc_mutex"), |b| {
        b.iter(|| {
            let l = Arc::new(PdcMutex::new(0u64));
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let l = Arc::clone(&l);
                    s.spawn(move || {
                        for _ in 0..ITERS {
                            *l.lock() += 1;
                        }
                    });
                }
            });
            let v = *l.lock();
            black_box(v)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("std_mutex"), |b| {
        b.iter(|| {
            let l = Arc::new(Mutex::new(0u64));
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let l = Arc::clone(&l);
                    s.spawn(move || {
                        for _ in 0..ITERS {
                            *l.lock().unwrap() += 1;
                        }
                    });
                }
            });
            let v = *l.lock().unwrap();
            black_box(v)
        })
    });
    group.finish();
}

fn producer_consumer(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded_buffer");
    group.sample_size(10);
    for cap in [1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let buf = Arc::new(BoundedBuffer::new(cap));
                std::thread::scope(|s| {
                    let b2 = Arc::clone(&buf);
                    s.spawn(move || {
                        for i in 0..10_000u64 {
                            b2.put(i);
                        }
                    });
                    let b3 = Arc::clone(&buf);
                    s.spawn(move || {
                        let mut sum = 0u64;
                        for _ in 0..10_000 {
                            sum += b3.take();
                        }
                        black_box(sum)
                    });
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, contended_counter, producer_consumer);

/// Emit a shared `pdc-trace/2` snapshot mixing pool counters with the
/// machine's lock/barrier cost model (see EXPERIMENTS.md). Returns the
/// session so `--analyze` can judge the same events it snapshotted.
fn emit_trace_snapshot() -> TraceSession {
    let session = TraceSession::new();

    let pool = WorkStealingPool::with_trace(THREADS, session.clone());
    for i in 0..128u64 {
        pool.spawn(move || {
            black_box(i.wrapping_add(1));
        });
    }
    pool.wait_idle();

    // Mirror the lock-ladder shape on the simulated machine: a parallel
    // phase, a contended critical section per thread, and a barrier.
    let mut machine = SimMachine::with_trace(MachineConfig::with_cores(THREADS), &session);
    machine.parallel_even((THREADS * ITERS) as u64, THREADS);
    machine.critical_each(THREADS, 4);
    machine.barrier(THREADS);

    let json = session.to_json_with_meta(&[("bench", "table2_sync".to_string())]);
    // cargo runs benches with cwd = the package dir; anchor the output
    // to the workspace-root target/ regardless.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/pdc-trace/table2_sync.trace.json");
    pdc_core::report::write_text_file(&path, &json).expect("write trace snapshot");
    println!("\npdc-trace snapshot ({}):", path.display());
    println!("{json}");
    session
}

/// `--analyze`: feed the snapshot's events through `pdc-analyze`, write
/// the `pdc-analyze/1` report next to the trace, and fail the bench run
/// if this deliberately race-free workload is flagged.
fn analyze_snapshot(session: &TraceSession) {
    let report = pdc_analyze::analyze(session);
    let json = report.to_json();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/pdc-trace/table2_sync.analyze.json");
    pdc_core::report::write_text_file(&path, &json).expect("write analyze report");
    println!("\npdc-analyze report ({}):", path.display());
    println!("{json}");
    if !report.clean() {
        eprintln!(
            "table2_sync --analyze: {} defect(s) in a workload that must be clean",
            report.defects.len()
        );
        std::process::exit(1);
    }
}

fn main() {
    benches();
    let session = emit_trace_snapshot();
    criterion::finalize();
    if std::env::args().any(|a| a == "--analyze") {
        analyze_snapshot(&session);
    }
}
