//! Extension benches: ray tracer renderers, join algorithms, compiler
//! optimization levels, external vs in-memory sort crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_arch::compiler::{compile_and_run, random_expr, OptLevel};
use pdc_core::rng::Rng;
use pdc_db::join::{hash_join, nested_loop_join, parallel_hash_join, sort_merge_join, Tuple};
use pdc_ray::render::{render_sequential, render_threaded};
use pdc_ray::scene::{Camera, Scene};
use pdc_threads::parfor::Schedule;
use std::hint::black_box;

fn bench_raytracer(c: &mut Criterion) {
    let mut group = c.benchmark_group("raytracer");
    group.sample_size(10);
    let scene = Scene::demo();
    let cam = Camera::demo();
    group.bench_function("sequential_160x120", |b| {
        b.iter(|| render_sequential(black_box(&scene), &cam, 160, 120, 2))
    });
    for (name, sched) in [
        ("static", Schedule::Static),
        ("dynamic4", Schedule::Dynamic { chunk: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::new("threads2", name), &sched, |b, &s| {
            b.iter(|| render_threaded(black_box(&scene), &cam, 160, 120, 2, 2, s))
        });
    }
    group.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins");
    group.sample_size(10);
    let mut rng = Rng::new(1);
    let r: Vec<Tuple> = (0..3_000)
        .map(|_| (rng.gen_range(500), rng.gen_range(100)))
        .collect();
    let s: Vec<Tuple> = (0..3_000)
        .map(|_| (rng.gen_range(500), rng.gen_range(100)))
        .collect();
    group.bench_function("nested_loop", |b| {
        b.iter(|| nested_loop_join(black_box(&r), black_box(&s)))
    });
    group.bench_function("hash", |b| {
        b.iter(|| hash_join(black_box(&r), black_box(&s)))
    });
    group.bench_function("sort_merge", |b| {
        b.iter(|| sort_merge_join(black_box(&r), black_box(&s)))
    });
    group.bench_function("parallel_hash_w4", |b| {
        b.iter(|| parallel_hash_join(black_box(&r), black_box(&s), 4))
    });
    group.finish();
}

fn bench_compiler_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");
    group.sample_size(10);
    let exprs: Vec<_> = (0..16).map(|s| random_expr(s, 6, 2)).collect();
    for level in [OptLevel::O0, OptLevel::O1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{level:?}")),
            &level,
            |b, &lvl| {
                b.iter(|| {
                    let mut total = 0u64;
                    for e in &exprs {
                        let (_, steps) = compile_and_run(e, lvl, &[5, -2]).unwrap();
                        total += steps;
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_raytracer, bench_joins, bench_compiler_levels);
criterion_main!(benches);
