//! Table III bench: sorting and selection algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_algos::mergesort::{merge_sort, parallel_merge_sort};
use pdc_algos::scanapps::radix_sort_u64;
use pdc_algos::selection::{median_of_medians, quickselect};
use pdc_algos::sorting::{quicksort, sample_sort};
use pdc_core::rng::Rng;
use std::hint::black_box;

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorting");
    group.sample_size(10);
    let mut rng = Rng::new(11);
    let data = rng.i64_vec(50_000);
    let data_u64: Vec<u64> = data.iter().map(|&x| x as u64).collect();

    group.bench_function(BenchmarkId::from_parameter("merge_sort"), |b| {
        b.iter(|| merge_sort(black_box(&data)))
    });
    group.bench_function(BenchmarkId::from_parameter("parallel_merge_sort_w2"), |b| {
        b.iter(|| parallel_merge_sort(black_box(&data), 2))
    });
    group.bench_function(BenchmarkId::from_parameter("quicksort"), |b| {
        b.iter(|| {
            let mut v = data.clone();
            quicksort(&mut v);
            black_box(v)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("sample_sort_8"), |b| {
        b.iter(|| sample_sort(black_box(&data), 8, 2, 1))
    });
    group.bench_function(BenchmarkId::from_parameter("radix_sort"), |b| {
        b.iter(|| radix_sort_u64(black_box(&data_u64), 2))
    });
    group.bench_function(BenchmarkId::from_parameter("std_sort_unstable"), |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_unstable();
            black_box(v)
        })
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    let mut rng = Rng::new(12);
    let data = rng.i64_vec(100_000);
    let k = data.len() / 2;
    group.bench_function("quickselect", |b| {
        b.iter(|| quickselect(black_box(&data), k, 5))
    });
    group.bench_function("median_of_medians", |b| {
        b.iter(|| median_of_medians(black_box(&data), k))
    });
    group.bench_function("full_sort_then_index", |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_unstable();
            black_box(v[k])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sorts, bench_selection);
criterion_main!(benches);
