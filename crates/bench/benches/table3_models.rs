//! Table III bench: models of computation — PRAM scans, external sort
//! memory sweep, data-parallel slice primitives, matrix variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_algos::matrix::{matmul_blocked, matmul_ikj, matmul_naive, matmul_strassen, Matrix};
use pdc_core::rng::Rng;
use pdc_extmem::device::Disk;
use pdc_extmem::extsort::{external_merge_sort, SortConfig};
use pdc_pram::algos::{scan_blelloch, scan_hillis_steele};
use pdc_threads::sliceops::{par_exclusive_scan, par_reduce};
use std::hint::black_box;

fn bench_pram_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("pram_scan");
    group.sample_size(10);
    let input: Vec<i64> = (0..4096).collect();
    group.bench_function("hillis_steele", |b| {
        b.iter(|| scan_hillis_steele(black_box(&input)).unwrap())
    });
    group.bench_function("blelloch", |b| {
        b.iter(|| scan_blelloch(black_box(&input)).unwrap())
    });
    group.finish();
}

fn bench_extsort_memory_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("extsort_memory");
    group.sample_size(10);
    let mut rng = Rng::new(21);
    let data = rng.u64_vec(20_000);
    for memory in [64usize, 256, 2_048] {
        group.bench_with_input(
            BenchmarkId::from_parameter(memory),
            &memory,
            |b, &memory| {
                b.iter(|| {
                    let mut disk = Disk::new(16);
                    let input = disk.create_file(data.clone());
                    black_box(external_merge_sort(&mut disk, input, SortConfig { memory }))
                })
            },
        );
    }
    group.finish();
}

fn bench_slice_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("slice_ops");
    group.sample_size(10);
    let mut rng = Rng::new(22);
    let data = rng.u64_vec(200_000);
    group.bench_function("serial_sum", |b| {
        b.iter(|| black_box(&data).iter().sum::<u64>())
    });
    group.bench_function("par_reduce_w2", |b| {
        b.iter(|| par_reduce(black_box(&data), 2, 0u64, |&x| x, |a, b| a + b))
    });
    group.bench_function("par_scan_w2", |b| {
        b.iter(|| par_exclusive_scan(black_box(&data), 2, 0u64, |a, b| a + b))
    });
    group.finish();
}

fn bench_matmul_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    let n = 128;
    let mut rng = Rng::new(23);
    let a = Matrix::from_fn(n, n, |_, _| rng.f64());
    let b_m = Matrix::from_fn(n, n, |_, _| rng.f64());
    group.bench_function("naive_ijk", |bch| {
        bch.iter(|| matmul_naive(black_box(&a), black_box(&b_m)))
    });
    group.bench_function("ikj", |bch| {
        bch.iter(|| matmul_ikj(black_box(&a), black_box(&b_m)))
    });
    group.bench_function("blocked_32", |bch| {
        bch.iter(|| matmul_blocked(black_box(&a), black_box(&b_m), 32))
    });
    group.bench_function("strassen_cutoff32", |bch| {
        bch.iter(|| matmul_strassen(black_box(&a), black_box(&b_m), 32))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pram_scans,
    bench_extsort_memory_sweep,
    bench_slice_primitives,
    bench_matmul_variants
);
criterion_main!(benches);
