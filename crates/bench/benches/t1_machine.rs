//! Machine-organization benches: PDC-1 VM dispatch, gate-level circuit
//! evaluation, pipeline simulation, page-replacement policies.

use criterion::{criterion_group, BenchmarkId, Criterion};
use pdc_arch::isa::{assemble, Vm};
use pdc_arch::logic::{to_bits, Circuit};
use pdc_arch::pipeline::{independent_alu_trace, simulate, PipelineConfig};
use pdc_core::machine::{MachineConfig, SimMachine};
use pdc_core::trace::TraceSession;
use pdc_extmem::CachedArray;
use pdc_gpu::device::Phase;
use pdc_gpu::{Device, ThreadCtx};
use pdc_memsim::{Cache as MemCache, CacheConfig};
use pdc_os::vm::{run as page_run, ReplacePolicy};
use pdc_threads::WorkStealingPool;
use std::hint::black_box;

fn bench_vm_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("isa_vm");
    group.sample_size(10);
    // A compute-heavy loop: sum of squares 1..=n.
    let src = r#"
        in
        push 0
    loop:
        over
        jz done
        over
        over
        mul
        pop
        over
        add
        swap
        push 1
        sub
        swap
        jmp loop
    done:
        out
        halt
    "#;
    let prog = assemble(src).unwrap();
    group.bench_function("sum_loop_10k", |b| {
        b.iter(|| {
            let mut vm = Vm::new(prog.clone(), 8).with_input([10_000]);
            vm.run(1_000_000).unwrap();
            black_box(vm.output[0])
        })
    });
    group.finish();
}

fn bench_circuit_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_adder");
    group.sample_size(10);
    for (name, kogge) in [("ripple32", false), ("kogge32", true)] {
        let mut circ = Circuit::new();
        let a = circ.input_bus("a", 32);
        let b = circ.input_bus("b", 32);
        let cin = circ.constant(false);
        let (sum, _) = if kogge {
            circ.kogge_stone_adder(&a, &b, cin)
        } else {
            circ.ripple_adder(&a, &b, cin)
        };
        let mut inputs = to_bits(0xDEADBEEF, 32);
        inputs.extend(to_bits(0x12345678, 32));
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |bch, _| {
            bch.iter(|| circ.eval_bus_u64(black_box(&inputs), &sum))
        });
    }
    group.finish();
}

fn bench_pipeline_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim");
    group.sample_size(10);
    let trace = independent_alu_trace(100_000);
    group.bench_function("alu_100k", |b| {
        b.iter(|| simulate(&PipelineConfig::default(), black_box(&trace)))
    });
    group.finish();
}

fn bench_page_replacement(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_replacement");
    group.sample_size(10);
    let mut x = 9u64;
    let refs: Vec<u64> = (0..20_000)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) % 64
        })
        .collect();
    for (name, policy) in [
        ("fifo", ReplacePolicy::Fifo),
        ("lru", ReplacePolicy::Lru),
        ("clock", ReplacePolicy::Clock),
        ("opt", ReplacePolicy::Opt),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            b.iter(|| page_run(p, 16, black_box(&refs)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vm_dispatch,
    bench_circuit_eval,
    bench_pipeline_sim,
    bench_page_replacement
);

/// Run one small workload per traced subsystem — pool, BSP machine,
/// GPU kernel, buffer pool, and cache — through one shared
/// [`TraceSession`], then write the `pdc-trace/2` snapshot next to the
/// bench results (see EXPERIMENTS.md for the schema). CI greps this
/// file for all four model key families. Returns the session so
/// `--analyze` can judge the same events it snapshotted.
fn emit_trace_snapshot() -> TraceSession {
    let session = TraceSession::new();

    // Work-stealing pool: 256 tiny tasks across 4 workers, so the
    // snapshot carries pool.executed / pool.steals plus spawn and
    // steal events.
    let pool = WorkStealingPool::with_trace(4, session.clone());
    for i in 0..256u64 {
        pool.spawn(move || {
            black_box(i.wrapping_mul(i));
        });
    }
    pool.wait_idle();

    // Simulated machine: three BSP supersteps on the same session, so
    // the same snapshot also carries machine.phases / machine.barriers
    // plus phase and barrier events.
    let mut machine = SimMachine::with_trace(MachineConfig::with_cores(4), &session);
    for _ in 0..3 {
        machine.parallel_even(4_000, 4);
        machine.barrier(4);
    }

    // GPU model: one coalesced copy kernel → gpu.* counters and a
    // kernel event.
    let mut dev = Device::new(128);
    dev.attach_trace(&session);
    let phases: Vec<Phase<'_>> = vec![Box::new(|t: &mut ThreadCtx<'_>| {
        let v = t.read_global(t.gtid());
        t.write_global(64 + t.gtid(), v + 1);
    })];
    dev.launch(1, 64, 0, &phases);

    // External-memory model: a row-major sweep through a small buffer
    // pool → io.* counters.
    let mut arr = CachedArray::new((0..256i64).collect(), 16, 4);
    arr.attach_trace(&session);
    let mut acc = 0i64;
    for i in 0..256 {
        acc = acc.wrapping_add(arr.get(i));
    }
    black_box(acc);

    // Memory-hierarchy model: a strided scan → cache.* counters.
    let mut cache = MemCache::new(CacheConfig::direct_mapped(64, 32));
    cache.attach_trace(&session);
    for i in 0..256u64 {
        cache.access(i * 64, i % 8 == 0);
    }

    let json = session.to_json_with_meta(&[
        ("bench", "t1_machine".to_string()),
        ("pool_workers", "4".to_string()),
        ("machine_cores", "4".to_string()),
    ]);
    // cargo runs benches with cwd = the package dir; anchor the output
    // to the workspace-root target/ regardless.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/pdc-trace/t1_machine.trace.json");
    pdc_core::report::write_text_file(&path, &json).expect("write trace snapshot");
    println!("\npdc-trace snapshot ({}):", path.display());
    println!("{json}");
    session
}

/// `--analyze`: feed the snapshot's events through `pdc-analyze`, write
/// the `pdc-analyze/1` report next to the trace, and fail the bench run
/// if this deliberately race-free workload is flagged.
fn analyze_snapshot(session: &TraceSession) {
    let report = pdc_analyze::analyze(session);
    let json = report.to_json();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/pdc-trace/t1_machine.analyze.json");
    pdc_core::report::write_text_file(&path, &json).expect("write analyze report");
    println!("\npdc-analyze report ({}):", path.display());
    println!("{json}");
    if !report.clean() {
        eprintln!(
            "t1_machine --analyze: {} defect(s) in a workload that must be clean",
            report.defects.len()
        );
        std::process::exit(1);
    }
}

fn main() {
    benches();
    let session = emit_trace_snapshot();
    criterion::finalize();
    if std::env::args().any(|a| a == "--analyze") {
        analyze_snapshot(&session);
    }
}
