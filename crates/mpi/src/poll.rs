//! Readiness-driven I/O without new dependencies: a mio-style
//! registration/readiness API over the OS `poll(2)` syscall, plus the
//! buffered nonblocking connection every event loop in this crate
//! shares.
//!
//! The shape is deliberately the one mio popularised — register an fd
//! under a caller-chosen token with a read/write [`Interest`], call
//! [`Poller::poll`], get back [`Event`]s naming the ready tokens — but
//! the implementation is a flat `pollfd` array rebuilt per call. That
//! is O(fds) per wakeup where epoll is O(ready), which is the right
//! trade here: every world in this repo has tens of fds, not tens of
//! thousands, and `poll(2)` needs no registration syscalls, no
//! capability probing, and no crate. The symbol comes from the platform
//! C library that `std` already links, declared by hand — the
//! "libc-free shim".
//!
//! [`Conn`] is the per-connection state an event loop keeps: the
//! nonblocking stream, an incoming byte buffer that frames are parsed
//! out of, and an outgoing queue that absorbs short writes. Queueing
//! instead of blocking is what makes a single-threaded router safe: a
//! peer whose TCP buffer is full can never wedge the loop (the
//! userspace queue grows instead), which is the property the old
//! two-threads-per-child star router bought with unbounded channels.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

/// One gather-write segment for `writev(2)` — layout-compatible with
/// POSIX `struct iovec`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct IoVec {
    base: *const u8,
    len: usize,
}

/// `writev(2)` caps `iovcnt` at `IOV_MAX` (1024 on Linux); 64 is far
/// below that and already amortises the syscall across a full burst.
const MAX_IOV: usize = 64;

extern "C" {
    // POSIX poll(2); nfds_t is unsigned long on every target we build.
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: i32) -> i32;
    // POSIX writev(2): gather-write, one syscall for many frames.
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    // kill(2), used by the fault-injection hooks (SIGSTOP a shard to
    // simulate a hang, SIGKILL handled by std's Child::kill).
    fn kill(pid: i32, sig: i32) -> i32;
}

/// `SIGSTOP`: pause a process without killing it — the socket stays
/// open, so only a heartbeat detector can tell it is gone.
pub const SIGSTOP: i32 = 19;
/// `SIGCONT`: resume a `SIGSTOP`ped process.
pub const SIGCONT: i32 = 18;

/// Send `sig` to process `pid` (see [`SIGSTOP`]/[`SIGCONT`]).
pub fn send_signal(pid: u32, sig: i32) -> io::Result<()> {
    // SAFETY: kill(2) has no memory preconditions; an invalid pid is
    // reported through errno.
    if unsafe { kill(pid as i32, sig) } == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the fd is readable (or hung up).
    pub const READABLE: Interest = Interest(1);
    /// Wake when the fd is writable.
    pub const WRITABLE: Interest = Interest(2);
    /// Both directions.
    pub const BOTH: Interest = Interest(3);

    fn wants_read(self) -> bool {
        self.0 & 1 != 0
    }

    fn wants_write(self) -> bool {
        self.0 & 2 != 0
    }
}

/// One ready fd, named by the token it was registered under.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration's token.
    pub token: usize,
    /// Readable, hung up, or errored — in every case the right response
    /// is to read, which surfaces EOF or the error in-band.
    pub readable: bool,
    /// Writable (or errored; writing surfaces the error).
    pub writable: bool,
}

/// Readiness selector: a token-keyed registration table polled with one
/// `poll(2)` call. Not a reactor — it never dispatches; the owning loop
/// matches on tokens.
#[derive(Debug, Default)]
pub struct Poller {
    // Small and iterated whole every poll; a Vec beats a map.
    slots: Vec<(usize, RawFd, Interest)>,
    fds: Vec<PollFd>,
}

impl Poller {
    /// An empty selector.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Register `fd` under `token`.
    ///
    /// # Panics
    /// Panics if `token` is already registered — tokens are identities,
    /// reuse is a routing bug.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) {
        assert!(
            !self.slots.iter().any(|(t, _, _)| *t == token),
            "poller token {token} registered twice"
        );
        self.slots.push((token, fd, interest));
    }

    /// Change what `token` wants to hear about. No-op if the token is
    /// not registered (the conn may have died in the same sweep).
    pub fn reregister(&mut self, token: usize, interest: Interest) {
        if let Some(slot) = self.slots.iter_mut().find(|(t, _, _)| *t == token) {
            slot.2 = interest;
        }
    }

    /// Forget `token`. No-op if absent.
    pub fn deregister(&mut self, token: usize) {
        self.slots.retain(|(t, _, _)| *t != token);
    }

    /// Whether `token` is currently registered.
    pub fn is_registered(&self, token: usize) -> bool {
        self.slots.iter().any(|(t, _, _)| *t == token)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever), filling `events` with the ready
    /// tokens. Returns the number of events; 0 on timeout or EINTR.
    pub fn poll(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        self.fds.clear();
        for (_, fd, interest) in &self.slots {
            let mut ev = 0i16;
            if interest.wants_read() {
                ev |= POLLIN;
            }
            if interest.wants_write() {
                ev |= POLLOUT;
            }
            self.fds.push(PollFd {
                fd: *fd,
                events: ev,
                revents: 0,
            });
        }
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        // SAFETY: fds points at a live, correctly-sized PollFd array;
        // poll(2) writes only the revents fields.
        let n = unsafe {
            poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as std::ffi::c_ulong,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0); // EINTR: caller loops
            }
            return Err(err);
        }
        for (slot, fd) in self.slots.iter().zip(&self.fds) {
            let r = fd.revents;
            if r == 0 {
                continue;
            }
            assert!(r & POLLNVAL == 0, "polled a closed fd (token {})", slot.0);
            events.push(Event {
                token: slot.0,
                // HUP/ERR surface through a read/write attempt, so they
                // count as both kinds of readiness.
                readable: r & (POLLIN | POLLHUP | POLLERR) != 0,
                writable: r & (POLLOUT | POLLHUP | POLLERR) != 0,
            });
        }
        Ok(events.len())
    }
}

/// A buffered nonblocking connection inside an event loop: reads
/// accumulate in `rbuf` for the owner to parse frames out of; writes
/// queue as whole frames and flush on writability with a gather
/// `writev(2)` — one syscall drains a burst of frames, with no
/// userspace concatenation copy — so the loop never blocks on a slow
/// peer.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rpos: usize,
    /// Queued outgoing frames, oldest first; the front frame may be
    /// partially written (see `wpos`).
    wq: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    wpos: usize,
    /// `write`/`writev` syscalls attempted — observability for the
    /// batching claim (and its regression test).
    write_calls: u64,
    eof: bool,
}

impl Conn {
    /// Wrap `stream`, switching it to nonblocking with NODELAY (every
    /// protocol in this crate is request/reply with small frames).
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wq: VecDeque::new(),
            wpos: 0,
            write_calls: 0,
            eof: false,
        })
    }

    /// The fd to register with a [`Poller`].
    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Drain the socket into the read buffer (call on read readiness).
    /// EOF and connection resets set [`Conn::is_eof`] rather than
    /// erroring — a vanished peer is an in-band condition for every
    /// caller; only unexpected I/O errors surface as `Err`.
    pub fn read_ready(&mut self) -> io::Result<()> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => self.rbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::BrokenPipe =>
                {
                    self.eof = true;
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The peer hung up (no more bytes will ever arrive).
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Unparsed received bytes.
    pub fn buffered(&self) -> &[u8] {
        &self.rbuf[self.rpos..]
    }

    /// Discard `n` parsed bytes from the front of the read buffer.
    pub fn consume(&mut self, n: usize) {
        self.rpos += n;
        assert!(self.rpos <= self.rbuf.len(), "consumed past the buffer");
        // Compact lazily so a long-lived conn doesn't grow forever.
        if self.rpos > 64 * 1024 && self.rpos * 2 > self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }

    /// Queue `frame` for delivery (then call [`Conn::flush`], and keep
    /// the fd registered writable while [`Conn::wants_write`]). Empty
    /// frames are dropped — they carry no bytes and would only pad the
    /// iovec array.
    pub fn queue(&mut self, frame: &[u8]) {
        if !frame.is_empty() {
            self.wq.push_back(frame.to_vec());
        }
    }

    /// Write queued frames until done or the socket would block, each
    /// syscall a gather `writev(2)` over up to [`MAX_IOV`] frames. An
    /// `Err` means the peer is gone mid-frame — the caller decides
    /// whether that is fatal (symmetric world) or a Down event (hub).
    pub fn flush(&mut self) -> io::Result<()> {
        while !self.wq.is_empty() {
            let mut iov: Vec<IoVec> = Vec::with_capacity(self.wq.len().min(MAX_IOV));
            for (i, frame) in self.wq.iter().take(MAX_IOV).enumerate() {
                let skip = if i == 0 { self.wpos } else { 0 };
                iov.push(IoVec {
                    base: frame[skip..].as_ptr(),
                    len: frame.len() - skip,
                });
            }
            self.write_calls += 1;
            // SAFETY: every iovec points into a frame owned by `wq`,
            // which is not mutated until the call returns; writev(2)
            // only reads the described buffers.
            let n = unsafe { writev(self.stream.as_raw_fd(), iov.as_ptr(), iov.len() as i32) };
            if n < 0 {
                let e = io::Error::last_os_error();
                match e.kind() {
                    io::ErrorKind::WouldBlock => return Ok(()),
                    io::ErrorKind::Interrupted => continue,
                    _ => return Err(e),
                }
            }
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ));
            }
            // Retire fully-written frames; a short write leaves the
            // front frame with an offset for the next readiness sweep.
            let mut left = n as usize;
            while left > 0 {
                let front = self.wq.front().expect("bytes written from queued frames");
                let rem = front.len() - self.wpos;
                if left >= rem {
                    self.wq.pop_front();
                    self.wpos = 0;
                    left -= rem;
                } else {
                    self.wpos += left;
                    left = 0;
                }
            }
        }
        Ok(())
    }

    /// Bytes are still queued: keep polling for writability.
    pub fn wants_write(&self) -> bool {
        !self.wq.is_empty()
    }

    /// How many write syscalls this connection has attempted — with
    /// gather writes this stays well below the number of queued frames.
    pub fn write_syscalls(&self) -> u64 {
        self.write_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(l.local_addr().expect("addr")).expect("connect");
        let (b, _) = l.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn poll_reports_readability_when_bytes_arrive() {
        let (a, b) = pair();
        let mut p = Poller::new();
        p.register(a.as_raw_fd(), 7, Interest::READABLE);
        let mut events = Vec::new();
        // Nothing yet: times out with no events.
        let n = p
            .poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll");
        assert_eq!(n, 0);
        (&b).write_all(b"x").expect("write");
        let n = p
            .poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn poll_reports_hangup_as_readable() {
        let (a, b) = pair();
        let mut p = Poller::new();
        p.register(a.as_raw_fd(), 1, Interest::READABLE);
        drop(b);
        let mut events = Vec::new();
        let n = p
            .poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert_eq!(n, 1);
        assert!(events[0].readable, "EOF must wake a reader");
    }

    #[test]
    fn deregistered_tokens_stop_reporting() {
        let (a, b) = pair();
        let mut p = Poller::new();
        p.register(a.as_raw_fd(), 1, Interest::READABLE);
        p.deregister(1);
        assert!(!p.is_registered(1));
        (&b).write_all(b"x").expect("write");
        let mut events = Vec::new();
        let n = p
            .poll(&mut events, Some(Duration::from_millis(20)))
            .expect("poll");
        assert_eq!(n, 0, "deregistered fd must not report");
    }

    #[test]
    fn conn_queues_short_writes_and_parses_across_reads() {
        let (a, b) = pair();
        let mut ca = Conn::new(a).expect("conn");
        let mut cb = Conn::new(b).expect("conn");
        ca.queue(b"hello ");
        ca.queue(b"world");
        assert!(ca.wants_write());
        ca.flush().expect("flush");
        assert!(!ca.wants_write());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cb.buffered().len() < 11 {
            assert!(std::time::Instant::now() < deadline, "bytes never arrived");
            cb.read_ready().expect("read");
        }
        assert_eq!(cb.buffered(), b"hello world");
        cb.consume(6);
        assert_eq!(cb.buffered(), b"world");
        drop(ca);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !cb.is_eof() {
            assert!(std::time::Instant::now() < deadline, "EOF never surfaced");
            cb.read_ready().expect("read");
        }
        assert_eq!(cb.buffered(), b"world", "EOF keeps buffered bytes");
    }

    #[test]
    fn flush_batches_many_queued_frames_into_few_syscalls() {
        let (a, b) = pair();
        let mut ca = Conn::new(a).expect("conn");
        let mut cb = Conn::new(b).expect("conn");
        let mut expect = Vec::new();
        for i in 0..10u8 {
            let frame = vec![i; 100];
            expect.extend_from_slice(&frame);
            ca.queue(&frame);
        }
        assert!(ca.wants_write());
        ca.flush().expect("flush");
        assert!(!ca.wants_write());
        // The gather write is the point: a multi-frame burst must not
        // cost one syscall per frame.
        assert!(
            ca.write_syscalls() < 10,
            "10 frames took {} write syscalls",
            ca.write_syscalls()
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cb.buffered().len() < expect.len() {
            assert!(std::time::Instant::now() < deadline, "bytes never arrived");
            cb.read_ready().expect("read");
        }
        assert_eq!(cb.buffered(), &expect[..], "frames arrive in order");
    }

    #[test]
    fn short_writes_resume_mid_frame_across_flushes() {
        let (a, b) = pair();
        let mut ca = Conn::new(a).expect("conn");
        let mut cb = Conn::new(b).expect("conn");
        // Far beyond any socket buffer, so flush hits WouldBlock with
        // the front frame partially written, plus trailing frames that
        // must stay intact behind it.
        let big = vec![0xabu8; 4 * 1024 * 1024];
        ca.queue(&big);
        ca.queue(b"tail-1");
        ca.queue(b"tail-2");
        let total = big.len() + 12;
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while cb.buffered().len() < total {
            assert!(std::time::Instant::now() < deadline, "transfer stalled");
            ca.flush().expect("flush");
            cb.read_ready().expect("read");
        }
        assert!(!ca.wants_write());
        assert_eq!(&cb.buffered()[..big.len()], &big[..]);
        assert_eq!(&cb.buffered()[big.len()..], b"tail-1tail-2");
    }
}
