//! The α–β (latency–bandwidth) cost model for collectives.
//!
//! Sending an `n`-byte message costs `α + β·n`. The formulas below are
//! the per-algorithm costs CS87 derives on the board; the benches check
//! the *message counts* against the implementations in [`crate::coll`]
//! and use these to print modeled-time tables.

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBeta {
    /// Per-message latency (seconds).
    pub alpha: f64,
    /// Per-byte transfer time (seconds/byte).
    pub beta: f64,
}

impl AlphaBeta {
    /// A cluster-like parameterization (1 µs latency, 10 GB/s).
    pub fn cluster() -> Self {
        AlphaBeta {
            alpha: 1e-6,
            beta: 1e-10,
        }
    }

    /// Time for one `n`-byte point-to-point message.
    pub fn p2p(&self, n: u64) -> f64 {
        self.alpha + self.beta * n as f64
    }

    /// The small-message coalescing threshold `n* = α/β`, in bytes: a
    /// message of `n` bytes is latency-dominated — `α > n·β` — exactly
    /// while `n < n*`, so batching it amortizes α at negligible cost;
    /// past `n*` the transfer term dominates and batching buys nothing.
    /// `coll::Coalescer` flushes a destination's queue when its modeled
    /// bytes reach this value.
    pub fn coalesce_threshold(&self) -> u64 {
        (self.alpha / self.beta) as u64
    }

    /// Modeled time for `k` separate `n`-byte messages: `k(α + βn)`.
    pub fn p2p_many(&self, k: u64, n: u64) -> f64 {
        k as f64 * self.p2p(n)
    }

    /// Modeled time for the same `k·n` bytes shipped as one coalesced
    /// message: `α + β·k·n`. The ratio `p2p_many / p2p_coalesced`
    /// approaches `k` for `n ≪ n*` and `1` for `n ≫ n*` — the crossover
    /// the `e-batch` bench measures on real sockets.
    pub fn p2p_coalesced(&self, k: u64, n: u64) -> f64 {
        self.p2p(k * n)
    }

    /// The same message relayed through `hops` store-and-forward hops:
    /// each hop pays the full per-message setup, so α scales with the
    /// hop count, while bytes pipeline through intermediate buffers and
    /// β stays put. A star-routed wire world is the mesh's model with
    /// `with_hops(2)` — child→parent plus parent→child per message —
    /// which pushes the coalescing threshold `n* = α/β` up by the hop
    /// count: batching pays off over a longer range exactly when the
    /// topology taxes every message twice.
    pub fn with_hops(&self, hops: u64) -> AlphaBeta {
        AlphaBeta {
            alpha: self.alpha * hops as f64,
            beta: self.beta,
        }
    }
}

fn ceil_log2(p: u64) -> u64 {
    assert!(p >= 1);
    (64 - (p - 1).leading_zeros()) as u64
}

/// Binomial broadcast of `n` bytes among `p` ranks:
/// `⌈log₂ p⌉ · (α + βn)` (critical path).
pub fn broadcast_time(m: AlphaBeta, p: u64, n: u64) -> f64 {
    ceil_log2(p) as f64 * m.p2p(n)
}

/// Messages sent by the binomial broadcast.
pub fn broadcast_msgs(p: u64) -> u64 {
    p - 1
}

/// Linear (root-sends-all) broadcast: `(p−1)(α + βn)` — the baseline the
/// tree beats.
pub fn broadcast_linear_time(m: AlphaBeta, p: u64, n: u64) -> f64 {
    (p - 1) as f64 * m.p2p(n)
}

/// Binomial reduce: same shape as broadcast.
pub fn reduce_time(m: AlphaBeta, p: u64, n: u64) -> f64 {
    broadcast_time(m, p, n)
}

/// Reduce+broadcast allreduce: `2⌈log₂ p⌉(α + βn)` critical path,
/// `2(p−1)` messages.
pub fn allreduce_time(m: AlphaBeta, p: u64, n: u64) -> f64 {
    2.0 * ceil_log2(p) as f64 * m.p2p(n)
}

/// Messages sent by reduce+broadcast allreduce.
pub fn allreduce_msgs(p: u64) -> u64 {
    2 * (p - 1)
}

/// Dissemination barrier: `⌈log₂ p⌉` rounds on the critical path,
/// `p·⌈log₂ p⌉` messages.
pub fn barrier_time(m: AlphaBeta, p: u64) -> f64 {
    ceil_log2(p) as f64 * m.p2p(0)
}

/// Messages sent by the dissemination barrier.
pub fn barrier_msgs(p: u64) -> u64 {
    p * ceil_log2(p)
}

/// Ring allgather of `n` bytes per rank: `(p−1)(α + βn)` critical path,
/// `p(p−1)` messages.
pub fn allgather_ring_time(m: AlphaBeta, p: u64, n: u64) -> f64 {
    (p - 1) as f64 * m.p2p(n)
}

/// Messages sent by the ring allgather.
pub fn allgather_msgs(p: u64) -> u64 {
    p * (p - 1)
}

/// Linear scan chain: `(p−1)(α + βn)` critical path.
pub fn scan_chain_time(m: AlphaBeta, p: u64, n: u64) -> f64 {
    (p - 1) as f64 * m.p2p(n)
}

/// All-to-all (direct): `p(p−1)` messages; with full bisection we model
/// the critical path as `(p−1)(α + βn)`.
pub fn alltoall_time(m: AlphaBeta, p: u64, n: u64) -> f64 {
    (p - 1) as f64 * m.p2p(n)
}

/// Ring allreduce of `n` bytes among `p` ranks: `2(p−1)` rounds of
/// `n/p`-byte messages — `2(p−1)(α + β·n/p)` critical path. For large
/// `n` this approaches `2βn`, beating the tree's `2βn·log₂ p`.
pub fn ring_allreduce_time(m: AlphaBeta, p: u64, n: u64) -> f64 {
    if p == 1 {
        return 0.0;
    }
    2.0 * (p - 1) as f64 * m.p2p(n / p)
}

/// Messages sent by the ring allreduce.
pub fn ring_allreduce_msgs(p: u64) -> u64 {
    2 * p * (p - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_linear_in_size() {
        let m = AlphaBeta {
            alpha: 1.0,
            beta: 0.5,
        };
        assert_eq!(m.p2p(0), 1.0);
        assert_eq!(m.p2p(10), 6.0);
    }

    #[test]
    fn tree_beats_linear_broadcast_for_large_p() {
        let m = AlphaBeta::cluster();
        for p in [4u64, 16, 64, 256] {
            assert!(broadcast_time(m, p, 1024) < broadcast_linear_time(m, p, 1024));
        }
        // At p = 2 they coincide.
        assert_eq!(broadcast_time(m, 2, 64), broadcast_linear_time(m, 2, 64));
    }

    #[test]
    fn message_count_formulas() {
        assert_eq!(broadcast_msgs(8), 7);
        assert_eq!(allreduce_msgs(8), 14);
        assert_eq!(barrier_msgs(8), 24);
        assert_eq!(allgather_msgs(8), 56);
    }

    #[test]
    fn costs_scale_logarithmically_for_trees() {
        let m = AlphaBeta::cluster();
        let t16 = broadcast_time(m, 16, 8);
        let t256 = broadcast_time(m, 256, 8);
        assert!((t256 / t16 - 2.0).abs() < 1e-9, "log2(256)/log2(16) = 2");
    }

    #[test]
    fn ring_beats_tree_for_large_messages() {
        let m = AlphaBeta::cluster();
        let p = 64;
        let big = 1 << 30; // 1 GiB
        assert!(ring_allreduce_time(m, p, big) < allreduce_time(m, p, big) / 4.0);
        // But for tiny messages, latency dominates and the tree wins.
        assert!(ring_allreduce_time(m, p, 8) > allreduce_time(m, p, 8));
    }

    #[test]
    fn coalesce_threshold_is_alpha_over_beta() {
        assert_eq!(AlphaBeta::cluster().coalesce_threshold(), 10_000);
        let m = AlphaBeta {
            alpha: 80.0,
            beta: 1.0,
        };
        assert_eq!(m.coalesce_threshold(), 80);
    }

    #[test]
    fn batching_wins_below_threshold_only() {
        let m = AlphaBeta::cluster();
        let k = 100;
        // Far below n*: latency dominates, coalescing ≈ k× faster.
        let tiny = 8;
        assert!(m.p2p_many(k, tiny) / m.p2p_coalesced(k, tiny) > 0.9 * k as f64);
        // Far above n*: bandwidth dominates, coalescing ≈ no gain.
        let huge = m.coalesce_threshold() * 1000;
        assert!(m.p2p_many(k, huge) / m.p2p_coalesced(k, huge) < 1.01);
        // The model's own crossover: at n = n*, one message costs 2α,
        // so batching saves exactly half — the midpoint of the regimes.
        let ratio =
            m.p2p_many(k, m.coalesce_threshold()) / m.p2p_coalesced(k, m.coalesce_threshold());
        assert!((1.5..=2.5).contains(&ratio), "ratio at n*: {ratio}");
    }

    #[test]
    fn large_messages_dominated_by_beta() {
        let m = AlphaBeta::cluster();
        let small = broadcast_time(m, 8, 1);
        let large = broadcast_time(m, 8, 100_000_000);
        assert!(large > small * 100.0);
    }

    #[test]
    fn star_double_hop_doubles_the_coalescing_threshold() {
        let mesh = AlphaBeta::cluster();
        let star = mesh.with_hops(2);
        assert_eq!(star.alpha, 2.0 * mesh.alpha, "α paid per hop");
        assert_eq!(star.beta, mesh.beta, "bytes pipeline; β unchanged");
        assert_eq!(
            star.coalesce_threshold(),
            2 * mesh.coalesce_threshold(),
            "two-hop routing widens the latency-dominated regime"
        );
        // Identity case: one hop is the model itself.
        assert_eq!(mesh.with_hops(1), mesh);
    }
}
