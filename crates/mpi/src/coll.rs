//! Collective operations, implemented as the explicit algorithms whose
//! costs CS87 derives: binomial trees (`log₂ p` rounds), rings, and
//! linear chains. Message counts are exact, so the benches can check
//! them against [`crate::cost`].
//!
//! ## SPMD discipline
//!
//! Collectives use reserved tags and rely on MPI's usual rule: **every
//! rank calls the same sequence of collectives in the same order**.
//! Per-`(src, tag)` FIFO matching then keeps successive collectives from
//! interfering.
//!
//! ## Tracing
//!
//! In a traced world ([`crate::world::World::run_traced`]) each
//! collective bumps a `coll.<name>` counter once per calling rank, so
//! `coll.barrier / p` is the number of barrier episodes. Each call is
//! also bracketed by `coll_begin`/`coll_end` marks in the event stream
//! (see [`CollId`] for the id codes): every `send`/`recv` event an
//! actor records between a begin and its matching end belongs to that
//! collective, which is how a trace attributes point-to-point traffic
//! to the broadcast/reduce/scatter that caused it. Composite
//! collectives nest — an `allreduce` span contains a `reduce` span and
//! a `broadcast` span.

use crate::cost::AlphaBeta;
use crate::transport::Transport;
use crate::world::{Payload, Rank};

/// Reserved tag space for collectives.
const SYS: u32 = 0x8000_0000;
const TAG_BARRIER: u32 = SYS;
const TAG_BCAST: u32 = SYS + 0x100;
const TAG_REDUCE: u32 = SYS + 0x200;
const TAG_GATHER: u32 = SYS + 0x300;
const TAG_SCATTER: u32 = SYS + 0x400;
const TAG_ALLGATHER: u32 = SYS + 0x500;
const TAG_SCAN: u32 = SYS + 0x600;
const TAG_ALLTOALL: u32 = SYS + 0x700;
const TAG_RING_RS: u32 = SYS + 0x800;
const TAG_RING_AG: u32 = SYS + 0x900;

/// Stable id codes for the collectives, used as the `coll` payload of
/// `coll_begin`/`coll_end` trace events. The discriminants are part of
/// the `pdc-trace/2` schema: renumbering them breaks trace consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum CollId {
    /// Dissemination barrier.
    Barrier = 0,
    /// Binomial-tree broadcast.
    Broadcast = 1,
    /// Binomial-tree reduce.
    Reduce = 2,
    /// Allreduce (reduce + broadcast).
    Allreduce = 3,
    /// Linear gather.
    Gather = 4,
    /// Linear scatter.
    Scatter = 5,
    /// Ring allgather.
    Allgather = 6,
    /// Ring allreduce (reduce-scatter + allgather).
    RingAllreduce = 7,
    /// Linear exclusive scan.
    ExclusiveScan = 8,
    /// All-to-all personalized exchange.
    Alltoall = 9,
}

impl CollId {
    /// The id code recorded in trace events.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// The collective's lowercase name, as used in the `coll.<name>`
    /// invocation counters.
    pub fn name(self) -> &'static str {
        match self {
            CollId::Barrier => "barrier",
            CollId::Broadcast => "broadcast",
            CollId::Reduce => "reduce",
            CollId::Allreduce => "allreduce",
            CollId::Gather => "gather",
            CollId::Scatter => "scatter",
            CollId::Allgather => "allgather",
            CollId::RingAllreduce => "ring_allreduce",
            CollId::ExclusiveScan => "exclusive_scan",
            CollId::Alltoall => "alltoall",
        }
    }

    /// The full `coll.<name>` counter key.
    fn counter(self) -> &'static str {
        match self {
            CollId::Barrier => "coll.barrier",
            CollId::Broadcast => "coll.broadcast",
            CollId::Reduce => "coll.reduce",
            CollId::Allreduce => "coll.allreduce",
            CollId::Gather => "coll.gather",
            CollId::Scatter => "coll.scatter",
            CollId::Allgather => "coll.allgather",
            CollId::RingAllreduce => "coll.ring_allreduce",
            CollId::ExclusiveScan => "coll.exclusive_scan",
            CollId::Alltoall => "coll.alltoall",
        }
    }
}

/// Run `f` as the body of collective `id` on `rank`: bump the
/// invocation counter and bracket the body with begin/end marks. Early
/// `return`s inside `f` still hit the end mark.
fn span<M: Payload, T: Transport<M>, R>(
    rank: &mut Rank<M, T>,
    id: CollId,
    f: impl FnOnce(&mut Rank<M, T>) -> R,
) -> R {
    rank.count(id.counter());
    let seq = rank.coll_begin(id.code());
    let result = f(rank);
    rank.coll_end(id.code(), seq);
    result
}

fn ceil_log2(p: usize) -> u32 {
    assert!(p >= 1);
    usize::BITS - (p - 1).leading_zeros()
}

/// Dissemination barrier: `⌈log₂ p⌉` rounds, `p·⌈log₂ p⌉` messages total.
pub fn barrier<M: Payload + Default, T: Transport<M>>(rank: &mut Rank<M, T>) {
    span(rank, CollId::Barrier, |rank| {
        let p = rank.size();
        if p == 1 {
            return;
        }
        for k in 0..ceil_log2(p) {
            let dist = 1usize << k;
            let dst = (rank.id() + dist) % p;
            let src = (rank.id() + p - dist) % p;
            rank.send(dst, TAG_BARRIER + k, M::default());
            rank.recv(src, TAG_BARRIER + k);
        }
    })
}

/// Binomial-tree broadcast from `root`: `p − 1` messages, `⌈log₂ p⌉`
/// rounds. Every rank returns the value.
pub fn broadcast<M: Payload + Clone, T: Transport<M>>(
    rank: &mut Rank<M, T>,
    root: usize,
    value: Option<M>,
) -> M {
    span(rank, CollId::Broadcast, |rank| {
        let p = rank.size();
        assert!(root < p, "root out of range");
        let r = (rank.id() + p - root) % p; // virtual rank, root at 0
        let mut val = if r == 0 {
            Some(value.expect("root must supply the broadcast value"))
        } else {
            None
        };
        let levels = ceil_log2(p);
        for k in 0..levels {
            let dist = 1usize << k;
            if r < dist {
                // I already have the value; send to my partner if it exists.
                let partner = r + dist;
                if partner < p {
                    let dst = (partner + root) % p;
                    rank.send(dst, TAG_BCAST + k, val.clone().expect("holder has value"));
                }
            } else if r < 2 * dist {
                let src = ((r - dist) + root) % p;
                val = Some(rank.recv(src, TAG_BCAST + k));
            }
        }
        val.expect("broadcast reached every rank")
    })
}

/// Binomial-tree reduce to `root` with associative `op`; combine order
/// preserves rank order, so non-commutative (but associative) operators
/// are safe. `p − 1` messages. Returns `Some(result)` at root only.
pub fn reduce<M: Payload, T: Transport<M>>(
    rank: &mut Rank<M, T>,
    root: usize,
    value: M,
    op: impl Fn(M, M) -> M,
) -> Option<M> {
    span(rank, CollId::Reduce, |rank| {
        let p = rank.size();
        assert!(root < p, "root out of range");
        let r = (rank.id() + p - root) % p;
        let mut acc = value;
        let levels = ceil_log2(p);
        for k in 0..levels {
            let dist = 1usize << k;
            if r.is_multiple_of(2 * dist) {
                let partner = r + dist;
                if partner < p {
                    let src = (partner + root) % p;
                    let other = rank.recv(src, TAG_REDUCE + k);
                    // acc covers ranks [r, r+dist), other covers [r+dist, ...):
                    // combine low-then-high to preserve order.
                    acc = op(acc, other);
                }
            } else if r % (2 * dist) == dist {
                let dst = ((r - dist) + root) % p;
                rank.send(dst, TAG_REDUCE + k, acc);
                return None; // contributed and done
            }
        }
        debug_assert_eq!(r, 0);
        Some(acc)
    })
}

/// Allreduce = reduce to 0 + broadcast: `2(p − 1)` messages.
pub fn allreduce<M: Payload + Clone, T: Transport<M>>(
    rank: &mut Rank<M, T>,
    value: M,
    op: impl Fn(M, M) -> M,
) -> M {
    span(rank, CollId::Allreduce, |rank| {
        let reduced = reduce(rank, 0, value, op);
        broadcast(rank, 0, reduced)
    })
}

/// Gather to `root` (linear): every other rank sends once; root returns
/// the values in rank order. `p − 1` messages.
pub fn gather<M: Payload, T: Transport<M>>(
    rank: &mut Rank<M, T>,
    root: usize,
    value: M,
) -> Option<Vec<M>> {
    span(rank, CollId::Gather, |rank| {
        let p = rank.size();
        assert!(root < p, "root out of range");
        if rank.id() == root {
            let mut slots: Vec<Option<M>> = (0..p).map(|_| None).collect();
            slots[root] = Some(value);
            for _ in 0..p - 1 {
                let (src, v) = rank.recv_any(TAG_GATHER);
                assert!(slots[src].is_none(), "duplicate gather contribution");
                slots[src] = Some(v);
            }
            Some(
                slots
                    .into_iter()
                    .map(|s| s.expect("all ranks sent"))
                    .collect(),
            )
        } else {
            rank.send(root, TAG_GATHER, value);
            None
        }
    })
}

/// Scatter from `root` (linear): root keeps element `root` and sends one
/// element to each other rank. `p − 1` messages.
pub fn scatter<M: Payload, T: Transport<M>>(
    rank: &mut Rank<M, T>,
    root: usize,
    values: Option<Vec<M>>,
) -> M {
    span(rank, CollId::Scatter, |rank| {
        let p = rank.size();
        assert!(root < p, "root out of range");
        if rank.id() == root {
            let values = values.expect("root must supply the scatter values");
            assert_eq!(values.len(), p, "need exactly one value per rank");
            let mut mine = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == rank.id() {
                    mine = Some(v);
                } else {
                    rank.send(dst, TAG_SCATTER, v);
                }
            }
            mine.expect("own slot present")
        } else {
            rank.recv(root, TAG_SCATTER)
        }
    })
}

/// Ring allgather: `p − 1` rounds, each rank forwarding one element per
/// round; `p(p − 1)` messages. Returns all values in rank order.
pub fn allgather<M: Payload + Clone, T: Transport<M>>(rank: &mut Rank<M, T>, value: M) -> Vec<M> {
    span(rank, CollId::Allgather, |rank| {
        let p = rank.size();
        let mut slots: Vec<Option<M>> = (0..p).map(|_| None).collect();
        slots[rank.id()] = Some(value);
        let next = (rank.id() + 1) % p;
        let prev = (rank.id() + p - 1) % p;
        // In round k, send the element that originated at (id - k) mod p.
        let mut carry = slots[rank.id()].clone().unwrap();
        for k in 0..p - 1 {
            rank.send(next, TAG_ALLGATHER + k as u32, carry);
            let received = rank.recv(prev, TAG_ALLGATHER + k as u32);
            let origin = (rank.id() + p - 1 - k) % p;
            slots[origin] = Some(received.clone());
            carry = received;
        }
        slots
            .into_iter()
            .map(|s| s.expect("ring complete"))
            .collect()
    })
}

/// Ring allreduce over a *vector* value (reduce-scatter then allgather):
/// `2(p − 1)` rounds, `2p(p − 1)` messages of `n/p` elements each — the
/// bandwidth-optimal algorithm large-model training uses, contrasted in
/// class with the `2(p−1)`-message but bandwidth-`n·log p` tree.
///
/// `values.len()` must be divisible by `p`. Every rank returns the full
/// elementwise reduction.
pub fn ring_allreduce<T: Transport<Vec<i64>>>(
    rank: &mut Rank<Vec<i64>, T>,
    values: Vec<i64>,
    op: impl Fn(i64, i64) -> i64 + Copy,
) -> Vec<i64> {
    span(rank, CollId::RingAllreduce, |rank| {
        let mut values = values;
        let p = rank.size();
        if p == 1 {
            return values;
        }
        let n = values.len();
        assert!(n.is_multiple_of(p), "vector length must be divisible by p");
        let chunk = n / p;
        let me = rank.id();
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        let slice_of = |i: usize| (i * chunk)..((i + 1) * chunk);

        // Phase 1: reduce-scatter. In round k, send the chunk that started at
        // (me - k) and receive/accumulate the chunk started at (me - k - 1).
        for k in 0..p - 1 {
            let send_idx = (me + p - k) % p;
            let recv_idx = (me + p - k - 1) % p;
            rank.send(
                next,
                TAG_RING_RS + k as u32,
                values[slice_of(send_idx)].to_vec(),
            );
            let incoming = rank.recv(prev, TAG_RING_RS + k as u32);
            for (dst, src) in values[slice_of(recv_idx)].iter_mut().zip(incoming) {
                *dst = op(*dst, src);
            }
        }
        // After p-1 rounds, rank me owns the fully reduced chunk (me + 1) % p.
        // Phase 2: allgather the reduced chunks around the ring.
        for k in 0..p - 1 {
            let send_idx = (me + 1 + p - k) % p;
            let recv_idx = (me + p - k) % p;
            rank.send(
                next,
                TAG_RING_AG + k as u32,
                values[slice_of(send_idx)].to_vec(),
            );
            let incoming = rank.recv(prev, TAG_RING_AG + k as u32);
            values[slice_of(recv_idx)].copy_from_slice(&incoming);
        }
        values
    })
}

/// Linear exclusive scan: rank `i` returns `id ⊕ v₀ ⊕ … ⊕ v_{i−1}`.
/// `p − 1` messages, `p − 1` rounds (the chain is the critical path).
pub fn exclusive_scan<M: Payload + Clone, T: Transport<M>>(
    rank: &mut Rank<M, T>,
    identity: M,
    value: M,
    op: impl Fn(M, M) -> M,
) -> M {
    span(rank, CollId::ExclusiveScan, |rank| {
        let p = rank.size();
        let prefix = if rank.id() == 0 {
            identity
        } else {
            rank.recv(rank.id() - 1, TAG_SCAN)
        };
        if rank.id() + 1 < p {
            let forward = op(prefix.clone(), value);
            rank.send(rank.id() + 1, TAG_SCAN, forward);
        }
        prefix
    })
}

/// All-to-all personalized exchange: rank `i` sends `values[j]` to rank
/// `j`; returns the values received, indexed by source. `p(p − 1)`
/// messages.
pub fn alltoall<M: Payload, T: Transport<M>>(rank: &mut Rank<M, T>, values: Vec<M>) -> Vec<M> {
    span(rank, CollId::Alltoall, |rank| {
        let p = rank.size();
        assert_eq!(values.len(), p, "need exactly one value per rank");
        let mut slots: Vec<Option<M>> = (0..p).map(|_| None).collect();
        for (dst, v) in values.into_iter().enumerate() {
            if dst == rank.id() {
                slots[dst] = Some(v);
            } else {
                rank.send(dst, TAG_ALLTOALL, v);
            }
        }
        for _ in 0..p - 1 {
            let (src, v) = rank.recv_any(TAG_ALLTOALL);
            assert!(slots[src].is_none(), "duplicate alltoall message");
            slots[src] = Some(v);
        }
        slots.into_iter().map(|s| s.expect("complete")).collect()
    })
}

/// Small-message coalescing for worlds whose payload is a batch
/// (`Rank<Vec<M>, T>`): queue messages per destination and ship each
/// queue as **one** envelope once its modeled bytes reach the α–β
/// threshold `n* = α/β` (see [`AlphaBeta::coalesce_threshold`]).
///
/// The rule is the classic latency-vs-bandwidth trade: a message of `n`
/// bytes is latency-dominated while `α > n·β`, so gluing it onto the
/// next one amortizes α at negligible bandwidth cost; past `n*` the
/// transfer term owns the wire and batching buys nothing. The
/// `e-batch` bench demonstrates the crossover on real loopback
/// sockets.
///
/// Delivery order per `(src, dst)` is the push order (queues are FIFO
/// and the transport preserves send order), so batching never reorders
/// a conversation — it only changes how many envelopes carry it. The
/// receiver sees `Vec<M>` batches of unspecified sizes; callers that
/// need framing count messages, not envelopes.
///
/// In a traced world each shipped envelope bumps `coll.coalesce_flushes`
/// and each queued message bumps `coll.coalesced_msgs`, so the batching
/// ratio is visible in snapshots.
pub struct Coalescer<M> {
    tag: u32,
    threshold: u64,
    queues: Vec<Vec<M>>,
    queued_bytes: Vec<u64>,
}

impl<M: Payload> Coalescer<M> {
    /// A coalescer for a world of `p` ranks, shipping under `tag`, with
    /// the flush threshold taken from `model`.
    pub fn new(p: usize, tag: u32, model: AlphaBeta) -> Coalescer<M> {
        Coalescer {
            tag,
            threshold: model.coalesce_threshold(),
            queues: (0..p).map(|_| Vec::new()).collect(),
            queued_bytes: vec![0; p],
        }
    }

    /// The modeled byte count at which a destination's queue ships.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Messages currently queued for `dst`.
    pub fn pending(&self, dst: usize) -> usize {
        self.queues[dst].len()
    }

    /// Queue `msg` for `dst`; ships the queue as one envelope if its
    /// modeled bytes now reach the threshold. Returns `true` when a
    /// flush happened.
    pub fn push<T: Transport<Vec<M>>>(
        &mut self,
        rank: &Rank<Vec<M>, T>,
        dst: usize,
        msg: M,
    ) -> bool {
        rank.count("coll.coalesced_msgs");
        self.queued_bytes[dst] += msg.size_bytes();
        self.queues[dst].push(msg);
        if self.queued_bytes[dst] >= self.threshold {
            self.flush(rank, dst) > 0
        } else {
            false
        }
    }

    /// Ship whatever is queued for `dst` (possibly below the threshold);
    /// returns the number of messages shipped. No envelope is sent for
    /// an empty queue.
    pub fn flush<T: Transport<Vec<M>>>(&mut self, rank: &Rank<Vec<M>, T>, dst: usize) -> usize {
        let batch = std::mem::take(&mut self.queues[dst]);
        self.queued_bytes[dst] = 0;
        let shipped = batch.len();
        if shipped > 0 {
            rank.count("coll.coalesce_flushes");
            rank.send(dst, self.tag, batch);
        }
        shipped
    }

    /// Flush every destination's queue; returns total messages shipped.
    /// Call before any exchange that expects all traffic delivered —
    /// batching must never strand a tail below the threshold.
    pub fn flush_all<T: Transport<Vec<M>>>(&mut self, rank: &Rank<Vec<M>, T>) -> usize {
        (0..self.queues.len())
            .map(|dst| self.flush(rank, dst))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Rank as R, World};

    #[test]
    fn barrier_message_count() {
        for p in [2usize, 3, 4, 8] {
            let (_, stats) = World::run(p, |r: &mut R<u8>| barrier(r));
            assert_eq!(
                stats.messages,
                (p as u64) * u64::from(ceil_log2(p)),
                "p={p}"
            );
        }
    }

    #[test]
    fn broadcast_delivers_and_counts() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, p - 1, p / 2] {
                let (results, stats) = World::run(p, |r: &mut R<u64>| {
                    let v = if r.id() == root { Some(999) } else { None };
                    broadcast(r, root, v)
                });
                assert!(results.iter().all(|&v| v == 999), "p={p} root={root}");
                assert_eq!(stats.messages, (p - 1) as u64, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn reduce_sums_and_counts() {
        for p in [1usize, 2, 3, 7, 8] {
            for root in [0, p - 1] {
                let (results, stats) = World::run(p, |r: &mut R<u64>| {
                    reduce(r, root, r.id() as u64 + 1, |a, b| a + b)
                });
                let want: u64 = (1..=p as u64).sum();
                for (i, res) in results.iter().enumerate() {
                    if i == root {
                        assert_eq!(*res, Some(want));
                    } else {
                        assert_eq!(*res, None);
                    }
                }
                assert_eq!(stats.messages, (p - 1) as u64);
            }
        }
    }

    #[test]
    fn reduce_non_commutative_preserves_order() {
        let p = 6;
        let (results, _) = World::run(p, |r: &mut R<String>| {
            reduce(r, 0, r.id().to_string(), |a, b| a + &b)
        });
        assert_eq!(results[0], Some("012345".to_string()));
    }

    #[test]
    fn allreduce_everyone_gets_max() {
        let p = 7;
        let (results, stats) = World::run(p, |r: &mut R<u64>| {
            allreduce(r, (r.id() as u64 * 37) % 11, u64::max)
        });
        let want = (0..p as u64).map(|i| (i * 37) % 11).max().unwrap();
        assert!(results.iter().all(|&v| v == want));
        assert_eq!(stats.messages, 2 * (p - 1) as u64);
    }

    #[test]
    fn gather_in_rank_order() {
        let p = 5;
        let (results, stats) = World::run(p, |r: &mut R<u64>| gather(r, 2, r.id() as u64 * 10));
        assert_eq!(results[2], Some(vec![0, 10, 20, 30, 40]));
        assert!(results
            .iter()
            .enumerate()
            .all(|(i, v)| i == 2 || v.is_none()));
        assert_eq!(stats.messages, (p - 1) as u64);
    }

    #[test]
    fn scatter_distributes() {
        let p = 4;
        let (results, stats) = World::run(p, |r: &mut R<u64>| {
            let vals = (r.id() == 1).then(|| vec![100, 101, 102, 103]);
            scatter(r, 1, vals)
        });
        assert_eq!(results, vec![100, 101, 102, 103]);
        assert_eq!(stats.messages, (p - 1) as u64);
    }

    #[test]
    fn allgather_ring() {
        let p = 6;
        let (results, stats) = World::run(p, |r: &mut R<u64>| allgather(r, r.id() as u64 * 2));
        let want: Vec<u64> = (0..p as u64).map(|i| i * 2).collect();
        assert!(results.iter().all(|v| *v == want));
        assert_eq!(stats.messages, (p * (p - 1)) as u64);
    }

    #[test]
    fn exclusive_scan_chain() {
        let p = 6;
        let (results, stats) = World::run(p, |r: &mut R<u64>| {
            exclusive_scan(r, 0, r.id() as u64 + 1, |a, b| a + b)
        });
        // rank i gets sum of 1..=i.
        let want: Vec<u64> = (0..p as u64).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(results, want);
        assert_eq!(stats.messages, (p - 1) as u64);
    }

    #[test]
    fn alltoall_personalized() {
        let p = 4;
        let (results, stats) = World::run(p, |r: &mut R<u64>| {
            // values[j] encodes (me, j).
            let vals: Vec<u64> = (0..p).map(|j| (r.id() * 100 + j) as u64).collect();
            alltoall(r, vals)
        });
        for (me, got) in results.iter().enumerate() {
            for (src, &v) in got.iter().enumerate() {
                assert_eq!(v, (src * 100 + me) as u64, "rank {me} from {src}");
            }
        }
        assert_eq!(stats.messages, (p * (p - 1)) as u64);
    }

    #[test]
    fn ring_allreduce_matches_tree_allreduce() {
        for p in [1usize, 2, 3, 4, 6] {
            let n = 12; // divisible by every p above
            let (results, stats) = World::run(p, move |r: &mut R<Vec<i64>>| {
                let mine: Vec<i64> = (0..n).map(|j| (r.id() * n + j) as i64).collect();
                ring_allreduce(r, mine, |a, b| a + b)
            });
            // Expected elementwise sum.
            let want: Vec<i64> = (0..n)
                .map(|j| (0..p).map(|i| (i * n + j) as i64).sum())
                .collect();
            for res in &results {
                assert_eq!(res, &want, "p={p}");
            }
            if p > 1 {
                assert_eq!(stats.messages, (2 * p * (p - 1)) as u64, "p={p}");
                // Bandwidth optimality: total bytes = 2p(p-1) * (n/p) * 8
                // = 2(p-1) * n * 8 — independent of how the tree would
                // scale.
                assert_eq!(stats.bytes, (2 * (p - 1) * n * 8) as u64, "p={p}");
            }
        }
    }

    #[test]
    fn ring_allreduce_with_max_operator() {
        let p = 4;
        let (results, _) = World::run(p, |r: &mut R<Vec<i64>>| {
            let mine = vec![r.id() as i64 * 10, -(r.id() as i64)];
            // pad to divisible length
            let mut v = mine;
            v.resize(4, i64::MIN);
            ring_allreduce(r, v, i64::max)
        });
        for res in results {
            assert_eq!(res[0], 30);
            assert_eq!(res[1], 0);
        }
    }

    #[test]
    fn traced_collectives_bump_invocation_counters() {
        use pdc_core::trace::TraceSession;
        let p = 4;
        let session = TraceSession::new();
        World::run_traced(p, &session, |r: &mut R<u64>| {
            barrier(r);
            let x = broadcast(r, 0, (r.id() == 0).then_some(3));
            allreduce(r, x, |a, b| a + b)
        });
        let snap = session.snapshot();
        // One call per rank per collective; allreduce delegates to
        // reduce + broadcast, so broadcast counts twice per rank.
        assert_eq!(snap.get("coll.barrier"), p as u64);
        assert_eq!(snap.get("coll.allreduce"), p as u64);
        assert_eq!(snap.get("coll.reduce"), p as u64);
        assert_eq!(snap.get("coll.broadcast"), 2 * p as u64);
        // The p2p substrate is accounted too.
        assert!(snap.get("mpi.msgs") > 0);
    }

    #[test]
    fn collective_marks_bracket_exactly_the_collectives_sends() {
        use pdc_core::trace::{EventKind, TraceSession};
        // A lone broadcast in a traced world: on every rank the single
        // coll_begin/coll_end pair must enclose all of that rank's
        // point-to-point events, and the enclosed sends must add up to
        // exactly the p − 1 messages a binomial broadcast issues.
        let p = 4;
        let session = TraceSession::new();
        World::run_traced(p, &session, |r: &mut R<u64>| {
            broadcast(r, 0, (r.id() == 0).then_some(42))
        });
        let events = session.events();
        let mut total_sends = 0u64;
        for actor in 0..p as u32 {
            let mine: Vec<_> = events.iter().filter(|e| e.actor == actor).collect();
            let begins: Vec<_> = mine
                .iter()
                .filter(|e| e.kind == EventKind::CollBegin)
                .collect();
            let ends: Vec<_> = mine
                .iter()
                .filter(|e| e.kind == EventKind::CollEnd)
                .collect();
            assert_eq!(begins.len(), 1, "actor {actor}: one begin");
            assert_eq!(ends.len(), 1, "actor {actor}: one end");
            let (begin, end) = (begins[0], ends[0]);
            assert_eq!(begin.a, CollId::Broadcast.code());
            assert_eq!(end.a, CollId::Broadcast.code());
            assert_eq!(begin.b, end.b, "seq numbers match");
            assert!(begin.ts < end.ts);
            for e in &mine {
                if matches!(e.kind, EventKind::Send | EventKind::Recv) {
                    assert!(
                        begin.ts < e.ts && e.ts < end.ts,
                        "actor {actor}: p2p event outside the collective span"
                    );
                    if e.kind == EventKind::Send {
                        total_sends += 1;
                    }
                }
            }
        }
        assert_eq!(total_sends, (p - 1) as u64, "broadcast sends p − 1 msgs");
        assert_eq!(session.snapshot().get("mpi.msgs"), (p - 1) as u64);
    }

    #[test]
    fn nested_allreduce_spans_and_seq_numbers() {
        use pdc_core::trace::{EventKind, TraceSession};
        let p = 4;
        let session = TraceSession::new();
        World::run_traced(p, &session, |r: &mut R<u64>| allreduce(r, 1, |a, b| a + b));
        let events = session.events();
        for actor in 0..p as u32 {
            // allreduce = outer span + nested reduce and broadcast spans:
            // three begin/end pairs per rank, each end matching its begin's
            // (coll, seq), and distinct seq numbers 1..=3.
            let mine: Vec<_> = events.iter().filter(|e| e.actor == actor).collect();
            let begins: Vec<_> = mine
                .iter()
                .filter(|e| e.kind == EventKind::CollBegin)
                .collect();
            let ends: Vec<_> = mine
                .iter()
                .filter(|e| e.kind == EventKind::CollEnd)
                .collect();
            assert_eq!(begins.len(), 3, "actor {actor}");
            assert_eq!(ends.len(), 3, "actor {actor}");
            let mut seqs: Vec<u64> = begins.iter().map(|e| e.b).collect();
            seqs.sort_unstable();
            assert_eq!(seqs, vec![1, 2, 3], "actor {actor}");
            for b in &begins {
                let matching: Vec<_> = ends
                    .iter()
                    .filter(|e| e.a == b.a && e.b == b.b && e.ts > b.ts)
                    .collect();
                assert_eq!(matching.len(), 1, "actor {actor}: unmatched begin");
            }
            // The outer allreduce span (seq 1) encloses the other two.
            let outer_begin = begins.iter().find(|e| e.b == 1).unwrap();
            let outer_end = ends.iter().find(|e| e.b == 1).unwrap();
            assert_eq!(outer_begin.a, CollId::Allreduce.code());
            for e in begins.iter().chain(ends.iter()) {
                if e.b != 1 {
                    assert!(outer_begin.ts < e.ts && e.ts < outer_end.ts);
                }
            }
        }
    }

    #[test]
    fn collectives_compose_in_spmd_order() {
        // A realistic SPMD program chaining several collectives.
        let p = 5;
        let (results, _) = World::run(p, |r: &mut R<u64>| {
            let x = broadcast(r, 0, (r.id() == 0).then_some(7));
            barrier(r);
            let total = allreduce(r, x * (r.id() as u64 + 1), |a, b| a + b);
            let all = allgather(r, total);
            assert!(all.iter().all(|&v| v == total));
            total
        });
        // 7 * (1+2+3+4+5) = 105
        assert!(results.iter().all(|&v| v == 105));
    }

    #[test]
    fn coalescer_batches_below_threshold_into_one_envelope() {
        // Cluster model: n* = 10 000 B. 100 u64s = 800 B — everything
        // stays queued until flush_all ships a single envelope.
        let (results, stats) = World::run(2, |r: &mut R<Vec<u64>>| {
            if r.id() == 0 {
                let mut co = Coalescer::new(r.size(), 5, AlphaBeta::cluster());
                assert_eq!(co.threshold(), 10_000);
                for i in 0..100u64 {
                    assert!(!co.push(r, 1, i), "below threshold: no auto-flush");
                }
                assert_eq!(co.pending(1), 100);
                assert_eq!(co.flush_all(r), 100);
                assert_eq!(co.pending(1), 0);
                Vec::new()
            } else {
                r.recv(0, 5)
            }
        });
        assert_eq!(
            results[1],
            (0..100).collect::<Vec<u64>>(),
            "push order kept"
        );
        assert_eq!(stats.messages, 1, "100 messages coalesced into 1");
        assert_eq!(stats.bytes, 800);
    }

    #[test]
    fn coalescer_auto_flushes_at_threshold() {
        // α/β = 80 B: every tenth 8-byte push crosses the threshold.
        let model = AlphaBeta {
            alpha: 80.0,
            beta: 1.0,
        };
        let (_, stats) = World::run(2, move |r: &mut R<Vec<u64>>| {
            if r.id() == 0 {
                let mut co = Coalescer::new(r.size(), 5, model);
                let mut flushes = 0;
                for i in 0..95u64 {
                    if co.push(r, 1, i) {
                        flushes += 1;
                    }
                }
                assert_eq!(flushes, 9, "auto-flush every 10 pushes");
                assert_eq!(co.pending(1), 5, "tail below threshold stays queued");
                assert_eq!(co.flush_all(r), 5);
            } else {
                let mut got = Vec::new();
                while got.len() < 95 {
                    got.extend(r.recv(0, 5));
                }
                assert_eq!(got, (0..95).collect::<Vec<u64>>());
            }
        });
        assert_eq!(stats.messages, 10, "9 full batches + 1 tail");
    }

    #[test]
    fn coalescer_ships_immediately_when_alpha_cheap() {
        // α = β: n* = 1 B, so any non-empty message is already
        // bandwidth-dominated and every push ships by itself.
        let model = AlphaBeta {
            alpha: 1.0,
            beta: 1.0,
        };
        let (_, stats) = World::run(2, move |r: &mut R<Vec<u64>>| {
            if r.id() == 0 {
                let mut co = Coalescer::new(r.size(), 5, model);
                for i in 0..7u64 {
                    assert!(co.push(r, 1, i), "past-threshold push ships");
                }
                assert_eq!(co.flush_all(r), 0, "nothing left to flush");
            } else {
                for i in 0..7u64 {
                    assert_eq!(r.recv(0, 5), vec![i]);
                }
            }
        });
        assert_eq!(stats.messages, 7);
    }

    #[test]
    fn coalescer_counters_record_batching_ratio() {
        use pdc_core::trace::TraceSession;
        let session = TraceSession::new();
        World::run_traced(2, &session, |r: &mut R<Vec<u64>>| {
            if r.id() == 0 {
                let mut co = Coalescer::new(r.size(), 5, AlphaBeta::cluster());
                for i in 0..40u64 {
                    co.push(r, 1, i);
                }
                co.flush_all(r);
            } else {
                let mut got = Vec::new();
                while got.len() < 40 {
                    got.extend(r.recv(0, 5));
                }
            }
        });
        let snap = session.snapshot();
        assert_eq!(snap.get("coll.coalesced_msgs"), 40);
        assert_eq!(snap.get("coll.coalesce_flushes"), 1);
        assert_eq!(snap.get("mpi.msgs"), 1);
    }

    #[test]
    fn coalescer_batches_over_the_wire_mesh() {
        // The α–β batching layer composed with the one-hop topology:
        // sub-threshold pushes to two peers coalesce into one envelope
        // each, and neither envelope crosses the parent.
        use crate::transport::{WireOptions, WireTransport, WireWorld};
        let opts = WireOptions::for_test(3, "coll::tests::coalescer_batches_over_the_wire_mesh");
        let run = WireWorld::run(
            &opts,
            |r: &mut crate::Rank<Vec<u64>, WireTransport<Vec<u64>>>| {
                if r.id() == 0 {
                    let mut co = Coalescer::new(r.size(), 5, AlphaBeta::cluster());
                    for i in 0..50u64 {
                        assert!(!co.push(r, 1, i), "below threshold");
                        assert!(!co.push(r, 2, 100 + i), "below threshold");
                    }
                    assert_eq!(co.flush_all(r), 100);
                    Vec::new()
                } else {
                    r.recv(0, 5)
                }
            },
        );
        assert_eq!(run.results[1], (0..50).collect::<Vec<u64>>());
        assert_eq!(run.results[2], (100..150).collect::<Vec<u64>>());
        assert_eq!(run.stats.messages, 2, "one coalesced envelope per peer");
        assert_eq!(
            run.forwarded, 0,
            "coalesced envelopes ride peer connections"
        );
    }
}
