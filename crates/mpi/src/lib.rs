//! # pdc-mpi — a message-passing runtime
//!
//! CS87's distributed-memory programming substrate (paper Section III):
//! an MPI-like world of ranks running on threads, typed point-to-point
//! messaging with tag matching, the standard collectives implemented as
//! explicit tree/ring algorithms (so their message counts equal the
//! formulas taught in class), a mini MapReduce, and a client-server
//! request/reply layer.
//!
//! * [`world`] — `World::run(p, f)` spawns `p` ranks; [`world::Rank`]
//!   provides `send`/`recv` with source/tag matching and traffic
//!   counters.
//! * [`transport`] — the pluggable delivery seam under `Rank`:
//!   [`LocalTransport`] (in-process channels, the default) and
//!   [`WireTransport`] / [`WireWorld`] (ranks as separate OS processes
//!   over loopback TCP, per-process traces merged to `pdc-trace/3`).
//! * [`coll`] — barrier, broadcast, reduce, allreduce, scatter, gather,
//!   allgather, exclusive scan, and all-to-all.
//! * [`cost`] — α–β (latency–bandwidth) cost formulas for each
//!   collective, used by the benches to check measured message counts.
//! * [`mapreduce`] — map / shuffle / reduce over worker threads (the
//!   Hadoop-lab substitute).
//! * [`kv`] — a client-server key-value store (request/reply pattern,
//!   CS45/CS87 distributed-systems intro).
//! * [`ft`] — fault-tolerant master-worker task farming with heartbeat
//!   failure detection (CS87 "fault tolerance").
//! * [`kv_tcp`] — the same client-server lab over **real TCP sockets**
//!   on loopback (Table II: "TCP-IP sockets").
//! * [`hub`] — the asymmetric wire router: this process as rank 0 of a
//!   multi-process world, surviving child deaths as [`HubEvent::Down`]
//!   events (the substrate of `pdc-db`'s replicated serving tier).
//! * [`poll`] — the dependency-free readiness layer under every wire
//!   event loop: a mio-style [`Poller`] over `poll(2)` plus the
//!   buffered nonblocking [`Conn`].
//!
//! Wire worlds run on one of two [`transport::WireTopology`]s: the
//! historical two-hop **star** (all data forwarded by the parent) or
//! the default one-hop **mesh** (a direct TCP connection per child
//! pair, parent kept as a control plane).

#![warn(missing_docs)]

pub mod coll;
pub mod cost;
pub mod ft;
pub mod hub;
pub mod kv;
pub mod kv_tcp;
pub mod mapreduce;
pub mod poll;
pub mod transport;
pub mod world;

pub use coll::CollId;
pub use ft::HeartbeatMonitor;
pub use hub::{HubEvent, WireHub};
pub use poll::{send_signal, Conn, Event, Interest, Poller};
pub use transport::{
    take_child_env, ChildEnv, Envelope, LocalTransport, Transport, TransportError, WireMessage,
    WireOptions, WireRun, WireTopology, WireTransport, WireWorld,
};
pub use world::{Payload, Rank, TrafficStats, World};
