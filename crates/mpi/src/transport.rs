//! Pluggable rank-to-rank transports: the seam between the rank API in
//! [`crate::world`] and the machinery that actually moves envelopes.
//!
//! [`LocalTransport`] is the seed behaviour: ranks are threads of one
//! process joined by unbounded crossbeam channels. [`WireTransport`]
//! puts every rank in its **own OS process**, connected over loopback
//! TCP to a parent router; [`WireWorld`] spawns those processes by
//! re-executing the current binary (MPI launchers do the same — compare
//! `mpirun` forking `p` copies of one executable). Everything above the
//! [`Transport`] trait — tag matching, out-of-order buffering, traffic
//! counters, every collective in [`crate::coll`] — is byte-for-byte the
//! same code over both, which is the point of the seam: the ADI-style
//! device layer of MPICH, in miniature.
//!
//! ## Wire protocol and topologies
//!
//! Two topologies share one frame grammar, selected by
//! [`WireOptions::topology`]:
//!
//! * **Star** (the original shape): child ranks never talk to each
//!   other directly — they send kinded frames to the parent, which
//!   re-frames and forwards to the destination's socket. Every
//!   child↔child message pays **two hops**.
//! * **Mesh** (the default): at bootstrap the parent broadcasts a
//!   rank→address table; each child binds a loopback listener, dials
//!   every higher rank and accepts every lower rank, so each pair
//!   shares exactly one TCP connection and data frames travel **one
//!   hop**, peer-direct. The parent connection survives as a control
//!   plane only: bootstrap, results, traffic stats, death detection.
//!
//! All integers are little-endian. Child → parent frames start with a
//! kind byte:
//!
//! ```text
//! kind 0 (MSG):    dst:u32 tag:u32 modeled:u64 len:u32 payload[len]
//! kind 1 (RESULT): len:u32 payload[len]
//! kind 2 (STATS):  msgs:u64 bytes:u64
//! ```
//!
//! `modeled` is [`Payload::size_bytes`] — the α–β cost-model size — so
//! a star parent can keep [`TrafficStats`] without decoding payloads;
//! mesh children report their own totals with a `STATS` frame instead,
//! since the parent never sees their data traffic. Parent → child and
//! peer ↔ peer frames need no kind byte (only messages flow there):
//!
//! ```text
//! src:u32 tag:u32 len:u32 payload[len]
//! ```
//!
//! Payload bytes are produced by the [`WireMessage`] codec. On connect,
//! an endpoint introduces itself with a bare `rank:u32` hello; a mesh
//! child follows the hello with its listener address, then reads the
//! table (`count:u32`, then `count` length-prefixed address strings —
//! an empty string marks a rank that is absent or already dead).
//!
//! Both routers — the symmetric [`WireWorld`] parent and the
//! asymmetric [`crate::hub::WireHub`] — and every mesh endpoint run on
//! the single-threaded readiness loop from [`crate::poll`]: one
//! [`Poller`] over all connections, userspace write queues instead of
//! blocking writes, so no peer can wedge the loop.
//!
//! ## Traces across processes
//!
//! A traced wire world has no shared `TraceSession`. Each child records
//! into its own session and writes an ordinary `pdc-trace/2` snapshot
//! to `<dir>/rank<i>.trace.json` before exiting; the parent parses and
//! merges them into one `pdc-trace/3` [`MergedTrace`] (see
//! [`pdc_core::merge`]) whose summed counters mean exactly what the
//! shared-session counters mean in a single-process world.

// The readiness API is part of the transport surface: event loops
// built over wire endpoints (the serve front end, custom routers)
// register their own fds alongside the transport's.
pub use crate::poll::{Conn, Event, Interest, Poller};

use crate::world::{Payload, Rank, Traffic, TrafficStats};
use crossbeam::channel::{Receiver, Sender};
use pdc_core::merge::{self, MergedTrace};
use pdc_core::trace::{self, TraceSession};
use std::collections::VecDeque;
use std::io::{self, BufReader, Read, Write};
use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a wire endpoint's I/O failed, as seen by the survivor.
///
/// The distinction matters to layers that *react* to failure instead of
/// inheriting a crash: `db::serve`'s replication tier treats
/// [`TransportError::PeerClosed`] on a shard's connection as a failure
/// detection (promote the backup, rebalance the ring) while the other
/// two variants indicate protocol corruption worth surfacing loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer's socket closed at a frame boundary (clean EOF) or the
    /// connection was reset — the peer process is gone.
    PeerClosed,
    /// The stream died *mid-frame*: a length prefix promised bytes that
    /// never arrived.
    Truncated,
    /// A complete frame arrived but its payload bytes do not decode as
    /// the expected message type.
    Undecodable,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerClosed => write!(f, "peer closed the connection"),
            TransportError::Truncated => write!(f, "truncated frame"),
            TransportError::Undecodable => write!(f, "undecodable payload"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A message in flight: who sent it, under which tag, and the payload.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending rank.
    pub src: usize,
    /// MPI-style tag used for envelope matching.
    pub tag: u32,
    /// The payload.
    pub msg: M,
}

/// Moves envelopes between ranks. [`Rank`](crate::world::Rank) owns one
/// endpoint and layers tag matching and observability on top; a
/// transport only has to deliver reliably and preserve per-sender FIFO
/// order (both implementations do: crossbeam channels and TCP streams
/// are FIFO, and the wire router forwards in arrival order).
pub trait Transport<M: Payload>: Send {
    /// Deliver `msg` from `src` to `dst` under `tag` (non-blocking,
    /// eager: buffers at the receiver like small-message MPI).
    fn send(&self, src: usize, dst: usize, tag: u32, msg: M);

    /// Block until the next envelope for this rank arrives, in arrival
    /// order. Tag matching happens above, in the rank's pending buffer.
    fn recv(&self) -> Envelope<M>;

    /// Fallible [`Transport::send`]: report a dead peer as an error
    /// instead of panicking. The default (used by [`LocalTransport`],
    /// which is infallible by construction — channel endpoints outlive
    /// the world) just delegates to `send`.
    fn try_send(&self, src: usize, dst: usize, tag: u32, msg: M) -> Result<(), TransportError> {
        self.send(src, dst, tag, msg);
        Ok(())
    }

    /// Fallible [`Transport::recv`]: a hung-up, truncating, or
    /// corrupting peer becomes an `Err` the caller can react to. The
    /// default delegates to the infallible `recv`.
    fn try_recv(&self) -> Result<Envelope<M>, TransportError> {
        Ok(self.recv())
    }
}

/// The seed transport: ranks are threads of one process, joined by
/// unbounded in-process channels. Zero behaviour change from the
/// pre-seam world — same channels, same panic messages.
pub struct LocalTransport<M> {
    pub(crate) senders: Vec<Sender<Envelope<M>>>,
    pub(crate) inbox: Receiver<Envelope<M>>,
}

impl<M: Payload> Transport<M> for LocalTransport<M> {
    fn send(&self, src: usize, dst: usize, tag: u32, msg: M) {
        self.senders[dst]
            .send(Envelope { src, tag, msg })
            .expect("destination rank has exited");
    }

    fn recv(&self) -> Envelope<M> {
        self.inbox.recv().expect("world torn down mid-recv")
    }
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

/// A [`Payload`] that can also cross a process boundary: a hand-rolled
/// little-endian codec (no serde in the offline build). `encode` must
/// be the inverse of `decode`; the blanket container impls compose the
/// scalar ones the same way the `Payload` impls compose `size_bytes`.
pub trait WireMessage: Payload + Sized {
    /// Append this value's wire bytes to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Consume this value's wire bytes from the front of `buf`;
    /// `None` if the bytes are malformed or truncated.
    fn decode(buf: &mut &[u8]) -> Option<Self>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a value that must span exactly the whole buffer.
    fn from_bytes(mut buf: &[u8]) -> Option<Self> {
        let v = Self::decode(&mut buf)?;
        buf.is_empty().then_some(v)
    }
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    let (head, rest) = buf.split_first_chunk::<4>()?;
    *buf = rest;
    Some(u32::from_le_bytes(*head))
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    let (head, rest) = buf.split_first_chunk::<8>()?;
    *buf = rest;
    Some(u64::from_le_bytes(*head))
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl WireMessage for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                // Casting through u64 sign-extends and the cast back
                // truncates, so negative values round-trip.
                out.extend_from_slice(&(*self as u64).to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                Some(take_u64(buf)? as $t)
            }
        }
    )*};
}
wire_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl WireMessage for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(f32::from_bits(take_u32(buf)?))
    }
}

impl WireMessage for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(take_u64(buf)?))
    }
}

impl WireMessage for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (b, rest) = buf.split_first()?;
        *buf = rest;
        match b {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl WireMessage for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl WireMessage for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = take_u32(buf)? as usize;
        let (head, rest) = buf.split_at_checked(len)?;
        let s = std::str::from_utf8(head).ok()?.to_string();
        *buf = rest;
        Some(s)
    }
}

impl<T: WireMessage> WireMessage for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = take_u32(buf)? as usize;
        // Cap the pre-allocation: a corrupt length must not OOM.
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

impl<A: WireMessage, B: WireMessage> WireMessage for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: WireMessage> WireMessage for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (b, rest) = buf.split_first()?;
        *buf = rest;
        match b {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

pub(crate) const FRAME_MSG: u8 = 0;
pub(crate) const FRAME_RESULT: u8 = 1;
pub(crate) const FRAME_STATS: u8 = 2;

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_body(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u32(r)? as usize;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Build the child→parent `MSG` frame for one message.
pub(crate) fn msg_frame(dst: usize, tag: u32, modeled: u64, body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(21 + body.len());
    frame.push(FRAME_MSG);
    frame.extend_from_slice(&(dst as u32).to_le_bytes());
    frame.extend_from_slice(&tag.to_le_bytes());
    frame.extend_from_slice(&modeled.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// Build the parent→child / peer→peer frame for one message.
pub(crate) fn down_frame(src: usize, tag: u32, body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(12 + body.len());
    frame.extend_from_slice(&(src as u32).to_le_bytes());
    frame.extend_from_slice(&tag.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// Build the child→parent `STATS` frame a mesh child sends before its
/// result, carrying the traffic its own [`Traffic`] counted.
pub(crate) fn stats_frame(stats: TrafficStats) -> Vec<u8> {
    let mut frame = Vec::with_capacity(17);
    frame.push(FRAME_STATS);
    frame.extend_from_slice(&stats.messages.to_le_bytes());
    frame.extend_from_slice(&stats.bytes.to_le_bytes());
    frame
}

fn peek_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("bounds checked"))
}

fn peek_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("bounds checked"))
}

/// One child→parent frame, parsed out of an event-loop read buffer.
pub(crate) enum ChildFrame {
    /// A data frame to forward (star) or reject (mesh control plane).
    Msg {
        /// Destination rank.
        dst: usize,
        /// Envelope tag.
        tag: u32,
        /// Modeled (α–β) size from the sender.
        modeled: u64,
        /// Encoded payload.
        body: Vec<u8>,
    },
    /// The child's result payload (clean finish).
    Result(Vec<u8>),
    /// A mesh child's self-counted traffic totals.
    Stats(TrafficStats),
}

/// Parse one child→parent frame from the front of `buf`.
/// `Ok(Some((consumed, frame)))` on a complete frame, `Ok(None)` if
/// more bytes are needed, `Err(kind)` on an unknown kind byte.
pub(crate) fn parse_child_frame(buf: &[u8]) -> Result<Option<(usize, ChildFrame)>, u8> {
    let Some(&kind) = buf.first() else {
        return Ok(None);
    };
    match kind {
        FRAME_MSG => {
            if buf.len() < 21 {
                return Ok(None);
            }
            let len = peek_u32(buf, 17) as usize;
            if buf.len() < 21 + len {
                return Ok(None);
            }
            Ok(Some((
                21 + len,
                ChildFrame::Msg {
                    dst: peek_u32(buf, 1) as usize,
                    tag: peek_u32(buf, 5),
                    modeled: peek_u64(buf, 9),
                    body: buf[21..21 + len].to_vec(),
                },
            )))
        }
        FRAME_RESULT => {
            if buf.len() < 5 {
                return Ok(None);
            }
            let len = peek_u32(buf, 1) as usize;
            if buf.len() < 5 + len {
                return Ok(None);
            }
            Ok(Some((
                5 + len,
                ChildFrame::Result(buf[5..5 + len].to_vec()),
            )))
        }
        FRAME_STATS => {
            if buf.len() < 17 {
                return Ok(None);
            }
            Ok(Some((
                17,
                ChildFrame::Stats(TrafficStats {
                    messages: peek_u64(buf, 1),
                    bytes: peek_u64(buf, 9),
                }),
            )))
        }
        k => Err(k),
    }
}

/// Parse one kind-less `src:u32 tag:u32 len:u32 payload` frame (the
/// parent→child and peer↔peer grammar) from the front of `buf`;
/// `None` if incomplete. Returns `(consumed, src, tag, body)`.
pub(crate) fn parse_plain_frame(buf: &[u8]) -> Option<(usize, usize, u32, Vec<u8>)> {
    if buf.len() < 12 {
        return None;
    }
    let len = peek_u32(buf, 8) as usize;
    if buf.len() < 12 + len {
        return None;
    }
    Some((
        12 + len,
        peek_u32(buf, 0) as usize,
        peek_u32(buf, 4),
        buf[12..12 + len].to_vec(),
    ))
}

// ---------------------------------------------------------------------
// WireTransport: a child rank's endpoint
// ---------------------------------------------------------------------

/// Which wire a child↔child message rides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireTopology {
    /// Every message goes child→parent→child: two hops, but the only
    /// sockets in the world are the `p` parent connections.
    Star,
    /// Children hold a direct connection per pair: one hop for data,
    /// with the parent connection kept for control traffic only.
    #[default]
    Mesh,
}

impl WireTopology {
    fn env_value(self) -> &'static str {
        match self {
            WireTopology::Star => "star",
            WireTopology::Mesh => "mesh",
        }
    }
}

/// How long a mesh sender waits for a lower-rank peer's inbound dial
/// before declaring the pair dead.
const PEER_DIAL_WAIT: Duration = Duration::from_secs(30);

/// Poller token for a mesh child's parent connection.
const TOK_PARENT: usize = usize::MAX - 1;
/// Poller token for a mesh child's peer listener.
const TOK_LISTENER: usize = usize::MAX - 2;

/// One peer's slot in a mesh endpoint.
enum PeerSlot {
    /// This rank itself (self-sends short-circuit to the ready queue).
    Me,
    /// Never a peer: rank 0 of a hub world is the parent connection.
    Absent,
    /// A lower rank that has not dialed us yet.
    Pending,
    /// A live connection.
    Up(Conn),
    /// Hung up, reset, failed to dial, or dead at bootstrap. Sending
    /// here is `Err(PeerClosed)`; anything mid-flight was lost.
    Dead,
}

/// The mesh endpoint's single-threaded engine: every connection this
/// rank owns (parent + one per peer + the accept listener) on one
/// [`Poller`], with decoded-order delivery through `ready`.
struct Mesh {
    me: usize,
    /// World size (for a hub world this counts the hub as rank 0).
    world: usize,
    /// Hub world: rank 0 is the parent connection, not a peer.
    hub: bool,
    parent: Conn,
    /// Set once the parent connection fails; sticky and fatal to
    /// `try_recv` once `ready` drains.
    parent_err: Option<TransportError>,
    listener: TcpListener,
    poller: Poller,
    peers: Vec<PeerSlot>,
    /// Frames received and not yet consumed: `(src, tag, body)`.
    ready: VecDeque<(usize, u32, Vec<u8>)>,
    scratch: Vec<Event>,
}

impl Mesh {
    /// One readiness sweep: flush every queued write, wait up to
    /// `timeout` for events, service them. `Err` only if the poll
    /// syscall itself fails.
    fn sweep(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.flush_conns();
        let mut events = std::mem::take(&mut self.scratch);
        self.poller
            .poll(&mut events, timeout)
            .map_err(|_| TransportError::PeerClosed)?;
        for ev in events.iter().copied() {
            match ev.token {
                TOK_LISTENER => self.accept_peers(),
                TOK_PARENT => self.service_parent(ev),
                r => self.service_peer(r, ev),
            }
        }
        events.clear();
        self.scratch = events;
        Ok(())
    }

    fn flush_conns(&mut self) {
        if self.parent_err.is_none() && self.parent.wants_write() && self.parent.flush().is_err() {
            self.fail_parent();
        }
        self.update_parent_interest();
        for r in 0..self.peers.len() {
            let died = match &mut self.peers[r] {
                PeerSlot::Up(c) => c.wants_write() && c.flush().is_err(),
                _ => false,
            };
            if died {
                self.kill_peer(r);
            } else {
                self.update_peer_interest(r);
            }
        }
    }

    fn fail_parent(&mut self) {
        if self.parent_err.is_none() {
            self.parent_err = Some(TransportError::PeerClosed);
            self.poller.deregister(TOK_PARENT);
        }
    }

    fn kill_peer(&mut self, r: usize) {
        self.poller.deregister(r);
        self.peers[r] = PeerSlot::Dead;
    }

    fn update_parent_interest(&mut self) {
        if self.parent_err.is_none() {
            let want = if self.parent.wants_write() {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            self.poller.reregister(TOK_PARENT, want);
        }
    }

    fn update_peer_interest(&mut self, r: usize) {
        if let PeerSlot::Up(c) = &self.peers[r] {
            let want = if c.wants_write() {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            self.poller.reregister(r, want);
        }
    }

    fn service_parent(&mut self, ev: Event) {
        if self.parent_err.is_some() {
            return;
        }
        if ev.writable && self.parent.flush().is_err() {
            self.fail_parent();
            return;
        }
        if ev.readable {
            if self.parent.read_ready().is_err() {
                self.fail_parent();
                return;
            }
            while let Some((n, src, tag, body)) = parse_plain_frame(self.parent.buffered()) {
                self.parent.consume(n);
                self.ready.push_back((src, tag, body));
            }
            if self.parent.is_eof() {
                // A torn trailing frame means the parent died mid-write.
                self.parent_err = Some(if self.parent.buffered().is_empty() {
                    TransportError::PeerClosed
                } else {
                    TransportError::Truncated
                });
                self.poller.deregister(TOK_PARENT);
            }
        }
        self.update_parent_interest();
    }

    fn service_peer(&mut self, r: usize, ev: Event) {
        let died = match &mut self.peers[r] {
            PeerSlot::Up(c) => {
                let mut dead = ev.writable && c.flush().is_err();
                if !dead && ev.readable {
                    if c.read_ready().is_err() {
                        dead = true;
                    } else {
                        while let Some((n, src, tag, body)) = parse_plain_frame(c.buffered()) {
                            c.consume(n);
                            debug_assert_eq!(src, r, "peer frame with mismatched src");
                            self.ready.push_back((r, tag, body));
                        }
                        // Peer death — clean or torn mid-frame (SIGKILL
                        // during a write) — is tolerated silently: the
                        // world's failure story belongs to the parent
                        // and the layers above (heartbeats, Down
                        // events), not to every pairwise socket.
                        dead = c.is_eof();
                    }
                }
                dead
            }
            _ => false,
        };
        if died {
            self.kill_peer(r);
        } else {
            self.update_peer_interest(r);
        }
    }

    /// Accept inbound dials from lower ranks (lazily, whenever the
    /// listener polls readable — a dead lower rank therefore never
    /// blocks anyone).
    fn accept_peers(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((s, _)) => {
                    let Some((rank, conn)) = greet_peer(s, self.world) else {
                        continue;
                    };
                    if matches!(self.peers[rank], PeerSlot::Pending) {
                        self.poller.register(conn.fd(), rank, Interest::READABLE);
                        self.peers[rank] = PeerSlot::Up(conn);
                    }
                    // Any other state: duplicate or stale dial — drop it.
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn try_send(
        &mut self,
        dst: usize,
        tag: u32,
        modeled: u64,
        body: &[u8],
    ) -> Result<(), TransportError> {
        if dst == self.me {
            self.ready.push_back((dst, tag, body.to_vec()));
            return Ok(());
        }
        if self.hub && dst == 0 {
            // Control-plane send to the hub process itself.
            if self.parent_err.is_some() {
                return Err(TransportError::PeerClosed);
            }
            self.parent.queue(&msg_frame(0, tag, modeled, body));
            if self.parent.flush().is_err() {
                self.fail_parent();
                return Err(TransportError::PeerClosed);
            }
            self.update_parent_interest();
            return Ok(());
        }
        let deadline = Instant::now() + PEER_DIAL_WAIT;
        loop {
            match &mut self.peers[dst] {
                PeerSlot::Up(c) => {
                    c.queue(&down_frame(self.me, tag, body));
                    if c.flush().is_err() {
                        self.kill_peer(dst);
                        return Err(TransportError::PeerClosed);
                    }
                    self.update_peer_interest(dst);
                    return Ok(());
                }
                PeerSlot::Dead => return Err(TransportError::PeerClosed),
                PeerSlot::Pending => {
                    // The lower rank has not dialed us yet; keep
                    // servicing the loop (its dial lands through
                    // accept_peers) with a bounded patience.
                    if self.parent_err.is_some() || Instant::now() > deadline {
                        self.kill_peer(dst);
                        return Err(TransportError::PeerClosed);
                    }
                    self.sweep(Some(Duration::from_millis(20)))?;
                }
                PeerSlot::Me | PeerSlot::Absent => {
                    panic!("mesh send to non-peer rank {dst}")
                }
            }
        }
    }

    fn try_recv(&mut self) -> Result<(usize, u32, Vec<u8>), TransportError> {
        loop {
            if let Some(hit) = self.ready.pop_front() {
                return Ok(hit);
            }
            if let Some(err) = self.parent_err {
                return Err(err);
            }
            self.sweep(None)?;
        }
    }

    /// Pump until every queued outbound byte has left (or its peer
    /// died), bounded by `limit`.
    fn flush_pending(&mut self, limit: Duration) {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            let waiting = (self.parent_err.is_none() && self.parent.wants_write())
                || self
                    .peers
                    .iter()
                    .any(|p| matches!(p, PeerSlot::Up(c) if c.wants_write()));
            if !waiting {
                return;
            }
            if self.sweep(Some(Duration::from_millis(20))).is_err() {
                return;
            }
        }
    }

    /// Collect everything in flight: sweep with a short grace window
    /// until a full window passes with no new frames, then drain
    /// `ready`. The grace absorbs bytes a peer flushed just before we
    /// were told to drain but that the kernel has not delivered yet.
    fn drain_pending(&mut self) -> Vec<(usize, u32, Vec<u8>)> {
        loop {
            let before = self.ready.len();
            if self.sweep(Some(Duration::from_millis(10))).is_err() {
                break;
            }
            if self.ready.len() == before {
                break;
            }
        }
        self.ready.drain(..).collect()
    }
}

/// Complete an inbound peer handshake: read the dialer's rank hello
/// (briefly blocking, bounded) and wrap the stream. `None` drops the
/// connection (garbage hello or a peer that died mid-dial).
fn greet_peer(s: TcpStream, world: usize) -> Option<(usize, Conn)> {
    s.set_nonblocking(false).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let rank = read_u32(&mut (&s)).ok()? as usize;
    if rank >= world {
        return None;
    }
    s.set_read_timeout(None).ok();
    Some((rank, Conn::new(s).ok()?))
}

/// A child rank's endpoint.
///
/// * **Star**: one TCP connection to the parent router; `send` frames
///   and writes, `recv` blocks reading the next downward frame. Each
///   direction is guarded by its own mutex — uncontended in practice,
///   since a rank is single-threaded.
/// * **Mesh**: a [`Mesh`] engine — peer-direct connections plus the
///   parent control plane — behind one mutex.
pub struct WireTransport<M> {
    inner: Endpoint,
    _msg: PhantomData<fn() -> M>,
}

enum Endpoint {
    Star {
        reader: Mutex<BufReader<TcpStream>>,
        writer: Mutex<TcpStream>,
    },
    Mesh(Mutex<Mesh>),
}

impl<M: WireMessage> WireTransport<M> {
    pub(crate) fn new(stream: &TcpStream) -> io::Result<WireTransport<M>> {
        Ok(WireTransport {
            inner: Endpoint::Star {
                reader: Mutex::new(BufReader::new(stream.try_clone()?)),
                writer: Mutex::new(stream.try_clone()?),
            },
            _msg: PhantomData,
        })
    }

    /// Connect a **star** endpoint to a router (a [`WireWorld`] parent
    /// or a [`crate::hub::WireHub`]) listening at `addr` and introduce
    /// this endpoint as `rank` with the hello frame. Topology-aware
    /// children should prefer [`WireTransport::connect_env`].
    pub fn connect(addr: &str, rank: usize) -> io::Result<WireTransport<M>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        (&stream).write_all(&(rank as u32).to_le_bytes())?;
        WireTransport::new(&stream)
    }

    /// Connect the endpoint this child's environment asks for: star or
    /// mesh, world or hub. Custom child entry points (e.g. `db::serve`
    /// shards) pair this with [`take_child_env`].
    pub fn connect_env(env: &ChildEnv) -> io::Result<WireTransport<M>> {
        match env.topology {
            WireTopology::Star => WireTransport::connect(&env.addr, env.rank),
            WireTopology::Mesh => WireTransport::connect_mesh(env),
        }
    }

    /// Mesh bootstrap: hello + listener address up to the parent, read
    /// the rank→address table back, dial every higher-ranked live
    /// peer; lower ranks dial us (accepted lazily by the event loop).
    fn connect_mesh(env: &ChildEnv) -> io::Result<WireTransport<M>> {
        let me = env.rank;
        let stream = TcpStream::connect(&env.addr)?;
        stream.set_nodelay(true).ok();
        (&stream).write_all(&(me as u32).to_le_bytes())?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let my_addr = listener.local_addr()?.to_string();
        (&stream).write_all(&(my_addr.len() as u32).to_le_bytes())?;
        (&stream).write_all(my_addr.as_bytes())?;

        // Table: count, then count length-prefixed addresses ("" =
        // absent/dead — or the hub itself at rank 0).
        let count = read_u32(&mut (&stream))? as usize;
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let len = read_u32(&mut (&stream))? as usize;
            let mut b = vec![0u8; len];
            (&stream).read_exact(&mut b)?;
            table.push(
                String::from_utf8(b).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            );
        }
        assert_eq!(count, env.procs, "mesh table size != world size");

        listener.set_nonblocking(true)?;
        let mut poller = Poller::new();
        poller.register(listener.as_raw_fd(), TOK_LISTENER, Interest::READABLE);
        let mut peers = Vec::with_capacity(count);
        for (rank, addr) in table.iter().enumerate() {
            let slot = if rank == me {
                PeerSlot::Me
            } else if rank == 0 && env.hub {
                PeerSlot::Absent
            } else if addr.is_empty() {
                PeerSlot::Dead
            } else if rank > me {
                // Dial higher ranks; their listener predates the table.
                match TcpStream::connect(addr) {
                    Ok(ps) => {
                        ps.set_nodelay(true).ok();
                        if (&ps).write_all(&(me as u32).to_le_bytes()).is_err() {
                            PeerSlot::Dead
                        } else {
                            let conn = Conn::new(ps)?;
                            poller.register(conn.fd(), rank, Interest::READABLE);
                            PeerSlot::Up(conn)
                        }
                    }
                    Err(_) => PeerSlot::Dead,
                }
            } else {
                PeerSlot::Pending
            };
            peers.push(slot);
        }
        let parent = Conn::new(stream)?;
        poller.register(parent.fd(), TOK_PARENT, Interest::READABLE);
        Ok(WireTransport {
            inner: Endpoint::Mesh(Mutex::new(Mesh {
                me,
                world: count,
                hub: env.hub,
                parent,
                parent_err: None,
                listener,
                poller,
                peers,
                ready: VecDeque::new(),
                scratch: Vec::new(),
            })),
            _msg: PhantomData,
        })
    }

    fn mesh(&self) -> Option<std::sync::MutexGuard<'_, Mesh>> {
        match &self.inner {
            Endpoint::Mesh(m) => Some(m.lock().expect("wire mesh poisoned")),
            Endpoint::Star { .. } => None,
        }
    }

    /// Pump the endpoint until every queued outbound frame has hit the
    /// kernel (or its peer died). A star endpoint writes blockingly and
    /// has nothing pending; a mesh endpoint drains its write queues.
    /// Call before a drain barrier (e.g. reporting "done" in a
    /// stop/exit protocol) so in-flight peer traffic is really out.
    pub fn flush_pending(&self) {
        if let Some(mut m) = self.mesh() {
            m.flush_pending(Duration::from_secs(10));
        }
    }

    /// Collect every message already in flight to this endpoint without
    /// blocking (undecodable payloads are dropped). Star endpoints
    /// return nothing — the parent serializes their traffic, so there
    /// is no cross-socket in-flight window to drain.
    pub fn drain_pending(&self) -> Vec<Envelope<M>> {
        match self.mesh() {
            None => Vec::new(),
            Some(mut m) => m
                .drain_pending()
                .into_iter()
                .filter_map(|(src, tag, body)| {
                    M::from_bytes(&body).map(|msg| Envelope { src, tag, msg })
                })
                .collect(),
        }
    }

    /// Deliver the result frame (plus, on mesh, the self-counted
    /// traffic stats) to the parent and drain every write queue. The
    /// last thing a wire child does before exiting.
    pub(crate) fn finish(&self, result_body: &[u8], stats: TrafficStats) {
        let mut frame = Vec::with_capacity(5 + result_body.len());
        frame.push(FRAME_RESULT);
        frame.extend_from_slice(&(result_body.len() as u32).to_le_bytes());
        frame.extend_from_slice(result_body);
        match &self.inner {
            Endpoint::Star { writer, .. } => {
                writer
                    .lock()
                    .expect("wire writer poisoned")
                    .write_all(&frame)
                    .expect("wire child: result");
            }
            Endpoint::Mesh(m) => {
                let mut m = m.lock().expect("wire mesh poisoned");
                m.parent.queue(&stats_frame(stats));
                m.parent.queue(&frame);
                m.update_parent_interest();
                m.flush_pending(Duration::from_secs(60));
                assert!(
                    m.parent_err.is_some() || !m.parent.wants_write(),
                    "wire child: result undeliverable"
                );
            }
        }
    }
}

impl<M: WireMessage> Transport<M> for WireTransport<M> {
    // The infallible rank API keeps its panic-on-failure contract — a
    // rank has no sensible way to continue without its world — but the
    // panic now carries the typed [`TransportError`] instead of
    // unconditionally blaming the parent router, and both paths go
    // through the fallible endpoints so failure-aware layers
    // (db::serve) can observe a death instead.
    fn send(&self, src: usize, dst: usize, tag: u32, msg: M) {
        if let Err(e) = self.try_send(src, dst, tag, msg) {
            panic!("wire transport: send from rank {src} to rank {dst}: {e}");
        }
    }

    fn recv(&self) -> Envelope<M> {
        match self.try_recv() {
            Ok(env) => env,
            Err(TransportError::PeerClosed) => panic!("wire transport: peer closed mid-recv"),
            Err(TransportError::Truncated) => panic!("wire transport: truncated frame"),
            Err(TransportError::Undecodable) => panic!("wire transport: undecodable payload"),
        }
    }

    fn try_send(&self, _src: usize, dst: usize, tag: u32, msg: M) -> Result<(), TransportError> {
        match &self.inner {
            Endpoint::Star { writer, .. } => {
                let frame = msg_frame(dst, tag, msg.size_bytes(), &msg.to_bytes());
                writer
                    .lock()
                    .expect("wire writer poisoned")
                    .write_all(&frame)
                    .map_err(|_| TransportError::PeerClosed)
            }
            Endpoint::Mesh(m) => m.lock().expect("wire mesh poisoned").try_send(
                dst,
                tag,
                msg.size_bytes(),
                &msg.to_bytes(),
            ),
        }
    }

    fn try_recv(&self) -> Result<Envelope<M>, TransportError> {
        match &self.inner {
            Endpoint::Star { reader, .. } => {
                let mut r = reader.lock().expect("wire reader poisoned");
                // EOF on the first header field is a frame boundary:
                // the peer hung up cleanly. EOF later is a torn frame.
                let src = read_u32(&mut *r).map_err(|_| TransportError::PeerClosed)? as usize;
                let tag = read_u32(&mut *r).map_err(|_| TransportError::Truncated)?;
                let body = read_body(&mut *r).map_err(|_| TransportError::Truncated)?;
                let msg = M::from_bytes(&body).ok_or(TransportError::Undecodable)?;
                Ok(Envelope { src, tag, msg })
            }
            Endpoint::Mesh(m) => {
                let (src, tag, body) = m.lock().expect("wire mesh poisoned").try_recv()?;
                let msg = M::from_bytes(&body).ok_or(TransportError::Undecodable)?;
                Ok(Envelope { src, tag, msg })
            }
        }
    }
}

// ---------------------------------------------------------------------
// WireWorld: parent router + self-exec child launcher
// ---------------------------------------------------------------------

/// Env var carrying the world id; set in child processes. Entry points
/// that host more than one wire world dispatch on
/// [`WireWorld::child_world_id`] before calling [`WireWorld::run`].
pub const ENV_WORLD: &str = "PDC_WIRE_WORLD";
pub(crate) const ENV_RANK: &str = "PDC_WIRE_RANK";
pub(crate) const ENV_PROCS: &str = "PDC_WIRE_PROCS";
pub(crate) const ENV_ADDR: &str = "PDC_WIRE_ADDR";
pub(crate) const ENV_TRACE_DIR: &str = "PDC_WIRE_TRACE_DIR";
pub(crate) const ENV_TOPO: &str = "PDC_WIRE_TOPO";
pub(crate) const ENV_HUB: &str = "PDC_WIRE_HUB";

/// What a spawned wire-child process learns from its environment: who
/// it is, how big the world is, where the router listens, and whether
/// to trace. See [`take_child_env`].
#[derive(Debug, Clone)]
pub struct ChildEnv {
    /// The world id this child was spawned for.
    pub world_id: String,
    /// This process's rank.
    pub rank: usize,
    /// Total rank count in the world (for a hub world this includes the
    /// hub process itself as rank 0).
    pub procs: usize,
    /// Loopback address of the parent router.
    pub addr: String,
    /// Trace snapshot directory, when the world is traced.
    pub trace_dir: Option<PathBuf>,
    /// Which topology this world runs.
    pub topology: WireTopology,
    /// Whether the parent is a participating [`crate::hub::WireHub`]
    /// (rank 0 of the world) rather than a pure router.
    pub hub: bool,
}

/// In a wire-child process, read **and clear** the child env markers —
/// clearing ensures nothing the child runs later mistakes itself for a
/// child of some nested world. Returns `None` in an ordinary process.
/// Custom child entry points (e.g. `db::serve` shards) pair this with
/// [`WireTransport::connect`]; [`WireWorld::run`] uses it internally.
pub fn take_child_env() -> Option<ChildEnv> {
    let world_id = std::env::var(ENV_WORLD).ok()?;
    let rank = std::env::var(ENV_RANK)
        .expect("wire child without rank")
        .parse()
        .expect("bad wire rank");
    let procs = std::env::var(ENV_PROCS)
        .expect("wire child without procs")
        .parse()
        .expect("bad wire procs");
    let addr = std::env::var(ENV_ADDR).expect("wire child without addr");
    let trace_dir = std::env::var(ENV_TRACE_DIR).ok().map(PathBuf::from);
    // Spawners that predate the topology marker mean the star protocol.
    let topology = match std::env::var(ENV_TOPO).as_deref() {
        Ok("mesh") => WireTopology::Mesh,
        _ => WireTopology::Star,
    };
    let hub = std::env::var(ENV_HUB).is_ok();
    for k in [
        ENV_WORLD,
        ENV_RANK,
        ENV_PROCS,
        ENV_ADDR,
        ENV_TRACE_DIR,
        ENV_TOPO,
        ENV_HUB,
    ] {
        std::env::remove_var(k);
    }
    Some(ChildEnv {
        world_id,
        rank,
        procs,
        addr,
        trace_dir,
        topology,
        hub,
    })
}

/// Spawn one rank process: re-execute the current binary with
/// `opts.child_args` and the child env markers set. `procs` is the
/// world size as the child should see it (a hub world passes shard
/// count + 1 to include itself).
pub(crate) fn spawn_rank_process(
    opts: &WireOptions,
    rank: usize,
    procs: usize,
    addr: &str,
    hub: bool,
) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.args(&opts.child_args)
        .env(ENV_WORLD, &opts.world_id)
        .env(ENV_RANK, rank.to_string())
        .env(ENV_PROCS, procs.to_string())
        .env(ENV_ADDR, addr)
        .env(ENV_TOPO, opts.topology.env_value())
        .stdout(Stdio::null());
    if hub {
        cmd.env(ENV_HUB, "1");
    }
    if let Some(dir) = &opts.trace_dir {
        cmd.env(ENV_TRACE_DIR, dir);
    }
    cmd.spawn()
}

/// How to launch a wire world: how many ranks, how a child process
/// finds its way back to the same [`WireWorld::run`] call, and whether
/// to trace.
#[derive(Debug, Clone)]
pub struct WireOptions {
    /// Number of rank processes.
    pub procs: usize,
    /// Identifies this world; a child only enters a `run` call whose
    /// `world_id` matches its `PDC_WIRE_WORLD`.
    pub world_id: String,
    /// Arguments passed to the re-executed current binary so it reaches
    /// the same `WireWorld::run` call (e.g. a libtest `--exact` filter,
    /// or a subcommand flag).
    pub child_args: Vec<String>,
    /// When set, each rank writes a `pdc-trace/2` snapshot here and the
    /// parent merges them into a `pdc-trace/3` [`MergedTrace`].
    pub trace_dir: Option<PathBuf>,
    /// Star (two-hop via the parent) or the default full mesh
    /// (peer-direct data, parent as control plane).
    pub topology: WireTopology,
}

impl WireOptions {
    /// Options for a world whose entry point is the `#[test]` function
    /// at libtest path `test_path` (module path without the crate name,
    /// e.g. `"transport::tests::wire_ping_pong"`). The test binary is
    /// re-executed with `--exact` so the child runs only that test.
    pub fn for_test(procs: usize, test_path: &str) -> WireOptions {
        WireOptions {
            procs,
            world_id: test_path.to_string(),
            child_args: vec![
                test_path.to_string(),
                "--exact".to_string(),
                "--nocapture".to_string(),
            ],
            trace_dir: None,
            topology: WireTopology::default(),
        }
    }

    /// Options for a world reached by re-running the current binary
    /// with `args` (e.g. `["--shard"]` for a subcommand entry point).
    pub fn for_args(procs: usize, world_id: &str, args: &[&str]) -> WireOptions {
        WireOptions {
            procs,
            world_id: world_id.to_string(),
            child_args: args.iter().map(|a| a.to_string()).collect(),
            trace_dir: None,
            topology: WireTopology::default(),
        }
    }

    /// Trace every rank and merge the snapshots (written under `dir`).
    pub fn traced(mut self, dir: impl Into<PathBuf>) -> WireOptions {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Run on the two-hop star topology (the parent forwards all data).
    pub fn star(mut self) -> WireOptions {
        self.topology = WireTopology::Star;
        self
    }

    /// Run on the full-mesh topology (the default).
    pub fn mesh(mut self) -> WireOptions {
        self.topology = WireTopology::Mesh;
        self
    }
}

/// The outcome of a multi-process world run, as seen by the parent.
pub struct WireRun<R> {
    /// Each rank's return value, in rank order.
    pub results: Vec<R>,
    /// World traffic — the same numbers a `LocalTransport` world
    /// reports. On the star topology the parent counts `modeled` frame
    /// fields as it forwards; on the mesh the parent never sees data
    /// frames, so children report their own totals via `STATS` frames.
    pub stats: TrafficStats,
    /// Data frames the parent relayed. This is the hop-count witness:
    /// star forwards every message (`forwarded == stats.messages`, two
    /// hops each), mesh forwards none (`forwarded == 0`, one hop).
    pub forwarded: u64,
    /// Merged per-process traces, when [`WireOptions::trace_dir`] was
    /// set.
    pub trace: Option<MergedTrace>,
}

/// A message-passing world whose ranks are separate OS processes.
///
/// [`WireWorld::run`] is called from both sides of a `fork`-like
/// boundary: the parent process spawns `procs` copies of the current
/// binary and routes their traffic; each child re-executes the same
/// entry point, where `run` detects the child env vars and runs `f` as
/// one rank before exiting the process. One entry point should host one
/// wire world; if it must host several, dispatch on
/// [`WireWorld::child_world_id`] first.
pub struct WireWorld;

impl WireWorld {
    /// In a child rank process, the world id this child belongs to;
    /// `None` in an ordinary (parent) process.
    pub fn child_world_id() -> Option<String> {
        std::env::var(ENV_WORLD).ok()
    }

    /// Run `f` as `opts.procs` rank processes; in the parent, returns
    /// every rank's result plus traffic stats (and the merged trace if
    /// tracing). In a child this runs `f` for one rank and then exits
    /// the process — it never returns.
    ///
    /// # Panics
    /// Panics if `opts.procs == 0`, if a child cannot be spawned or
    /// exits unsuccessfully, or if the world stalls (a child that never
    /// connects or never finishes trips a deadline rather than hanging
    /// CI forever).
    pub fn run<M, R, F>(opts: &WireOptions, f: F) -> WireRun<R>
    where
        M: WireMessage,
        R: WireMessage,
        F: FnOnce(&mut Rank<M, WireTransport<M>>) -> R,
    {
        match Self::child_world_id() {
            Some(id) if id == opts.world_id => Self::run_child(f),
            Some(id) => panic!(
                "wire child for world {id:?} reached WireWorld::run for {:?}; \
                 dispatch on WireWorld::child_world_id() before calling run",
                opts.world_id
            ),
            None => Self::run_parent(opts),
        }
    }

    fn run_child<M, R, F>(f: F) -> !
    where
        M: WireMessage,
        R: WireMessage,
        F: FnOnce(&mut Rank<M, WireTransport<M>>) -> R,
    {
        let env = take_child_env().expect("wire child without env markers");
        let (rank_id, procs, trace_dir) = (env.rank, env.procs, env.trace_dir.clone());

        let transport: WireTransport<M> =
            WireTransport::connect_env(&env).expect("wire child: connect to parent");
        let session = trace_dir.as_ref().map(|_| TraceSession::new());
        if let Some(s) = &session {
            // Rank-local pdc-sync locking records under this rank's id,
            // exactly as a traced thread-rank does.
            trace::install_sync_trace(s.thread(rank_id as u32));
        }
        let traffic = Arc::new(Traffic::default());
        let mut rank = Rank::new(
            rank_id,
            procs,
            transport,
            Arc::clone(&traffic),
            session.as_ref(),
        );
        let result = f(&mut rank);
        let transport = rank.into_transport();
        trace::clear_sync_trace();

        if let (Some(s), Some(dir)) = (&session, &trace_dir) {
            std::fs::create_dir_all(dir).expect("wire child: create trace dir");
            let meta = [("process", rank_id.to_string())];
            std::fs::write(
                dir.join(format!("rank{rank_id}.trace.json")),
                s.to_json_with_meta(&meta),
            )
            .expect("wire child: write trace snapshot");
        }

        // Result (plus mesh stats), then drain every write queue so no
        // peer frame queued by `f` is lost to the process exit.
        transport.finish(&result.to_bytes(), traffic.stats());
        std::process::exit(0);
    }

    fn run_parent<R: WireMessage>(opts: &WireOptions) -> WireRun<R> {
        let p = opts.procs;
        assert!(p > 0, "world needs at least one rank");
        let mesh = opts.topology == WireTopology::Mesh;
        let listener = TcpListener::bind("127.0.0.1:0").expect("wire parent: bind loopback");
        let addr = listener.local_addr().expect("wire parent: local addr");

        let mut children: Vec<Child> = (0..p)
            .map(|i| {
                spawn_rank_process(opts, i, p, &addr.to_string(), false)
                    .expect("wire parent: spawn rank process")
            })
            .collect();

        // Strict bootstrap: a symmetric world tolerates no deaths, so
        // every slot comes back Some.
        let socks: Vec<TcpStream> =
            bootstrap_children(&listener, &mut children, 0, p, mesh, false, "wire parent")
                .into_iter()
                .map(|s| s.expect("strict bootstrap"))
                .collect();

        let routed = route_world(socks, mesh);

        for (i, c) in children.iter_mut().enumerate() {
            let status = c.wait().expect("wire parent: wait for rank");
            assert!(status.success(), "wire rank {i} exited with {status}");
        }

        let trace = opts.trace_dir.as_ref().map(|dir| {
            let parts = (0..p)
                .map(|i| {
                    let path = dir.join(format!("rank{i}.trace.json"));
                    let text = std::fs::read_to_string(&path)
                        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
                    merge::parse_trace(&text, i as u32)
                        .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
                })
                .collect();
            MergedTrace::merge(parts)
        });
        let results = routed
            .results
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                R::from_bytes(&b.unwrap_or_else(|| panic!("no result from rank {i}")))
                    .unwrap_or_else(|| panic!("undecodable result from rank {i}"))
            })
            .collect();
        WireRun {
            results,
            stats: routed.stats,
            forwarded: routed.forwarded,
            trace,
        }
    }
}

/// What [`route_world`] hands back to the parent.
struct Routed {
    results: Vec<Option<Vec<u8>>>,
    stats: TrafficStats,
    forwarded: u64,
}

/// The symmetric parent's event loop: all child connections on one
/// [`Poller`]. On the star topology this is the router — `MSG` frames
/// are re-framed with the verified source (a child cannot spoof `src`)
/// and queued to the destination, with userspace write queues absorbing
/// bursts exactly like the old per-child writer threads' unbounded
/// channels did. On the mesh it is a pure control plane: a data frame
/// arriving here is a routing bug and panics. Either way the loop ends
/// only when every result is in **and every write queue is empty** —
/// drain completion waits on the queues, so a rank exiting cannot strand
/// frames queued toward a slower peer.
fn route_world(socks: Vec<TcpStream>, mesh: bool) -> Routed {
    let p = socks.len();
    let mut poller = Poller::new();
    let mut conns: Vec<Option<Conn>> = socks
        .into_iter()
        .map(|s| Some(Conn::new(s).expect("wire parent: conn")))
        .collect();
    for (r, c) in conns.iter().enumerate() {
        poller.register(c.as_ref().expect("fresh conn").fd(), r, Interest::READABLE);
    }
    let mut results: Vec<Option<Vec<u8>>> = (0..p).map(|_| None).collect();
    let mut done = 0;
    let fwd_traffic = Traffic::default(); // star: counted while forwarding
    let mut reported = TrafficStats {
        messages: 0,
        bytes: 0,
    }; // mesh: summed from STATS frames
    let mut forwarded = 0u64;
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut events: Vec<Event> = Vec::new();
    let mut parsed: Vec<ChildFrame> = Vec::new();

    while done < p || conns.iter().flatten().any(Conn::wants_write) {
        assert!(
            Instant::now() < deadline,
            "wire world stalled waiting for rank results"
        );
        poller
            .poll(&mut events, Some(Duration::from_millis(100)))
            .expect("wire parent: poll");
        for ev in events.iter().copied() {
            let r = ev.token;
            if ev.writable {
                if let Some(c) = conns[r].as_mut() {
                    c.flush()
                        .unwrap_or_else(|e| panic!("wire: deliver to rank {r}: {e}"));
                    if !c.wants_write() {
                        poller.reregister(r, Interest::READABLE);
                    }
                }
            }
            if !ev.readable {
                continue;
            }
            let Some(c) = conns[r].as_mut() else { continue };
            c.read_ready()
                .unwrap_or_else(|e| panic!("wire: read from rank {r}: {e}"));
            // Parse first, dispatch second: forwarding may need a
            // mutable borrow of any destination conn, including r's own
            // (a star rank may send to itself).
            parsed.clear();
            loop {
                match parse_child_frame(c.buffered()) {
                    Ok(Some((n, frame))) => {
                        c.consume(n);
                        parsed.push(frame);
                    }
                    Ok(None) => break,
                    Err(k) => panic!("wire: unknown frame kind {k} from rank {r}"),
                }
            }
            for frame in parsed.drain(..) {
                match frame {
                    ChildFrame::Msg {
                        dst,
                        tag,
                        modeled,
                        body,
                    } => {
                        assert!(dst < p, "rank {r} sent to bad rank {dst}");
                        assert!(
                            !mesh,
                            "wire: data frame from rank {r} on the mesh control plane"
                        );
                        fwd_traffic.count(1, modeled);
                        forwarded += 1;
                        let frame = down_frame(r, tag, &body);
                        let dst_conn = conns[dst]
                            .as_mut()
                            .unwrap_or_else(|| panic!("wire: deliver to rank {dst}: peer exited"));
                        dst_conn.queue(&frame);
                        dst_conn
                            .flush()
                            .unwrap_or_else(|e| panic!("wire: deliver to rank {dst}: {e}"));
                        if dst_conn.wants_write() {
                            poller.reregister(dst, Interest::BOTH);
                        }
                    }
                    ChildFrame::Result(body) => {
                        assert!(results[r].is_none(), "duplicate result from rank {r}");
                        results[r] = Some(body);
                        done += 1;
                    }
                    ChildFrame::Stats(s) => {
                        reported.messages += s.messages;
                        reported.bytes += s.bytes;
                    }
                }
            }
            let hung_up = conns[r].as_ref().is_some_and(Conn::is_eof);
            if hung_up {
                let c = conns[r].as_ref().expect("checked above");
                assert!(
                    c.buffered().is_empty(),
                    "wire: torn trailing frame from rank {r}"
                );
                assert!(
                    results[r].is_some(),
                    "wire rank {r} hung up before its result"
                );
                assert!(
                    !c.wants_write(),
                    "wire: rank {r} exited with undelivered frames"
                );
                poller.deregister(r);
                conns[r] = None;
            }
        }
    }
    Routed {
        results,
        stats: if mesh { reported } else { fwd_traffic.stats() },
        forwarded,
    }
}

/// Shared parent/hub bootstrap: accept one hello per child (plus, on
/// mesh, its peer-listener address), then broadcast the rank→address
/// table. `base_rank` is the rank of `children[0]` (0 for a symmetric
/// world, 1 for a hub); `world` the full world size the table covers.
///
/// With `tolerant` set, a child that dies before or **during** its
/// handshake gets a `None` slot (its table entry stays empty, so peers
/// mark it dead instead of dialing) — the caller turns that into a
/// `Down` event. Without it, any death is a startup panic, same policy
/// as the historical accept loops.
pub(crate) fn bootstrap_children(
    listener: &TcpListener,
    children: &mut [Child],
    base_rank: usize,
    world: usize,
    mesh: bool,
    tolerant: bool,
    who: &str,
) -> Vec<Option<TcpStream>> {
    let p = children.len();
    listener
        .set_nonblocking(true)
        .unwrap_or_else(|e| panic!("{who}: nonblocking listener: {e}"));
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut socks: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
    let mut addrs: Vec<String> = vec![String::new(); p];
    let mut dead: Vec<bool> = vec![false; p];
    let mut settled = 0;
    while settled < p {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)
                    .unwrap_or_else(|e| panic!("{who}: blocking conn: {e}"));
                s.set_nodelay(true).ok();
                s.set_read_timeout(Some(Duration::from_secs(10))).ok();
                let Ok(hello) = read_u32(&mut (&s)) else {
                    // Died after connecting, before the hello: the
                    // try_wait sweep below will claim this child.
                    continue;
                };
                let r = hello as usize;
                assert!(
                    r >= base_rank && r < base_rank + p,
                    "{who}: hello from out-of-range rank {r}"
                );
                let i = r - base_rank;
                assert!(
                    socks[i].is_none() && !dead[i],
                    "{who}: duplicate hello from rank {r}"
                );
                if mesh {
                    match read_peer_addr(&s) {
                        Ok(a) => addrs[i] = a,
                        Err(e) => {
                            // Mid-handshake death (e.g. SIGKILL between
                            // hello and address).
                            if !tolerant {
                                panic!("{who}: rank {r} died mid-handshake: {e}");
                            }
                            dead[i] = true;
                            settled += 1;
                            continue;
                        }
                    }
                }
                s.set_read_timeout(None).ok();
                socks[i] = Some(s);
                settled += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                for (i, c) in children.iter_mut().enumerate() {
                    if socks[i].is_none() && !dead[i] {
                        if let Some(status) = c
                            .try_wait()
                            .unwrap_or_else(|e| panic!("{who}: try_wait: {e}"))
                        {
                            if !tolerant {
                                panic!(
                                    "{who}: rank {} exited ({status}) before connecting; \
                                     check that WireOptions::child_args re-enter this world",
                                    base_rank + i
                                );
                            }
                            dead[i] = true;
                            settled += 1;
                        }
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "{who}: ranks failed to connect within 60s"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("{who}: accept: {e}"),
        }
    }
    if mesh {
        let mut table = Vec::new();
        table.extend_from_slice(&(world as u32).to_le_bytes());
        for rank in 0..world {
            let a: &str = if rank >= base_rank && rank - base_rank < p {
                &addrs[rank - base_rank]
            } else {
                "" // the hub's own rank 0 slot
            };
            table.extend_from_slice(&(a.len() as u32).to_le_bytes());
            table.extend_from_slice(a.as_bytes());
        }
        for i in 0..p {
            let failed = match &socks[i] {
                Some(s) => (&mut &*s).write_all(&table).is_err(),
                None => false,
            };
            if failed {
                if !tolerant {
                    panic!(
                        "{who}: rank {} died receiving the mesh table",
                        base_rank + i
                    );
                }
                socks[i] = None;
                dead[i] = true;
            }
        }
    }
    socks
}

fn read_peer_addr(s: &TcpStream) -> io::Result<String> {
    let len = read_u32(&mut (&*s))? as usize;
    if len > 256 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized peer address",
        ));
    }
    let mut b = vec![0u8; len];
    (&*s).read_exact(&mut b)?;
    String::from_utf8(b).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireMessage + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).as_ref(), Some(&v), "roundtrip {v:?}");
        // Trailing garbage must be rejected by from_bytes.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(T::from_bytes(&longer).is_none() || bytes.is_empty());
    }

    #[test]
    fn wire_codec_roundtrips() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-1i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-0.125f64);
        roundtrip(true);
        roundtrip(());
        roundtrip(String::from("héllo wörld"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip((42usize, vec![-7i64]));
        roundtrip(Some(vec![(1u32, false), (2, true)]));
        roundtrip(Option::<u64>::None);
    }

    #[test]
    fn wire_codec_rejects_truncation() {
        let v = (String::from("abc"), vec![1u64, 2]);
        let bytes = v.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                <(String, Vec<u64>)>::from_bytes(&bytes[..cut]).is_none(),
                "accepted a {cut}-byte prefix"
            );
        }
    }

    /// Pair a `WireTransport` endpoint with an in-test "router" socket.
    fn loopback_pair() -> (WireTransport<u64>, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let t = WireTransport::<u64>::connect(&addr, 7).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let mut hello = [0u8; 4];
        (&server).read_exact(&mut hello).expect("hello");
        assert_eq!(u32::from_le_bytes(hello), 7);
        (t, server)
    }

    #[test]
    fn closed_peer_yields_error_not_panic() {
        let (t, server) = loopback_pair();
        drop(server);
        // recv: EOF at the frame boundary is a clean peer death.
        assert_eq!(t.try_recv().unwrap_err(), TransportError::PeerClosed);
        // send: the first writes may land in kernel buffers, but the
        // dead peer surfaces as an error within a bounded number of
        // sends — never as a panic.
        let mut saw_err = false;
        for _ in 0..1000 {
            if t.try_send(7, 0, 1, 99).is_err() {
                saw_err = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(saw_err, "send to a closed peer never errored");
    }

    #[test]
    fn truncated_frame_yields_error_not_panic() {
        let (t, server) = loopback_pair();
        // src + tag + a length prefix promising 8 bytes, then hang up
        // after delivering only 3.
        let mut frame = Vec::new();
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&5u32.to_le_bytes());
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&[1, 2, 3]);
        (&server).write_all(&frame).expect("partial frame");
        drop(server);
        assert_eq!(t.try_recv().unwrap_err(), TransportError::Truncated);
    }

    #[test]
    fn undecodable_payload_yields_error_not_panic() {
        let (t, server) = loopback_pair();
        // A complete frame whose 3-byte body cannot decode as u64.
        (&server)
            .write_all(&down_frame(0, 5, &[1, 2, 3]))
            .expect("bad frame");
        assert_eq!(t.try_recv().unwrap_err(), TransportError::Undecodable);
    }

    #[test]
    fn wire_ping_pong_two_processes() {
        let opts = WireOptions::for_test(2, "transport::tests::wire_ping_pong_two_processes");
        let run = WireWorld::run(&opts, |r: &mut Rank<u64, WireTransport<u64>>| {
            if r.id() == 0 {
                r.send(1, 0, 42);
                r.recv(1, 0)
            } else {
                let v = r.recv(0, 0);
                r.send(0, 0, v + 1);
                v
            }
        });
        assert_eq!(run.results, vec![43, 42]);
        assert_eq!(run.stats.messages, 2);
        assert_eq!(run.stats.bytes, 16, "modeled bytes, same as local");
        assert_eq!(run.forwarded, 0, "mesh data never crosses the parent");
        assert!(run.trace.is_none());
    }

    #[test]
    fn wire_star_topology_still_routes_through_the_parent() {
        // Regression pin for the legacy topology: identical results and
        // counts, but every data frame takes the two-hop path.
        let opts = WireOptions::for_test(
            2,
            "transport::tests::wire_star_topology_still_routes_through_the_parent",
        )
        .star();
        let run = WireWorld::run(&opts, |r: &mut Rank<u64, WireTransport<u64>>| {
            if r.id() == 0 {
                r.send(1, 0, 42);
                r.recv(1, 0)
            } else {
                let v = r.recv(0, 0);
                r.send(0, 0, v + 1);
                v
            }
        });
        assert_eq!(run.results, vec![43, 42]);
        assert_eq!(run.stats.messages, 2);
        assert_eq!(run.stats.bytes, 16);
        assert_eq!(
            run.forwarded, run.stats.messages,
            "star forwards every data frame through the parent"
        );
    }

    #[test]
    #[should_panic(expected = "wire transport: send from rank 7 to rank 0")]
    fn send_to_closed_peer_panics_with_context_not_expect() {
        // Satellite pin: the infallible Transport::send must surface a
        // dead router as a contextual panic routed through the typed
        // error path — not the old `expect("parent router hung up")`.
        let (t, server) = loopback_pair();
        drop(server);
        for _ in 0..2000 {
            t.send(7, 0, 1, 99);
            std::thread::sleep(Duration::from_millis(1));
        }
        unreachable!("send to a closed peer never panicked");
    }

    fn drain_world(opts: &WireOptions) {
        const K: u64 = 50;
        let run = WireWorld::run(opts, |r: &mut Rank<u64, WireTransport<u64>>| {
            if r.id() == 1 {
                // Fire a burst and exit immediately: every frame is
                // queued (or in flight) when this rank's process dies.
                for i in 0..K {
                    r.send(0, 3, i);
                }
                0
            } else {
                // Give the sender time to be long gone before reading.
                std::thread::sleep(Duration::from_millis(200));
                (0..K).map(|_| r.recv(1, 3)).sum()
            }
        });
        assert_eq!(
            run.results[0],
            (0..K).sum::<u64>(),
            "a queued frame was dropped"
        );
    }

    #[test]
    fn wire_drain_delivers_queued_frames_after_sender_exit() {
        // Satellite pin: shutdown may not race the write queues — every
        // frame queued before a rank exits must still be delivered, on
        // both topologies (the parent's queue on star, the child's own
        // peer queue flushed by `finish` on mesh).
        let path = "transport::tests::wire_drain_delivers_queued_frames_after_sender_exit";
        let star = WireOptions {
            world_id: format!("{path}#star"),
            ..WireOptions::for_test(2, path)
        }
        .star();
        let mesh = WireOptions {
            world_id: format!("{path}#mesh"),
            ..WireOptions::for_test(2, path)
        };
        if let Some(id) = WireWorld::child_world_id() {
            if id == star.world_id {
                drain_world(&star);
            }
            drain_world(&mesh);
        }
        drain_world(&star);
        drain_world(&mesh);
    }

    #[test]
    fn wire_tag_matching_and_recv_any_across_processes() {
        let opts = WireOptions::for_test(
            3,
            "transport::tests::wire_tag_matching_and_recv_any_across_processes",
        );
        let run = WireWorld::run(&opts, |r: &mut Rank<u64, WireTransport<u64>>| {
            match r.id() {
                0 => {
                    // Out-of-order tags from rank 1: matching must buffer.
                    let a = r.recv(1, 1);
                    let b = r.recv(1, 2);
                    assert_eq!((a, b), (100, 200));
                    let (src, v) = r.recv_any(9);
                    assert_eq!((src, v), (2, 900));
                    a + b + v
                }
                1 => {
                    r.send(0, 2, 200);
                    r.send(0, 1, 100);
                    0
                }
                _ => {
                    r.send(0, 9, 900);
                    0
                }
            }
        });
        assert_eq!(run.results, vec![1200, 0, 0]);
        assert_eq!(run.stats.messages, 3);
    }

    #[test]
    fn wire_world_runs_the_full_collective_suite() {
        // The acceptance bar for the seam: every collective in
        // crate::coll, unchanged, over ranks that are OS processes.
        use crate::coll;
        let p = 3;
        let opts = WireOptions::for_test(
            p,
            "transport::tests::wire_world_runs_the_full_collective_suite",
        );
        let run = WireWorld::run(&opts, |r: &mut Rank<Vec<i64>, WireTransport<Vec<i64>>>| {
            let p = r.size();
            let me = r.id() as i64;
            coll::barrier(r);

            let v = coll::broadcast(r, 0, (r.id() == 0).then(|| vec![7, 8]));
            assert_eq!(v, vec![7, 8]);

            let red = coll::reduce(r, 1, vec![me], |mut a, b| {
                a.extend(b);
                a
            });
            if r.id() == 1 {
                let mut got = red.expect("root result");
                got.sort_unstable();
                assert_eq!(got, vec![0, 1, 2]);
            } else {
                assert!(red.is_none());
            }

            let all = coll::allreduce(r, vec![me * 10], |mut a, b| {
                a.extend(b);
                a
            });
            assert_eq!(all.len(), p);

            let gathered = coll::gather(r, 0, vec![me, me]);
            if r.id() == 0 {
                assert_eq!(
                    gathered.expect("root"),
                    vec![vec![0, 0], vec![1, 1], vec![2, 2]]
                );
            }

            let mine = coll::scatter(
                r,
                2,
                (r.id() == 2).then(|| (0..p as i64).map(|i| vec![100 + i]).collect()),
            );
            assert_eq!(mine, vec![100 + me]);

            let ag = coll::allgather(r, vec![me * 2]);
            assert_eq!(ag, vec![vec![0], vec![2], vec![4]]);

            let summed = coll::ring_allreduce(r, vec![me; 6], |a, b| a + b);
            assert_eq!(summed, vec![3; 6]);

            let prefix = coll::exclusive_scan(r, vec![], vec![me + 1], |mut a, b| {
                a.extend(b);
                a
            });
            assert_eq!(prefix, (1..=me).collect::<Vec<i64>>());

            let exchanged = coll::alltoall(r, (0..p as i64).map(|j| vec![me * 10 + j]).collect());
            for (src, got) in exchanged.iter().enumerate() {
                assert_eq!(got, &vec![src as i64 * 10 + me]);
            }

            coll::barrier(r);
            vec![me]
        });
        assert_eq!(run.results, vec![vec![0], vec![1], vec![2]]);
        // Exact message counts carry over the wire: two barriers plus
        // the nine data collectives, per the cost-model formulas.
        use crate::cost;
        let want = 2 * cost::barrier_msgs(p as u64)
            + cost::broadcast_msgs(p as u64) * 2          // broadcast + reduce
            + cost::allreduce_msgs(p as u64)
            + (p as u64 - 1) * 3                          // gather, scatter, scan
            + cost::allgather_msgs(p as u64)
            + cost::ring_allreduce_msgs(p as u64)
            + cost::allgather_msgs(p as u64); // alltoall: p(p−1)
        assert_eq!(run.stats.messages, want);
        assert_eq!(
            run.forwarded, 0,
            "acceptance witness: on the mesh every child↔child message is one hop"
        );
    }

    #[test]
    fn wire_traced_world_merges_per_process_snapshots() {
        let dir = std::env::temp_dir().join(format!("pdc-wire-trace-{}", std::process::id()));
        let opts = WireOptions::for_test(
            2,
            "transport::tests::wire_traced_world_merges_per_process_snapshots",
        )
        .traced(&dir);
        let run = WireWorld::run(&opts, |r: &mut Rank<u64, WireTransport<u64>>| {
            if r.id() == 0 {
                r.send(1, 0, 5);
                0
            } else {
                r.recv(0, 0)
            }
        });
        assert_eq!(run.results, vec![0, 5]);
        let merged = run.trace.expect("traced run yields a merged trace");
        assert_eq!(merged.processes.len(), 2);
        // Summed counters match the router's independent count.
        assert_eq!(merged.counter("mpi.msgs"), run.stats.messages);
        assert_eq!(merged.counter("mpi.bytes"), run.stats.bytes);
        // Rank 0 counted its send locally; rank 1 sent nothing.
        assert_eq!(merged.processes[0].counters.get("mpi.msgs"), Some(&1));
        assert_eq!(merged.processes[1].counters.get("mpi.msgs"), Some(&0));
        // The schema-3 export carries per-event process ids.
        let json = merged.to_json(&[]);
        assert!(json.starts_with("{\"schema\":\"pdc-trace/3\""));
        assert!(json.contains("\"process\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
