//! Pluggable rank-to-rank transports: the seam between the rank API in
//! [`crate::world`] and the machinery that actually moves envelopes.
//!
//! [`LocalTransport`] is the seed behaviour: ranks are threads of one
//! process joined by unbounded crossbeam channels. [`WireTransport`]
//! puts every rank in its **own OS process**, connected over loopback
//! TCP to a parent router; [`WireWorld`] spawns those processes by
//! re-executing the current binary (MPI launchers do the same — compare
//! `mpirun` forking `p` copies of one executable). Everything above the
//! [`Transport`] trait — tag matching, out-of-order buffering, traffic
//! counters, every collective in [`crate::coll`] — is byte-for-byte the
//! same code over both, which is the point of the seam: the ADI-style
//! device layer of MPICH, in miniature.
//!
//! ## Wire protocol
//!
//! The topology is a star: child ranks never talk to each other
//! directly, they send framed messages to the parent which re-frames
//! and forwards to the destination's socket. All integers are
//! little-endian. Child → parent frames start with a kind byte:
//!
//! ```text
//! kind 0 (MSG):    dst:u32 tag:u32 modeled:u64 len:u32 payload[len]
//! kind 1 (RESULT): len:u32 payload[len]
//! ```
//!
//! `modeled` is [`Payload::size_bytes`] — the α–β cost-model size — so
//! the parent can keep [`TrafficStats`] without decoding payloads.
//! Parent → child frames need no kind byte (only messages flow down):
//!
//! ```text
//! src:u32 tag:u32 len:u32 payload[len]
//! ```
//!
//! Payload bytes are produced by the [`WireMessage`] codec. On connect,
//! a child introduces itself with a bare `rank:u32` hello.
//!
//! ## Traces across processes
//!
//! A traced wire world has no shared `TraceSession`. Each child records
//! into its own session and writes an ordinary `pdc-trace/2` snapshot
//! to `<dir>/rank<i>.trace.json` before exiting; the parent parses and
//! merges them into one `pdc-trace/3` [`MergedTrace`] (see
//! [`pdc_core::merge`]) whose summed counters mean exactly what the
//! shared-session counters mean in a single-process world.

use crate::world::{Payload, Rank, Traffic, TrafficStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use pdc_core::merge::{self, MergedTrace};
use pdc_core::trace::{self, TraceSession};
use std::io::{self, BufReader, Read, Write};
use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a wire endpoint's I/O failed, as seen by the survivor.
///
/// The distinction matters to layers that *react* to failure instead of
/// inheriting a crash: `db::serve`'s replication tier treats
/// [`TransportError::PeerClosed`] on a shard's connection as a failure
/// detection (promote the backup, rebalance the ring) while the other
/// two variants indicate protocol corruption worth surfacing loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer's socket closed at a frame boundary (clean EOF) or the
    /// connection was reset — the peer process is gone.
    PeerClosed,
    /// The stream died *mid-frame*: a length prefix promised bytes that
    /// never arrived.
    Truncated,
    /// A complete frame arrived but its payload bytes do not decode as
    /// the expected message type.
    Undecodable,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerClosed => write!(f, "peer closed the connection"),
            TransportError::Truncated => write!(f, "truncated frame"),
            TransportError::Undecodable => write!(f, "undecodable payload"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A message in flight: who sent it, under which tag, and the payload.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending rank.
    pub src: usize,
    /// MPI-style tag used for envelope matching.
    pub tag: u32,
    /// The payload.
    pub msg: M,
}

/// Moves envelopes between ranks. [`Rank`](crate::world::Rank) owns one
/// endpoint and layers tag matching and observability on top; a
/// transport only has to deliver reliably and preserve per-sender FIFO
/// order (both implementations do: crossbeam channels and TCP streams
/// are FIFO, and the wire router forwards in arrival order).
pub trait Transport<M: Payload>: Send {
    /// Deliver `msg` from `src` to `dst` under `tag` (non-blocking,
    /// eager: buffers at the receiver like small-message MPI).
    fn send(&self, src: usize, dst: usize, tag: u32, msg: M);

    /// Block until the next envelope for this rank arrives, in arrival
    /// order. Tag matching happens above, in the rank's pending buffer.
    fn recv(&self) -> Envelope<M>;

    /// Fallible [`Transport::send`]: report a dead peer as an error
    /// instead of panicking. The default (used by [`LocalTransport`],
    /// which is infallible by construction — channel endpoints outlive
    /// the world) just delegates to `send`.
    fn try_send(&self, src: usize, dst: usize, tag: u32, msg: M) -> Result<(), TransportError> {
        self.send(src, dst, tag, msg);
        Ok(())
    }

    /// Fallible [`Transport::recv`]: a hung-up, truncating, or
    /// corrupting peer becomes an `Err` the caller can react to. The
    /// default delegates to the infallible `recv`.
    fn try_recv(&self) -> Result<Envelope<M>, TransportError> {
        Ok(self.recv())
    }
}

/// The seed transport: ranks are threads of one process, joined by
/// unbounded in-process channels. Zero behaviour change from the
/// pre-seam world — same channels, same panic messages.
pub struct LocalTransport<M> {
    pub(crate) senders: Vec<Sender<Envelope<M>>>,
    pub(crate) inbox: Receiver<Envelope<M>>,
}

impl<M: Payload> Transport<M> for LocalTransport<M> {
    fn send(&self, src: usize, dst: usize, tag: u32, msg: M) {
        self.senders[dst]
            .send(Envelope { src, tag, msg })
            .expect("destination rank has exited");
    }

    fn recv(&self) -> Envelope<M> {
        self.inbox.recv().expect("world torn down mid-recv")
    }
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

/// A [`Payload`] that can also cross a process boundary: a hand-rolled
/// little-endian codec (no serde in the offline build). `encode` must
/// be the inverse of `decode`; the blanket container impls compose the
/// scalar ones the same way the `Payload` impls compose `size_bytes`.
pub trait WireMessage: Payload + Sized {
    /// Append this value's wire bytes to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Consume this value's wire bytes from the front of `buf`;
    /// `None` if the bytes are malformed or truncated.
    fn decode(buf: &mut &[u8]) -> Option<Self>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a value that must span exactly the whole buffer.
    fn from_bytes(mut buf: &[u8]) -> Option<Self> {
        let v = Self::decode(&mut buf)?;
        buf.is_empty().then_some(v)
    }
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    let (head, rest) = buf.split_first_chunk::<4>()?;
    *buf = rest;
    Some(u32::from_le_bytes(*head))
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    let (head, rest) = buf.split_first_chunk::<8>()?;
    *buf = rest;
    Some(u64::from_le_bytes(*head))
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl WireMessage for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                // Casting through u64 sign-extends and the cast back
                // truncates, so negative values round-trip.
                out.extend_from_slice(&(*self as u64).to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                Some(take_u64(buf)? as $t)
            }
        }
    )*};
}
wire_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl WireMessage for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(f32::from_bits(take_u32(buf)?))
    }
}

impl WireMessage for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(take_u64(buf)?))
    }
}

impl WireMessage for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (b, rest) = buf.split_first()?;
        *buf = rest;
        match b {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl WireMessage for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl WireMessage for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = take_u32(buf)? as usize;
        let (head, rest) = buf.split_at_checked(len)?;
        let s = std::str::from_utf8(head).ok()?.to_string();
        *buf = rest;
        Some(s)
    }
}

impl<T: WireMessage> WireMessage for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = take_u32(buf)? as usize;
        // Cap the pre-allocation: a corrupt length must not OOM.
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

impl<A: WireMessage, B: WireMessage> WireMessage for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: WireMessage> WireMessage for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (b, rest) = buf.split_first()?;
        *buf = rest;
        match b {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

pub(crate) const FRAME_MSG: u8 = 0;
pub(crate) const FRAME_RESULT: u8 = 1;

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn read_body(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u32(r)? as usize;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Build the child→parent `MSG` frame for one message.
pub(crate) fn msg_frame(dst: usize, tag: u32, modeled: u64, body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(21 + body.len());
    frame.push(FRAME_MSG);
    frame.extend_from_slice(&(dst as u32).to_le_bytes());
    frame.extend_from_slice(&tag.to_le_bytes());
    frame.extend_from_slice(&modeled.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// Build the parent→child frame for one message.
pub(crate) fn down_frame(src: usize, tag: u32, body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(12 + body.len());
    frame.extend_from_slice(&(src as u32).to_le_bytes());
    frame.extend_from_slice(&tag.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

// ---------------------------------------------------------------------
// WireTransport: a child rank's endpoint
// ---------------------------------------------------------------------

/// A child rank's endpoint: one TCP connection to the parent router.
/// `send` frames and writes; `recv` blocks reading the next downward
/// frame. Both take `&self` (the rank API sends through `&self`), so
/// each direction is guarded by its own mutex — uncontended in
/// practice, since a rank is single-threaded.
pub struct WireTransport<M> {
    reader: Mutex<BufReader<TcpStream>>,
    writer: Mutex<TcpStream>,
    _msg: PhantomData<fn() -> M>,
}

impl<M: WireMessage> WireTransport<M> {
    pub(crate) fn new(stream: &TcpStream) -> io::Result<WireTransport<M>> {
        Ok(WireTransport {
            reader: Mutex::new(BufReader::new(stream.try_clone()?)),
            writer: Mutex::new(stream.try_clone()?),
            _msg: PhantomData,
        })
    }

    /// Connect to a router (a [`WireWorld`] parent or a
    /// [`crate::hub::WireHub`]) listening at `addr` and introduce this
    /// endpoint as `rank` with the hello frame.
    pub fn connect(addr: &str, rank: usize) -> io::Result<WireTransport<M>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        (&stream).write_all(&(rank as u32).to_le_bytes())?;
        WireTransport::new(&stream)
    }
}

impl<M: WireMessage> Transport<M> for WireTransport<M> {
    // The infallible rank API keeps its historical panic behaviour —
    // a thread-rank world has no sensible way to continue without its
    // router — but both paths now go through the fallible endpoints so
    // failure-aware layers (db::serve) can observe a death instead.
    fn send(&self, src: usize, dst: usize, tag: u32, msg: M) {
        self.try_send(src, dst, tag, msg)
            .expect("wire transport: parent router hung up");
    }

    fn recv(&self) -> Envelope<M> {
        match self.try_recv() {
            Ok(env) => env,
            Err(TransportError::PeerClosed) => panic!("wire transport: parent closed mid-recv"),
            Err(TransportError::Truncated) => panic!("wire transport: truncated frame"),
            Err(TransportError::Undecodable) => panic!("wire transport: undecodable payload"),
        }
    }

    fn try_send(&self, _src: usize, dst: usize, tag: u32, msg: M) -> Result<(), TransportError> {
        let frame = msg_frame(dst, tag, msg.size_bytes(), &msg.to_bytes());
        self.writer
            .lock()
            .expect("wire writer poisoned")
            .write_all(&frame)
            .map_err(|_| TransportError::PeerClosed)
    }

    fn try_recv(&self) -> Result<Envelope<M>, TransportError> {
        let mut r = self.reader.lock().expect("wire reader poisoned");
        // EOF on the first header field is a frame boundary: the peer
        // hung up cleanly. EOF anywhere later is a torn frame.
        let src = read_u32(&mut *r).map_err(|_| TransportError::PeerClosed)? as usize;
        let tag = read_u32(&mut *r).map_err(|_| TransportError::Truncated)?;
        let body = read_body(&mut *r).map_err(|_| TransportError::Truncated)?;
        let msg = M::from_bytes(&body).ok_or(TransportError::Undecodable)?;
        Ok(Envelope { src, tag, msg })
    }
}

// ---------------------------------------------------------------------
// WireWorld: parent router + self-exec child launcher
// ---------------------------------------------------------------------

/// Env var carrying the world id; set in child processes. Entry points
/// that host more than one wire world dispatch on
/// [`WireWorld::child_world_id`] before calling [`WireWorld::run`].
pub const ENV_WORLD: &str = "PDC_WIRE_WORLD";
pub(crate) const ENV_RANK: &str = "PDC_WIRE_RANK";
pub(crate) const ENV_PROCS: &str = "PDC_WIRE_PROCS";
pub(crate) const ENV_ADDR: &str = "PDC_WIRE_ADDR";
pub(crate) const ENV_TRACE_DIR: &str = "PDC_WIRE_TRACE_DIR";

/// What a spawned wire-child process learns from its environment: who
/// it is, how big the world is, where the router listens, and whether
/// to trace. See [`take_child_env`].
#[derive(Debug, Clone)]
pub struct ChildEnv {
    /// The world id this child was spawned for.
    pub world_id: String,
    /// This process's rank.
    pub rank: usize,
    /// Total rank count in the world (for a hub world this includes the
    /// hub process itself as rank 0).
    pub procs: usize,
    /// Loopback address of the parent router.
    pub addr: String,
    /// Trace snapshot directory, when the world is traced.
    pub trace_dir: Option<PathBuf>,
}

/// In a wire-child process, read **and clear** the child env markers —
/// clearing ensures nothing the child runs later mistakes itself for a
/// child of some nested world. Returns `None` in an ordinary process.
/// Custom child entry points (e.g. `db::serve` shards) pair this with
/// [`WireTransport::connect`]; [`WireWorld::run`] uses it internally.
pub fn take_child_env() -> Option<ChildEnv> {
    let world_id = std::env::var(ENV_WORLD).ok()?;
    let rank = std::env::var(ENV_RANK)
        .expect("wire child without rank")
        .parse()
        .expect("bad wire rank");
    let procs = std::env::var(ENV_PROCS)
        .expect("wire child without procs")
        .parse()
        .expect("bad wire procs");
    let addr = std::env::var(ENV_ADDR).expect("wire child without addr");
    let trace_dir = std::env::var(ENV_TRACE_DIR).ok().map(PathBuf::from);
    for k in [ENV_WORLD, ENV_RANK, ENV_PROCS, ENV_ADDR, ENV_TRACE_DIR] {
        std::env::remove_var(k);
    }
    Some(ChildEnv {
        world_id,
        rank,
        procs,
        addr,
        trace_dir,
    })
}

/// Spawn one rank process: re-execute the current binary with
/// `opts.child_args` and the child env markers set. `procs` is the
/// world size as the child should see it (a hub world passes shard
/// count + 1 to include itself).
pub(crate) fn spawn_rank_process(
    opts: &WireOptions,
    rank: usize,
    procs: usize,
    addr: &str,
) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.args(&opts.child_args)
        .env(ENV_WORLD, &opts.world_id)
        .env(ENV_RANK, rank.to_string())
        .env(ENV_PROCS, procs.to_string())
        .env(ENV_ADDR, addr)
        .stdout(Stdio::null());
    if let Some(dir) = &opts.trace_dir {
        cmd.env(ENV_TRACE_DIR, dir);
    }
    cmd.spawn()
}

/// How to launch a wire world: how many ranks, how a child process
/// finds its way back to the same [`WireWorld::run`] call, and whether
/// to trace.
#[derive(Debug, Clone)]
pub struct WireOptions {
    /// Number of rank processes.
    pub procs: usize,
    /// Identifies this world; a child only enters a `run` call whose
    /// `world_id` matches its `PDC_WIRE_WORLD`.
    pub world_id: String,
    /// Arguments passed to the re-executed current binary so it reaches
    /// the same `WireWorld::run` call (e.g. a libtest `--exact` filter,
    /// or a subcommand flag).
    pub child_args: Vec<String>,
    /// When set, each rank writes a `pdc-trace/2` snapshot here and the
    /// parent merges them into a `pdc-trace/3` [`MergedTrace`].
    pub trace_dir: Option<PathBuf>,
}

impl WireOptions {
    /// Options for a world whose entry point is the `#[test]` function
    /// at libtest path `test_path` (module path without the crate name,
    /// e.g. `"transport::tests::wire_ping_pong"`). The test binary is
    /// re-executed with `--exact` so the child runs only that test.
    pub fn for_test(procs: usize, test_path: &str) -> WireOptions {
        WireOptions {
            procs,
            world_id: test_path.to_string(),
            child_args: vec![
                test_path.to_string(),
                "--exact".to_string(),
                "--nocapture".to_string(),
            ],
            trace_dir: None,
        }
    }

    /// Options for a world reached by re-running the current binary
    /// with `args` (e.g. `["--shard"]` for a subcommand entry point).
    pub fn for_args(procs: usize, world_id: &str, args: &[&str]) -> WireOptions {
        WireOptions {
            procs,
            world_id: world_id.to_string(),
            child_args: args.iter().map(|a| a.to_string()).collect(),
            trace_dir: None,
        }
    }

    /// Trace every rank and merge the snapshots (written under `dir`).
    pub fn traced(mut self, dir: impl Into<PathBuf>) -> WireOptions {
        self.trace_dir = Some(dir.into());
        self
    }
}

/// The outcome of a multi-process world run, as seen by the parent.
pub struct WireRun<R> {
    /// Each rank's return value, in rank order.
    pub results: Vec<R>,
    /// Traffic counted by the parent router from `modeled` frame
    /// fields — the same numbers a `LocalTransport` world reports.
    pub stats: TrafficStats,
    /// Merged per-process traces, when [`WireOptions::trace_dir`] was
    /// set.
    pub trace: Option<MergedTrace>,
}

/// A message-passing world whose ranks are separate OS processes.
///
/// [`WireWorld::run`] is called from both sides of a `fork`-like
/// boundary: the parent process spawns `procs` copies of the current
/// binary and routes their traffic; each child re-executes the same
/// entry point, where `run` detects the child env vars and runs `f` as
/// one rank before exiting the process. One entry point should host one
/// wire world; if it must host several, dispatch on
/// [`WireWorld::child_world_id`] first.
pub struct WireWorld;

impl WireWorld {
    /// In a child rank process, the world id this child belongs to;
    /// `None` in an ordinary (parent) process.
    pub fn child_world_id() -> Option<String> {
        std::env::var(ENV_WORLD).ok()
    }

    /// Run `f` as `opts.procs` rank processes; in the parent, returns
    /// every rank's result plus traffic stats (and the merged trace if
    /// tracing). In a child this runs `f` for one rank and then exits
    /// the process — it never returns.
    ///
    /// # Panics
    /// Panics if `opts.procs == 0`, if a child cannot be spawned or
    /// exits unsuccessfully, or if the world stalls (a child that never
    /// connects or never finishes trips a deadline rather than hanging
    /// CI forever).
    pub fn run<M, R, F>(opts: &WireOptions, f: F) -> WireRun<R>
    where
        M: WireMessage,
        R: WireMessage,
        F: FnOnce(&mut Rank<M, WireTransport<M>>) -> R,
    {
        match Self::child_world_id() {
            Some(id) if id == opts.world_id => Self::run_child(f),
            Some(id) => panic!(
                "wire child for world {id:?} reached WireWorld::run for {:?}; \
                 dispatch on WireWorld::child_world_id() before calling run",
                opts.world_id
            ),
            None => Self::run_parent(opts),
        }
    }

    fn run_child<M, R, F>(f: F) -> !
    where
        M: WireMessage,
        R: WireMessage,
        F: FnOnce(&mut Rank<M, WireTransport<M>>) -> R,
    {
        let env = take_child_env().expect("wire child without env markers");
        let (rank_id, procs, trace_dir) = (env.rank, env.procs, env.trace_dir);

        let transport: WireTransport<M> =
            WireTransport::connect(&env.addr, rank_id).expect("wire child: connect to parent");
        let result_stream = transport
            .writer
            .lock()
            .expect("wire writer poisoned")
            .try_clone()
            .expect("wire child: clone stream");
        let session = trace_dir.as_ref().map(|_| TraceSession::new());
        if let Some(s) = &session {
            // Rank-local pdc-sync locking records under this rank's id,
            // exactly as a traced thread-rank does.
            trace::install_sync_trace(s.thread(rank_id as u32));
        }
        let mut rank = Rank::new(
            rank_id,
            procs,
            transport,
            Arc::new(Traffic::default()),
            session.as_ref(),
        );
        let result = f(&mut rank);
        drop(rank);
        trace::clear_sync_trace();

        if let (Some(s), Some(dir)) = (&session, &trace_dir) {
            std::fs::create_dir_all(dir).expect("wire child: create trace dir");
            let meta = [("process", rank_id.to_string())];
            std::fs::write(
                dir.join(format!("rank{rank_id}.trace.json")),
                s.to_json_with_meta(&meta),
            )
            .expect("wire child: write trace snapshot");
        }

        let body = result.to_bytes();
        let mut frame = Vec::with_capacity(5 + body.len());
        frame.push(FRAME_RESULT);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        (&result_stream)
            .write_all(&frame)
            .expect("wire child: result");
        std::process::exit(0);
    }

    fn run_parent<R: WireMessage>(opts: &WireOptions) -> WireRun<R> {
        let p = opts.procs;
        assert!(p > 0, "world needs at least one rank");
        let listener = TcpListener::bind("127.0.0.1:0").expect("wire parent: bind loopback");
        let addr = listener.local_addr().expect("wire parent: local addr");

        let mut children: Vec<Child> = (0..p)
            .map(|i| {
                spawn_rank_process(opts, i, p, &addr.to_string())
                    .expect("wire parent: spawn rank process")
            })
            .collect();

        let socks = Self::accept_ranks(&listener, &mut children);

        // Star router: one reader and one writer thread per child. A
        // reader forwards frames into per-destination unbounded queues;
        // the queue (not the socket) absorbs bursts, so a rank sending
        // while its peer's TCP buffer is full can never wedge the
        // router. Writers drain their queue until every reader is done.
        let traffic = Arc::new(Traffic::default());
        let mut out_tx: Vec<Sender<Vec<u8>>> = Vec::with_capacity(p);
        let mut out_rx: Vec<Receiver<Vec<u8>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            out_tx.push(tx);
            out_rx.push(rx);
        }
        let (res_tx, res_rx) = unbounded::<(usize, Vec<u8>)>();

        let readers: Vec<_> = socks
            .iter()
            .enumerate()
            .map(|(rank, s)| {
                let stream = s.try_clone().expect("wire parent: clone for reader");
                let out_tx = out_tx.clone();
                let traffic = Arc::clone(&traffic);
                let res_tx = res_tx.clone();
                std::thread::spawn(move || {
                    route_from_child(rank, stream, &out_tx, &traffic, &res_tx)
                })
            })
            .collect();
        drop(out_tx);
        drop(res_tx);

        let writers: Vec<_> = socks
            .into_iter()
            .zip(out_rx)
            .enumerate()
            .map(|(rank, (mut stream, rx))| {
                std::thread::spawn(move || {
                    for frame in rx {
                        stream
                            .write_all(&frame)
                            .unwrap_or_else(|e| panic!("wire: deliver to rank {rank}: {e}"));
                    }
                })
            })
            .collect();

        let mut results: Vec<Option<Vec<u8>>> = (0..p).map(|_| None).collect();
        for _ in 0..p {
            let (rank, body) = res_rx
                .recv_timeout(Duration::from_secs(300))
                .expect("wire world stalled waiting for rank results");
            assert!(results[rank].is_none(), "duplicate result from rank {rank}");
            results[rank] = Some(body);
        }
        for h in readers {
            h.join().expect("wire reader thread panicked");
        }
        for h in writers {
            h.join().expect("wire writer thread panicked");
        }
        for (i, c) in children.iter_mut().enumerate() {
            let status = c.wait().expect("wire parent: wait for rank");
            assert!(status.success(), "wire rank {i} exited with {status}");
        }

        let trace = opts.trace_dir.as_ref().map(|dir| {
            let parts = (0..p)
                .map(|i| {
                    let path = dir.join(format!("rank{i}.trace.json"));
                    let text = std::fs::read_to_string(&path)
                        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
                    merge::parse_trace(&text, i as u32)
                        .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
                })
                .collect();
            MergedTrace::merge(parts)
        });
        let results = results
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                R::from_bytes(&b.unwrap_or_else(|| panic!("no result from rank {i}")))
                    .unwrap_or_else(|| panic!("undecodable result from rank {i}"))
            })
            .collect();
        WireRun {
            results,
            stats: traffic.stats(),
            trace,
        }
    }

    /// Accept `children.len()` hello frames, failing fast (instead of
    /// hanging) when a child dies before connecting — the usual cause
    /// is `child_args` that don't re-enter the calling code path.
    fn accept_ranks(listener: &TcpListener, children: &mut [Child]) -> Vec<TcpStream> {
        let p = children.len();
        listener
            .set_nonblocking(true)
            .expect("wire parent: nonblocking listener");
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut socks: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
        let mut connected = 0;
        while connected < p {
            match listener.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)
                        .expect("wire parent: blocking conn");
                    s.set_nodelay(true).ok();
                    let mut hello = [0u8; 4];
                    (&s).read_exact(&mut hello)
                        .expect("wire parent: read hello");
                    let r = u32::from_le_bytes(hello) as usize;
                    assert!(r < p, "hello from out-of-range rank {r}");
                    assert!(socks[r].is_none(), "duplicate hello from rank {r}");
                    socks[r] = Some(s);
                    connected += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    for (i, c) in children.iter_mut().enumerate() {
                        if let Some(status) = c.try_wait().expect("wire parent: try_wait") {
                            panic!(
                                "wire rank {i} exited ({status}) before connecting; \
                                 check that WireOptions::child_args re-enter this world"
                            );
                        }
                    }
                    assert!(
                        Instant::now() < deadline,
                        "wire ranks failed to connect within 60s"
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("wire parent: accept: {e}"),
            }
        }
        socks
            .into_iter()
            .map(|s| s.expect("all connected"))
            .collect()
    }
}

/// Parent-side reader loop for one child: forward `MSG` frames to the
/// destination's queue (re-framed with the verified source rank, so a
/// child cannot spoof `src`), surface the `RESULT` frame, stop at EOF.
fn route_from_child(
    rank: usize,
    stream: TcpStream,
    out_tx: &[Sender<Vec<u8>>],
    traffic: &Traffic,
    res_tx: &Sender<(usize, Vec<u8>)>,
) {
    let mut r = BufReader::new(stream);
    loop {
        let mut kind = [0u8; 1];
        match r.read_exact(&mut kind) {
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return,
            Err(e) => panic!("wire: read from rank {rank}: {e}"),
            Ok(()) => {}
        }
        match kind[0] {
            FRAME_MSG => {
                let dst = read_u32(&mut r).expect("wire: truncated dst") as usize;
                let tag = read_u32(&mut r).expect("wire: truncated tag");
                let modeled = read_u64(&mut r).expect("wire: truncated size");
                let body = read_body(&mut r).expect("wire: truncated payload");
                assert!(dst < out_tx.len(), "rank {rank} sent to bad rank {dst}");
                traffic.count(1, modeled);
                let mut frame = Vec::with_capacity(12 + body.len());
                frame.extend_from_slice(&(rank as u32).to_le_bytes());
                frame.extend_from_slice(&tag.to_le_bytes());
                frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
                frame.extend_from_slice(&body);
                out_tx[dst]
                    .send(frame)
                    .expect("wire: destination writer gone");
            }
            FRAME_RESULT => {
                let body = read_body(&mut r).expect("wire: truncated result");
                res_tx.send((rank, body)).expect("wire: result sink gone");
            }
            k => panic!("wire: unknown frame kind {k} from rank {rank}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireMessage + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).as_ref(), Some(&v), "roundtrip {v:?}");
        // Trailing garbage must be rejected by from_bytes.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(T::from_bytes(&longer).is_none() || bytes.is_empty());
    }

    #[test]
    fn wire_codec_roundtrips() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-1i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-0.125f64);
        roundtrip(true);
        roundtrip(());
        roundtrip(String::from("héllo wörld"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip((42usize, vec![-7i64]));
        roundtrip(Some(vec![(1u32, false), (2, true)]));
        roundtrip(Option::<u64>::None);
    }

    #[test]
    fn wire_codec_rejects_truncation() {
        let v = (String::from("abc"), vec![1u64, 2]);
        let bytes = v.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                <(String, Vec<u64>)>::from_bytes(&bytes[..cut]).is_none(),
                "accepted a {cut}-byte prefix"
            );
        }
    }

    /// Pair a `WireTransport` endpoint with an in-test "router" socket.
    fn loopback_pair() -> (WireTransport<u64>, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let t = WireTransport::<u64>::connect(&addr, 7).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let mut hello = [0u8; 4];
        (&server).read_exact(&mut hello).expect("hello");
        assert_eq!(u32::from_le_bytes(hello), 7);
        (t, server)
    }

    #[test]
    fn closed_peer_yields_error_not_panic() {
        let (t, server) = loopback_pair();
        drop(server);
        // recv: EOF at the frame boundary is a clean peer death.
        assert_eq!(t.try_recv().unwrap_err(), TransportError::PeerClosed);
        // send: the first writes may land in kernel buffers, but the
        // dead peer surfaces as an error within a bounded number of
        // sends — never as a panic.
        let mut saw_err = false;
        for _ in 0..1000 {
            if t.try_send(7, 0, 1, 99).is_err() {
                saw_err = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(saw_err, "send to a closed peer never errored");
    }

    #[test]
    fn truncated_frame_yields_error_not_panic() {
        let (t, server) = loopback_pair();
        // src + tag + a length prefix promising 8 bytes, then hang up
        // after delivering only 3.
        let mut frame = Vec::new();
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&5u32.to_le_bytes());
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&[1, 2, 3]);
        (&server).write_all(&frame).expect("partial frame");
        drop(server);
        assert_eq!(t.try_recv().unwrap_err(), TransportError::Truncated);
    }

    #[test]
    fn undecodable_payload_yields_error_not_panic() {
        let (t, server) = loopback_pair();
        // A complete frame whose 3-byte body cannot decode as u64.
        (&server)
            .write_all(&down_frame(0, 5, &[1, 2, 3]))
            .expect("bad frame");
        assert_eq!(t.try_recv().unwrap_err(), TransportError::Undecodable);
    }

    #[test]
    fn wire_ping_pong_two_processes() {
        let opts = WireOptions::for_test(2, "transport::tests::wire_ping_pong_two_processes");
        let run = WireWorld::run(&opts, |r: &mut Rank<u64, WireTransport<u64>>| {
            if r.id() == 0 {
                r.send(1, 0, 42);
                r.recv(1, 0)
            } else {
                let v = r.recv(0, 0);
                r.send(0, 0, v + 1);
                v
            }
        });
        assert_eq!(run.results, vec![43, 42]);
        assert_eq!(run.stats.messages, 2);
        assert_eq!(run.stats.bytes, 16, "modeled bytes, same as local");
        assert!(run.trace.is_none());
    }

    #[test]
    fn wire_tag_matching_and_recv_any_across_processes() {
        let opts = WireOptions::for_test(
            3,
            "transport::tests::wire_tag_matching_and_recv_any_across_processes",
        );
        let run = WireWorld::run(&opts, |r: &mut Rank<u64, WireTransport<u64>>| {
            match r.id() {
                0 => {
                    // Out-of-order tags from rank 1: matching must buffer.
                    let a = r.recv(1, 1);
                    let b = r.recv(1, 2);
                    assert_eq!((a, b), (100, 200));
                    let (src, v) = r.recv_any(9);
                    assert_eq!((src, v), (2, 900));
                    a + b + v
                }
                1 => {
                    r.send(0, 2, 200);
                    r.send(0, 1, 100);
                    0
                }
                _ => {
                    r.send(0, 9, 900);
                    0
                }
            }
        });
        assert_eq!(run.results, vec![1200, 0, 0]);
        assert_eq!(run.stats.messages, 3);
    }

    #[test]
    fn wire_world_runs_the_full_collective_suite() {
        // The acceptance bar for the seam: every collective in
        // crate::coll, unchanged, over ranks that are OS processes.
        use crate::coll;
        let p = 3;
        let opts = WireOptions::for_test(
            p,
            "transport::tests::wire_world_runs_the_full_collective_suite",
        );
        let run = WireWorld::run(&opts, |r: &mut Rank<Vec<i64>, WireTransport<Vec<i64>>>| {
            let p = r.size();
            let me = r.id() as i64;
            coll::barrier(r);

            let v = coll::broadcast(r, 0, (r.id() == 0).then(|| vec![7, 8]));
            assert_eq!(v, vec![7, 8]);

            let red = coll::reduce(r, 1, vec![me], |mut a, b| {
                a.extend(b);
                a
            });
            if r.id() == 1 {
                let mut got = red.expect("root result");
                got.sort_unstable();
                assert_eq!(got, vec![0, 1, 2]);
            } else {
                assert!(red.is_none());
            }

            let all = coll::allreduce(r, vec![me * 10], |mut a, b| {
                a.extend(b);
                a
            });
            assert_eq!(all.len(), p);

            let gathered = coll::gather(r, 0, vec![me, me]);
            if r.id() == 0 {
                assert_eq!(
                    gathered.expect("root"),
                    vec![vec![0, 0], vec![1, 1], vec![2, 2]]
                );
            }

            let mine = coll::scatter(
                r,
                2,
                (r.id() == 2).then(|| (0..p as i64).map(|i| vec![100 + i]).collect()),
            );
            assert_eq!(mine, vec![100 + me]);

            let ag = coll::allgather(r, vec![me * 2]);
            assert_eq!(ag, vec![vec![0], vec![2], vec![4]]);

            let summed = coll::ring_allreduce(r, vec![me; 6], |a, b| a + b);
            assert_eq!(summed, vec![3; 6]);

            let prefix = coll::exclusive_scan(r, vec![], vec![me + 1], |mut a, b| {
                a.extend(b);
                a
            });
            assert_eq!(prefix, (1..=me).collect::<Vec<i64>>());

            let exchanged = coll::alltoall(r, (0..p as i64).map(|j| vec![me * 10 + j]).collect());
            for (src, got) in exchanged.iter().enumerate() {
                assert_eq!(got, &vec![src as i64 * 10 + me]);
            }

            coll::barrier(r);
            vec![me]
        });
        assert_eq!(run.results, vec![vec![0], vec![1], vec![2]]);
        // Exact message counts carry over the wire: two barriers plus
        // the nine data collectives, per the cost-model formulas.
        use crate::cost;
        let want = 2 * cost::barrier_msgs(p as u64)
            + cost::broadcast_msgs(p as u64) * 2          // broadcast + reduce
            + cost::allreduce_msgs(p as u64)
            + (p as u64 - 1) * 3                          // gather, scatter, scan
            + cost::allgather_msgs(p as u64)
            + cost::ring_allreduce_msgs(p as u64)
            + cost::allgather_msgs(p as u64); // alltoall: p(p−1)
        assert_eq!(run.stats.messages, want);
    }

    #[test]
    fn wire_traced_world_merges_per_process_snapshots() {
        let dir = std::env::temp_dir().join(format!("pdc-wire-trace-{}", std::process::id()));
        let opts = WireOptions::for_test(
            2,
            "transport::tests::wire_traced_world_merges_per_process_snapshots",
        )
        .traced(&dir);
        let run = WireWorld::run(&opts, |r: &mut Rank<u64, WireTransport<u64>>| {
            if r.id() == 0 {
                r.send(1, 0, 5);
                0
            } else {
                r.recv(0, 0)
            }
        });
        assert_eq!(run.results, vec![0, 5]);
        let merged = run.trace.expect("traced run yields a merged trace");
        assert_eq!(merged.processes.len(), 2);
        // Summed counters match the router's independent count.
        assert_eq!(merged.counter("mpi.msgs"), run.stats.messages);
        assert_eq!(merged.counter("mpi.bytes"), run.stats.bytes);
        // Rank 0 counted its send locally; rank 1 sent nothing.
        assert_eq!(merged.processes[0].counters.get("mpi.msgs"), Some(&1));
        assert_eq!(merged.processes[1].counters.get("mpi.msgs"), Some(&0));
        // The schema-3 export carries per-event process ids.
        let json = merged.to_json(&[]);
        assert!(json.starts_with("{\"schema\":\"pdc-trace/3\""));
        assert!(json.contains("\"process\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
