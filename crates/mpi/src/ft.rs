//! Fault tolerance: master-worker task farming with failure detection
//! and reassignment — CS87's "fault tolerance" topic as a deterministic
//! discrete-event simulation.
//!
//! The master owns a bag of independent tasks. Workers request a task,
//! compute for its duration, and report back. A worker may **crash** at
//! a scheduled time: the master's heartbeat detector notices after
//! `heartbeat_timeout` ticks and returns the orphaned task to the bag
//! (at-least-once semantics — the tests show a task can run twice, and
//! that the job still finishes with every task completed exactly once in
//! the *results*, because the master ignores duplicate completions).

//!
//! [`run_farm_traced`] additionally publishes `ft.executions`,
//! `ft.heartbeat_timeouts` (detections fired), and `ft.reassignments`
//! into a pdc-trace session.

use pdc_core::trace::TraceSession;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// The farm's heartbeat-timeout failure detector, extracted so live
/// systems can reuse it: `db::serve`'s front end feeds it "I heard from
/// shard p" observations plus a monotonically advancing clock, exactly
/// as the simulated master does with ticks. A peer silent for more than
/// `timeout` clock units is declared dead — once.
///
/// Clock units are whatever the caller advances (simulation ticks here,
/// elapsed ping intervals in the serving tier); the detector only
/// compares them.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    timeout: u64,
    last_seen: BTreeMap<usize, u64>,
    dead: BTreeSet<usize>,
}

impl HeartbeatMonitor {
    /// A detector that declares a registered peer dead when `timeout`
    /// clock units pass without a [`HeartbeatMonitor::heard`].
    pub fn new(timeout: u64) -> HeartbeatMonitor {
        assert!(timeout > 0, "a zero timeout declares everyone dead");
        HeartbeatMonitor {
            timeout,
            last_seen: BTreeMap::new(),
            dead: BTreeSet::new(),
        }
    }

    /// Start monitoring `peer`, treating `now` as its last sign of life.
    pub fn register(&mut self, peer: usize, now: u64) {
        self.last_seen.insert(peer, now);
    }

    /// Record a sign of life (heartbeat reply, any message) from `peer`.
    /// Ignored for peers already declared dead — a failure detection is
    /// never retracted.
    pub fn heard(&mut self, peer: usize, now: u64) {
        if !self.dead.contains(&peer) {
            if let Some(t) = self.last_seen.get_mut(&peer) {
                *t = (*t).max(now);
            }
        }
    }

    /// Declare `peer` dead on out-of-band evidence (e.g. its socket
    /// closed) without waiting for the timeout.
    pub fn mark_dead(&mut self, peer: usize) {
        if self.last_seen.remove(&peer).is_some() {
            self.dead.insert(peer);
        }
    }

    /// Peers whose silence exceeded the timeout as of `now`, in peer
    /// order. Each is declared dead and reported exactly once.
    pub fn expired(&mut self, now: u64) -> Vec<usize> {
        let timeout = self.timeout;
        let newly: Vec<usize> = self
            .last_seen
            .iter()
            .filter(|&(_, &seen)| now.saturating_sub(seen) > timeout)
            .map(|(&p, _)| p)
            .collect();
        for &p in &newly {
            self.last_seen.remove(&p);
            self.dead.insert(p);
        }
        newly
    }

    /// Whether `peer` has been declared dead.
    pub fn is_dead(&self, peer: usize) -> bool {
        self.dead.contains(&peer)
    }

    /// Registered peers not declared dead, in peer order.
    pub fn alive(&self) -> Vec<usize> {
        self.last_seen.keys().copied().collect()
    }
}

/// One unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Task id.
    pub id: u64,
    /// Ticks of compute it needs.
    pub duration: u64,
}

/// A scheduled worker crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// Which worker.
    pub worker: usize,
    /// The tick at which it dies.
    pub at_tick: u64,
}

/// Outcome of one simulated job.
#[derive(Debug, Clone)]
pub struct FarmOutcome {
    /// Tick at which the last task completed.
    pub makespan: u64,
    /// Tasks completed (ids, deduplicated).
    pub completed: Vec<u64>,
    /// Number of task *executions* (>= tasks when reassignment happened).
    pub executions: u64,
    /// Reassignments performed after detected failures.
    pub reassignments: u64,
    /// Workers alive at the end.
    pub survivors: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WorkerState {
    Idle,
    /// Running (task index, finish tick).
    Running(usize, u64),
    Dead,
}

/// Simulate the task farm.
///
/// # Panics
/// Panics if `workers == 0` or every worker crashes before the job can
/// finish with none alive (the job would hang; the simulator detects
/// this and panics with a clear message instead).
pub fn run_farm(
    tasks: &[Task],
    workers: usize,
    crashes: &[Crash],
    heartbeat_timeout: u64,
) -> FarmOutcome {
    run_farm_inner(tasks, workers, crashes, heartbeat_timeout, None)
}

/// Like [`run_farm`], publishing `ft.executions`,
/// `ft.heartbeat_timeouts`, and `ft.reassignments` counters into
/// `session`.
///
/// `ft.heartbeat_timeouts` counts every detection that fired, including
/// ones whose orphaned task had already completed;
/// `ft.reassignments` counts only the tasks actually re-bagged, so
/// `ft.heartbeat_timeouts >= ft.reassignments`.
///
/// # Panics
/// Same conditions as [`run_farm`].
pub fn run_farm_traced(
    tasks: &[Task],
    workers: usize,
    crashes: &[Crash],
    heartbeat_timeout: u64,
    session: &TraceSession,
) -> FarmOutcome {
    run_farm_inner(tasks, workers, crashes, heartbeat_timeout, Some(session))
}

fn run_farm_inner(
    tasks: &[Task],
    workers: usize,
    crashes: &[Crash],
    heartbeat_timeout: u64,
    session: Option<&TraceSession>,
) -> FarmOutcome {
    assert!(workers > 0, "need at least one worker");
    let obs = session.map(|s| {
        (
            s.counter("ft.executions"),
            s.counter("ft.heartbeat_timeouts"),
            s.counter("ft.reassignments"),
        )
    });
    let mut crash_at: BTreeMap<usize, u64> = BTreeMap::new();
    for c in crashes {
        assert!(c.worker < workers, "crash for unknown worker {}", c.worker);
        crash_at.insert(c.worker, c.at_tick);
    }
    let mut pending: Vec<usize> = (0..tasks.len()).rev().collect(); // bag of task indices
    let mut state = vec![WorkerState::Idle; workers];
    let mut completed: HashSet<u64> = HashSet::new();
    let mut executions = 0u64;
    let mut reassignments = 0u64;
    // For failure detection: the task a dead worker held, and when its
    // death becomes *detectable* (death tick + timeout).
    let mut orphaned: Vec<(usize, u64)> = Vec::new(); // (task idx, detect tick)
    let mut tick = 0u64;
    let mut makespan = 0u64;

    loop {
        // 1. Crashes scheduled for this tick.
        for (&w, &at) in &crash_at {
            if at == tick && state[w] != WorkerState::Dead {
                if let WorkerState::Running(t, _) = state[w] {
                    orphaned.push((t, tick + heartbeat_timeout));
                }
                state[w] = WorkerState::Dead;
            }
        }
        // 2. Detected orphans return to the bag.
        let (detected, still): (Vec<_>, Vec<_>) =
            orphaned.into_iter().partition(|&(_, d)| d <= tick);
        orphaned = still;
        for (t, _) in detected {
            if let Some((_, timeouts, _)) = &obs {
                timeouts.inc();
            }
            if !completed.contains(&tasks[t].id) {
                pending.push(t);
                reassignments += 1;
                if let Some((_, _, reassigns)) = &obs {
                    reassigns.inc();
                }
            }
        }
        // 3. Completions.
        for st in state.iter_mut() {
            if let WorkerState::Running(t, finish) = *st {
                if finish <= tick {
                    completed.insert(tasks[t].id);
                    makespan = makespan.max(finish);
                    *st = WorkerState::Idle;
                }
            }
        }
        // 4. Dispatch.
        for st in state.iter_mut() {
            if *st == WorkerState::Idle {
                // Skip tasks that were completed while orphan-pending.
                while let Some(&t) = pending.last() {
                    if completed.contains(&tasks[t].id) {
                        pending.pop();
                    } else {
                        break;
                    }
                }
                if let Some(t) = pending.pop() {
                    *st = WorkerState::Running(t, tick + tasks[t].duration);
                    executions += 1;
                    if let Some((execs, _, _)) = &obs {
                        execs.inc();
                    }
                }
            }
        }
        // 5. Termination / liveness.
        if completed.len() == tasks.len() {
            break;
        }
        let alive = state.iter().filter(|s| **s != WorkerState::Dead).count();
        assert!(
            alive > 0,
            "every worker died with {} tasks incomplete",
            tasks.len() - completed.len()
        );
        tick += 1;
    }

    let mut ids: Vec<u64> = completed.into_iter().collect();
    ids.sort_unstable();
    FarmOutcome {
        makespan,
        completed: ids,
        executions,
        reassignments,
        survivors: state.iter().filter(|s| **s != WorkerState::Dead).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: u64, dur: u64) -> Vec<Task> {
        (0..n).map(|id| Task { id, duration: dur }).collect()
    }

    #[test]
    fn heartbeat_monitor_detects_silence_once() {
        let mut m = HeartbeatMonitor::new(3);
        m.register(1, 0);
        m.register(2, 0);
        assert_eq!(m.expired(3), Vec::<usize>::new(), "within timeout");
        m.heard(2, 3);
        // Tick 4: peer 1 has been silent for 4 > 3; peer 2 for 1.
        assert_eq!(m.expired(4), vec![1]);
        assert!(m.is_dead(1));
        assert_eq!(m.expired(4), Vec::<usize>::new(), "reported once");
        // A late heartbeat from a declared-dead peer changes nothing.
        m.heard(1, 5);
        assert!(m.is_dead(1));
        assert_eq!(m.alive(), vec![2]);
        // Peer 2 eventually expires too.
        assert_eq!(m.expired(100), vec![2]);
    }

    #[test]
    fn heartbeat_monitor_out_of_band_death() {
        let mut m = HeartbeatMonitor::new(10);
        m.register(4, 0);
        m.register(7, 0);
        m.mark_dead(7); // socket EOF: no need to wait out the timeout
        assert!(m.is_dead(7));
        assert_eq!(m.alive(), vec![4]);
        assert_eq!(m.expired(100), vec![4], "mark_dead peers never expire");
    }

    #[test]
    fn no_failures_completes_everything_once() {
        let ts = tasks(10, 5);
        let out = run_farm(&ts, 3, &[], 4);
        assert_eq!(out.completed, (0..10).collect::<Vec<_>>());
        assert_eq!(out.executions, 10, "no retries without failures");
        assert_eq!(out.reassignments, 0);
        assert_eq!(out.survivors, 3);
        // 10 tasks of 5 ticks on 3 workers: ceil(10/3) waves * 5.
        assert_eq!(out.makespan, 20);
    }

    #[test]
    fn crash_mid_task_reassigns_and_completes() {
        let ts = tasks(4, 10);
        // Worker 1 dies at tick 3 while running its first task.
        let out = run_farm(
            &ts,
            2,
            &[Crash {
                worker: 1,
                at_tick: 3,
            }],
            5,
        );
        assert_eq!(out.completed, vec![0, 1, 2, 3]);
        assert_eq!(out.survivors, 1);
        assert_eq!(out.reassignments, 1);
        assert_eq!(out.executions, 5, "the orphaned task ran twice");
    }

    #[test]
    fn detection_latency_delays_but_does_not_lose() {
        let ts = tasks(2, 4);
        let fast = run_farm(
            &ts,
            2,
            &[Crash {
                worker: 1,
                at_tick: 1,
            }],
            1,
        );
        let slow = run_farm(
            &ts,
            2,
            &[Crash {
                worker: 1,
                at_tick: 1,
            }],
            50,
        );
        assert_eq!(fast.completed, slow.completed);
        assert!(
            slow.makespan > fast.makespan,
            "longer timeout -> later recovery: {} vs {}",
            slow.makespan,
            fast.makespan
        );
    }

    #[test]
    fn idle_worker_crash_costs_nothing() {
        let ts = tasks(2, 3);
        // Worker 2 dies while idle (only 2 tasks for 3 workers).
        let out = run_farm(
            &ts,
            3,
            &[Crash {
                worker: 2,
                at_tick: 1,
            }],
            2,
        );
        assert_eq!(out.reassignments, 0);
        assert_eq!(out.makespan, 3);
    }

    #[test]
    fn cascading_failures_survive_with_one_worker() {
        let ts = tasks(6, 2);
        let crashes = [
            Crash {
                worker: 0,
                at_tick: 1,
            },
            Crash {
                worker: 1,
                at_tick: 3,
            },
            Crash {
                worker: 2,
                at_tick: 5,
            },
        ];
        let out = run_farm(&ts, 4, &crashes, 2);
        assert_eq!(out.completed.len(), 6);
        assert_eq!(out.survivors, 1);
        assert!(out.reassignments >= 1);
    }

    #[test]
    #[should_panic(expected = "every worker died")]
    fn total_failure_detected_not_hung() {
        let ts = tasks(3, 100);
        run_farm(
            &ts,
            2,
            &[
                Crash {
                    worker: 0,
                    at_tick: 1,
                },
                Crash {
                    worker: 1,
                    at_tick: 1,
                },
            ],
            2,
        );
    }

    #[test]
    fn completion_before_detection_avoids_rerun() {
        // Worker 1 crashes *after* finishing its task but the heartbeat
        // timeout is long: the completed task must not be re-run.
        let ts = tasks(2, 3);
        let out = run_farm(
            &ts,
            2,
            &[Crash {
                worker: 1,
                at_tick: 4,
            }],
            100,
        );
        assert_eq!(out.executions, 2, "no spurious re-execution");
        assert_eq!(out.reassignments, 0);
    }

    #[test]
    fn traced_farm_publishes_counters() {
        let ts = tasks(4, 10);
        let session = TraceSession::new();
        let out = run_farm_traced(
            &ts,
            2,
            &[Crash {
                worker: 1,
                at_tick: 3,
            }],
            5,
            &session,
        );
        let snap = session.snapshot();
        assert_eq!(snap.get("ft.executions"), out.executions);
        assert_eq!(snap.get("ft.reassignments"), out.reassignments);
        assert!(snap.get("ft.heartbeat_timeouts") >= snap.get("ft.reassignments"));
        assert_eq!(snap.get("ft.heartbeat_timeouts"), 1);
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let ts = tasks(6, 4);
        let crashes = [Crash {
            worker: 0,
            at_tick: 2,
        }];
        let session = TraceSession::new();
        let a = run_farm(&ts, 3, &crashes, 3);
        let b = run_farm_traced(&ts, 3, &crashes, 3, &session);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.executions, b.executions);
    }

    #[test]
    fn uneven_durations_balance_across_survivors() {
        let ts: Vec<Task> = (0..8)
            .map(|id| Task {
                id,
                duration: 1 + (id % 4),
            })
            .collect();
        let out = run_farm(
            &ts,
            3,
            &[Crash {
                worker: 0,
                at_tick: 2,
            }],
            3,
        );
        assert_eq!(out.completed.len(), 8);
    }
}
