//! A router whose hub is **this process**: rank 0 of a wire world that
//! participates in the protocol instead of only forwarding.
//!
//! [`crate::transport::WireWorld`] is symmetric — the parent spawns
//! `p` child ranks and does nothing but route. A serving system needs
//! the asymmetric shape: the front-end tier (rank 0) lives in the
//! parent, talks to shard ranks 1..=p over the same frame protocol, and
//! — crucially — **survives a child dying**. Where `WireWorld` panics
//! on a lost rank, `WireHub` turns the broken connection into a
//! [`HubEvent::Down`] carrying the [`TransportError`] the hub observed,
//! so a replication layer (see `pdc-db`'s `serve` module) can promote a
//! backup and rebalance instead of inheriting a crash.
//!
//! The hub is a **single-threaded readiness loop** over
//! [`crate::poll`]: every child connection (and any caller-registered
//! fd — see [`WireHub::register_client`]) lives on one [`Poller`],
//! serviced by [`WireHub::pump`]. Writes go through userspace queues,
//! so a stalled child can never wedge the hub; queued frames survive
//! until delivered or the destination dies (shutdown drains the queues
//! before reaping, closing the old star router's drop-on-drain race).
//!
//! On the mesh topology child↔child traffic never touches the hub at
//! all — [`WireHub::forwarded`] stays 0 — while on the star topology
//! the hub forwards exactly as the symmetric router does. Failure
//! reporting is deduplicated: a rank's [`HubEvent::Down`] fires at most
//! once, and an external detector (a heartbeat monitor) can claim the
//! slot first via [`WireHub::report_dead`] so a later socket error for
//! the same death is silent.

use crate::poll::{send_signal, Conn, Event, Interest, Poller, SIGCONT, SIGSTOP};
use crate::transport::{
    self, bootstrap_children, parse_child_frame, spawn_rank_process, ChildFrame, Envelope,
    TransportError, WireMessage, WireOptions,
};
use crate::world::{Traffic, TrafficStats};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::net::TcpListener;
use std::os::fd::RawFd;
use std::process::{Child, ExitStatus};
use std::time::{Duration, Instant};

/// What the hub's event loop surfaces to the owning process.
#[derive(Debug)]
pub enum HubEvent<M> {
    /// A message addressed to rank 0 (the hub process itself).
    Msg(Envelope<M>),
    /// Child `rank`'s connection died: clean hang-up, torn frame, or a
    /// payload that would not decode. Emitted **at most once per
    /// rank** — across every detection path (read EOF, write failure,
    /// bootstrap death) — after every message that arrived before the
    /// failure. A death claimed by [`WireHub::report_dead`] first is
    /// never emitted at all.
    Down {
        /// The rank whose connection failed.
        rank: usize,
        /// How the failure presented at the transport layer.
        error: TransportError,
    },
    /// Child `rank` delivered its `RESULT` frame (a clean exit).
    Result {
        /// The reporting rank.
        rank: usize,
        /// The undecoded result payload.
        body: Vec<u8>,
    },
}

/// Caller-registered fds get tokens offset past any possible rank
/// (wrapping: the poller only needs tokens to be distinct, and ranks
/// occupy 1..=procs — caller tokens that would wrap into that tiny
/// range, i.e. the few just below `u64::MAX - 2^32`, are reserved).
const USER_BASE: usize = 1 << 32;

/// The hub's single-threaded mutable state, behind a [`RefCell`] so the
/// public API can stay `&self` (the serve front end holds the hub and
/// its own connections in one loop).
struct HubInner<M> {
    procs: usize,
    poller: Poller,
    /// By rank; slot 0 (the hub itself) is always `None`.
    conns: Vec<Option<Conn>>,
    events: VecDeque<HubEvent<M>>,
    /// By rank: a `Down` was emitted or claimed — never report again.
    down_sent: Vec<bool>,
    traffic: Traffic,
    forwarded: u64,
    scratch: Vec<Event>,
    parsed: Vec<ChildFrame>,
}

impl<M: WireMessage> HubInner<M> {
    /// One readiness sweep: flush queued writes, wait up to `timeout`,
    /// service ready connections. Returns caller tokens that polled
    /// ready (see [`WireHub::register_client`]).
    fn sweep(&mut self, timeout: Duration) -> Vec<u64> {
        for rank in 1..=self.procs {
            self.flush_one(rank);
        }
        let mut events = std::mem::take(&mut self.scratch);
        self.poller
            .poll(&mut events, Some(timeout))
            .expect("hub: poll");
        let mut user = Vec::new();
        for ev in events.iter().copied() {
            // Ranks occupy 1..=procs; anything else is caller-owned.
            if ev.token > self.procs {
                user.push(ev.token.wrapping_sub(USER_BASE) as u64);
                continue;
            }
            if ev.writable {
                self.flush_one(ev.token);
            }
            if ev.readable {
                self.read_child(ev.token);
            }
        }
        events.clear();
        self.scratch = events;
        user
    }

    fn flush_one(&mut self, rank: usize) {
        let failed = match self.conns[rank].as_mut() {
            Some(c) if c.wants_write() => c.flush().is_err(),
            _ => false,
        };
        if failed {
            self.down(rank, TransportError::PeerClosed);
        } else {
            self.update_interest(rank);
        }
    }

    fn update_interest(&mut self, rank: usize) {
        if let Some(c) = &self.conns[rank] {
            let want = if c.wants_write() {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            self.poller.reregister(rank, want);
        }
    }

    fn read_child(&mut self, rank: usize) {
        let Some(conn) = self.conns[rank].as_mut() else {
            return;
        };
        if conn.read_ready().is_err() {
            self.down(rank, TransportError::PeerClosed);
            return;
        }
        // Parse first, dispatch second: forwarding needs a mutable
        // borrow of the destination's conn.
        let mut bad_kind = false;
        loop {
            match parse_child_frame(conn.buffered()) {
                Ok(Some((n, frame))) => {
                    conn.consume(n);
                    self.parsed.push(frame);
                }
                Ok(None) => break,
                Err(_) => {
                    bad_kind = true;
                    break;
                }
            }
        }
        let eof = conn.is_eof();
        let torn = eof && !conn.buffered().is_empty();
        let frames: Vec<ChildFrame> = self.parsed.drain(..).collect();
        for frame in frames {
            self.dispatch(rank, frame);
        }
        if bad_kind {
            self.down(rank, TransportError::Undecodable);
        } else if eof {
            self.down(
                rank,
                if torn {
                    TransportError::Truncated
                } else {
                    TransportError::PeerClosed
                },
            );
        }
    }

    fn dispatch(&mut self, rank: usize, frame: ChildFrame) {
        match frame {
            ChildFrame::Msg {
                dst,
                tag,
                modeled,
                body,
            } => {
                self.traffic.count(1, modeled);
                if dst == 0 {
                    match M::from_bytes(&body) {
                        Some(msg) => self.events.push_back(HubEvent::Msg(Envelope {
                            src: rank,
                            tag,
                            msg,
                        })),
                        None => self.down(rank, TransportError::Undecodable),
                    }
                } else if dst <= self.procs {
                    // Star-topology forwarding; a dead destination is a
                    // tolerated in-flight loss.
                    self.forwarded += 1;
                    let _ = self.queue_to(dst, &transport::down_frame(rank, tag, &body));
                } else {
                    self.down(rank, TransportError::Undecodable);
                }
            }
            ChildFrame::Result(body) => self.events.push_back(HubEvent::Result { rank, body }),
            // Mesh children report traffic for the symmetric world's
            // benefit; the hub counts what it sees itself.
            ChildFrame::Stats(_) => {}
        }
    }

    /// Queue a downward frame and flush opportunistically.
    fn queue_to(&mut self, dst: usize, frame: &[u8]) -> Result<(), TransportError> {
        let failed = match self.conns[dst].as_mut() {
            None => return Err(TransportError::PeerClosed),
            Some(c) => {
                c.queue(frame);
                c.flush().is_err()
            }
        };
        if failed {
            self.down(dst, TransportError::PeerClosed);
            return Err(TransportError::PeerClosed);
        }
        self.update_interest(dst);
        Ok(())
    }

    /// Tear down `rank`'s connection and emit `Down` — unless this
    /// rank's death was already reported or claimed (dedup: heartbeat
    /// expiry and a socket error for the same death must not
    /// double-promote anything upstairs).
    fn down(&mut self, rank: usize, error: TransportError) {
        self.poller.deregister(rank);
        self.conns[rank] = None;
        if !self.down_sent[rank] {
            self.down_sent[rank] = true;
            self.events.push_back(HubEvent::Down { rank, error });
        }
    }

    fn any_wants_write(&self) -> bool {
        self.conns.iter().flatten().any(|c| c.wants_write())
    }
}

/// A live hub world: child rank processes 1..=`procs`, this process as
/// rank 0. Dropping the hub without [`WireHub::shutdown`] leaks child
/// processes — always shut down.
pub struct WireHub<M: WireMessage> {
    inner: RefCell<HubInner<M>>,
    children: Vec<Child>, // indexed by rank - 1
}

impl<M: WireMessage> WireHub<M> {
    /// Spawn `opts.procs` child rank processes (ranks 1..=procs; this
    /// process is rank 0) and start routing. Children see a world of
    /// `opts.procs + 1` ranks.
    ///
    /// Unlike the symmetric world, bootstrap is fault-tolerant: a child
    /// that dies before or during its handshake (even SIGKILLed halfway
    /// through) becomes an immediate [`HubEvent::Down`] instead of a
    /// panic or a hang, and on the mesh its table entry stays empty so
    /// no peer ever dials or waits on it.
    pub fn spawn(opts: &WireOptions) -> io::Result<WireHub<M>> {
        let p = opts.procs;
        assert!(p > 0, "hub world needs at least one child rank");
        let mesh = opts.topology == transport::WireTopology::Mesh;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();

        let mut children: Vec<Child> = (1..=p)
            .map(|rank| spawn_rank_process(opts, rank, p + 1, &addr, true))
            .collect::<io::Result<_>>()?;
        let socks = bootstrap_children(&listener, &mut children, 1, p + 1, mesh, true, "hub");

        let mut poller = Poller::new();
        let mut conns: Vec<Option<Conn>> = vec![None]; // rank 0: the hub itself
        let mut events = VecDeque::new();
        let mut down_sent = vec![false; p + 1];
        for (i, sock) in socks.into_iter().enumerate() {
            let rank = i + 1;
            match sock {
                Some(s) => {
                    let conn = Conn::new(s)?;
                    poller.register(conn.fd(), rank, Interest::READABLE);
                    conns.push(Some(conn));
                }
                None => {
                    // Died during bootstrap: surface it right away.
                    conns.push(None);
                    down_sent[rank] = true;
                    events.push_back(HubEvent::Down {
                        rank,
                        error: TransportError::PeerClosed,
                    });
                }
            }
        }

        Ok(WireHub {
            inner: RefCell::new(HubInner {
                procs: p,
                poller,
                conns,
                events,
                down_sent,
                traffic: Traffic::default(),
                forwarded: 0,
                scratch: Vec::new(),
                parsed: Vec::new(),
            }),
            children,
        })
    }

    /// Number of child ranks (the world size is `procs() + 1`).
    pub fn procs(&self) -> usize {
        self.inner.borrow().procs
    }

    /// Send `msg` from rank 0 to child rank `dst`. The frame is queued
    /// and flushed opportunistically — a full socket buffer queues in
    /// userspace rather than blocking the caller. `Err(PeerClosed)`
    /// means the child is already known dead; a failure detected *by*
    /// this send surfaces as a [`HubEvent::Down`] like any other.
    pub fn send(&self, dst: usize, tag: u32, msg: &M) -> Result<(), TransportError> {
        let mut inner = self.inner.borrow_mut();
        assert!(dst >= 1 && dst <= inner.procs, "hub send to bad rank {dst}");
        inner.traffic.count(1, msg.size_bytes());
        let frame = transport::down_frame(0, tag, &msg.to_bytes());
        inner.queue_to(dst, &frame)
    }

    /// Next pending event, if any (non-blocking: runs one zero-timeout
    /// sweep when the queue is empty).
    pub fn try_event(&self) -> Option<HubEvent<M>> {
        let mut inner = self.inner.borrow_mut();
        if inner.events.is_empty() {
            inner.sweep(Duration::ZERO);
        }
        inner.events.pop_front()
    }

    /// Next pending event, waiting up to `timeout`.
    pub fn event_timeout(&self, timeout: Duration) -> Option<HubEvent<M>> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut inner = self.inner.borrow_mut();
            if let Some(ev) = inner.events.pop_front() {
                return Some(ev);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            inner.sweep(deadline - now);
        }
    }

    /// Run one readiness sweep over every connection the hub knows —
    /// children **and** caller-registered fds — waiting up to `timeout`
    /// for something to happen. Returns the caller tokens that polled
    /// ready. This is the blocking point of an event-loop front end:
    /// instead of sleeping between sweeps, block here and wake on the
    /// first byte from any direction.
    pub fn pump(&self, timeout: Duration) -> Vec<u64> {
        self.inner.borrow_mut().sweep(timeout)
    }

    /// Register a caller-owned fd (e.g. a client socket or listener)
    /// with the hub's poller under `token`; [`WireHub::pump`] reports
    /// it when readable. The fd must outlive the registration.
    pub fn register_client(&self, fd: RawFd, token: u64) {
        self.inner.borrow_mut().poller.register(
            fd,
            USER_BASE.wrapping_add(token as usize),
            Interest::READABLE,
        );
    }

    /// Forget a caller-registered fd. No-op if absent.
    pub fn deregister_client(&self, token: u64) {
        self.inner
            .borrow_mut()
            .poller
            .deregister(USER_BASE.wrapping_add(token as usize));
    }

    /// Kill child rank `rank`'s process (SIGKILL). The death then flows
    /// through the normal failure path: EOF → [`HubEvent::Down`] with
    /// [`TransportError::PeerClosed`]. This is the fault-injection hook
    /// the serve gate uses; a real crash looks identical.
    pub fn kill(&mut self, rank: usize) -> io::Result<()> {
        assert!(
            rank >= 1 && rank <= self.inner.borrow().procs,
            "hub kill of bad rank"
        );
        self.children[rank - 1].kill()
    }

    /// SIGSTOP child rank `rank`: the process freezes but its sockets
    /// stay open, so **only a heartbeat detector** can tell it is gone
    /// — the fault-injection hook for testing detector-vs-socket races.
    pub fn pause(&self, rank: usize) -> io::Result<()> {
        assert!(
            rank >= 1 && rank <= self.inner.borrow().procs,
            "hub pause of bad rank"
        );
        send_signal(self.children[rank - 1].id(), SIGSTOP)
    }

    /// SIGCONT a paused child.
    pub fn resume(&self, rank: usize) -> io::Result<()> {
        assert!(
            rank >= 1 && rank <= self.inner.borrow().procs,
            "hub resume of bad rank"
        );
        send_signal(self.children[rank - 1].id(), SIGCONT)
    }

    /// An external failure detector (heartbeat expiry) claims `rank`'s
    /// death: tear down the connection **without** emitting a `Down`
    /// event (the caller IS the detector — it already knows). Returns
    /// `false` if the death was already reported or claimed, so exactly
    /// one detection wins no matter how signals race.
    pub fn report_dead(&self, rank: usize) -> bool {
        let mut inner = self.inner.borrow_mut();
        assert!(
            rank >= 1 && rank <= inner.procs,
            "hub report_dead of bad rank"
        );
        if inner.down_sent[rank] {
            return false;
        }
        inner.down_sent[rank] = true;
        inner.poller.deregister(rank);
        inner.conns[rank] = None;
        true
    }

    /// Router traffic counted from `modeled` frame fields, plus the
    /// hub's own sends. (Mesh peer traffic never passes the hub and is
    /// not counted here.)
    pub fn stats(&self) -> TrafficStats {
        self.inner.borrow().traffic.stats()
    }

    /// Data frames this hub relayed between children. Star traffic
    /// forwards through here (two hops); on the mesh this stays 0 —
    /// the acceptance witness that child↔child messages are one-hop.
    pub fn forwarded(&self) -> u64 {
        self.inner.borrow().forwarded
    }

    /// Drain every outbound write queue (bounded), then reap every
    /// child. Returns exit statuses by rank (index 0 unused as `None`);
    /// killed children report their signal status rather than failing
    /// the shutdown. Draining before reaping is what guarantees frames
    /// queued during a stop/exit protocol reach slow children even
    /// after their faster peers are already gone.
    pub fn shutdown(mut self) -> Vec<Option<ExitStatus>> {
        {
            let mut inner = self.inner.borrow_mut();
            let deadline = Instant::now() + Duration::from_secs(10);
            while inner.any_wants_write() && Instant::now() < deadline {
                inner.sweep(Duration::from_millis(20));
            }
        }
        let mut statuses = vec![None];
        for c in &mut self.children {
            statuses.push(Some(c.wait().expect("hub: wait for child")));
        }
        statuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use crate::WireWorld;

    /// Child entry for the hub tests: echo every (tag, value) back to
    /// the hub with the value incremented, exit on tag 99.
    fn echo_child() -> ! {
        let env = transport::take_child_env().expect("hub child env");
        let t: crate::WireTransport<u64> =
            crate::WireTransport::connect_env(&env).expect("hub child connect");
        loop {
            match t.try_recv() {
                Ok(env) if env.tag == 99 => std::process::exit(0),
                Ok(e) => {
                    // Peer-addressed probe: value 1000+r means "forward
                    // to rank r", exercising child→child routing (via
                    // the hub on star, peer-direct on mesh).
                    if e.msg >= 1000 {
                        let dst = (e.msg - 1000) as usize;
                        t.try_send(0, dst, 7, 555).expect("fwd");
                    } else {
                        t.try_send(0, 0, e.tag, e.msg + 1).expect("echo");
                    }
                }
                Err(_) => std::process::exit(0),
            }
        }
    }

    /// Child entry for the drain test: count tag-7 strings, report the
    /// count on tag 99, exit.
    fn slurp_child() -> ! {
        let env = transport::take_child_env().expect("hub child env");
        let t: crate::WireTransport<String> =
            crate::WireTransport::connect_env(&env).expect("hub child connect");
        let mut count = 0u64;
        loop {
            match t.try_recv() {
                Ok(e) if e.tag == 99 => {
                    t.try_send(0, 0, 9, count.to_string()).expect("report");
                    std::process::exit(0);
                }
                Ok(_) => count += 1,
                Err(_) => std::process::exit(1),
            }
        }
    }

    fn routes_and_reports(opts: WireOptions, want_fwd: u64) {
        let mut hub: WireHub<u64> = WireHub::spawn(&opts).expect("spawn");

        // Round-trip to both children.
        hub.send(1, 3, &10).expect("send");
        hub.send(2, 4, &20).expect("send");
        let mut got = Vec::new();
        while got.len() < 2 {
            match hub.event_timeout(Duration::from_secs(10)).expect("event") {
                HubEvent::Msg(e) => got.push((e.src, e.tag, e.msg)),
                other => panic!("unexpected {other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![(1, 3, 11), (2, 4, 21)]);

        // Child→child: ask rank 1 to poke rank 2; rank 2 echoes the
        // poke (555 + 1) back to us.
        hub.send(1, 5, &1002).expect("send");
        match hub.event_timeout(Duration::from_secs(10)).expect("event") {
            HubEvent::Msg(e) => assert_eq!((e.src, e.msg), (2, 556)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            hub.forwarded(),
            want_fwd,
            "hop-count witness: star forwards the poke, mesh goes direct"
        );

        // Kill rank 1: the death must surface as Down(PeerClosed), not
        // a panic anywhere in the router.
        hub.kill(1).expect("kill");
        match hub.event_timeout(Duration::from_secs(10)).expect("down") {
            HubEvent::Down { rank, error } => {
                assert_eq!(rank, 1);
                assert_eq!(error, TransportError::PeerClosed);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Rank 2 still serves.
        hub.send(2, 6, &30).expect("send");
        match hub.event_timeout(Duration::from_secs(10)).expect("event") {
            HubEvent::Msg(e) => assert_eq!((e.src, e.msg), (2, 31)),
            other => panic!("unexpected {other:?}"),
        }
        // Sending to the dead rank is a typed error, not a panic.
        assert_eq!(hub.send(1, 3, &1), Err(TransportError::PeerClosed));

        hub.send(2, 99, &0).expect("stop");
        let statuses = hub.shutdown();
        assert!(statuses[2].expect("rank 2 status").success());
        assert!(!statuses[1].expect("rank 1 status").success(), "killed");
    }

    #[test]
    fn hub_routes_and_reports_child_death() {
        let path = "hub::tests::hub_routes_and_reports_child_death";
        if let Some(id) = WireWorld::child_world_id() {
            if id.starts_with(path) {
                echo_child();
            }
        }
        // Same protocol, both topologies; only the hop counts differ.
        let star = WireOptions {
            world_id: format!("{path}#star"),
            ..WireOptions::for_test(2, path)
        }
        .star();
        routes_and_reports(star, 1);
        let mesh = WireOptions {
            world_id: format!("{path}#mesh"),
            ..WireOptions::for_test(2, path)
        };
        routes_and_reports(mesh, 0);
    }

    #[test]
    fn hub_deduplicates_overlapping_death_signals() {
        let path = "hub::tests::hub_deduplicates_overlapping_death_signals";
        if WireWorld::child_world_id().as_deref() == Some(path) {
            echo_child();
        }
        let mut hub: WireHub<u64> = WireHub::spawn(&WireOptions::for_test(2, path)).expect("spawn");

        // An external detector (standing in for heartbeat expiry)
        // claims rank 1's death first...
        assert!(hub.report_dead(1), "first claim wins");
        assert!(!hub.report_dead(1), "second claim loses");
        // ...then the socket-level death fires for the same rank.
        hub.kill(1).expect("kill");

        // No Down event may surface: the detector already owns this
        // death. Sweep long enough for the EOF to be observed.
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline {
            if let Some(ev) = hub.event_timeout(Duration::from_millis(50)) {
                panic!("dedup failed: unexpected event {ev:?}");
            }
        }

        // Rank 2 is unaffected.
        hub.send(2, 4, &20).expect("send");
        match hub.event_timeout(Duration::from_secs(10)).expect("event") {
            HubEvent::Msg(e) => assert_eq!((e.src, e.msg), (2, 21)),
            other => panic!("unexpected {other:?}"),
        }
        hub.send(2, 99, &0).expect("stop");
        hub.shutdown();
    }

    #[test]
    fn hub_boot_death_surfaces_as_down_not_hang() {
        let path = "hub::tests::hub_boot_death_surfaces_as_down_not_hang";
        if WireWorld::child_world_id().as_deref() == Some(path) {
            // Rank 1 dies before completing its handshake; rank 2 is a
            // normal echo child. The mesh table must mark rank 1 absent
            // so rank 2 never dials or waits on it.
            if std::env::var(transport::ENV_RANK).as_deref() == Ok("1") {
                std::process::exit(0);
            }
            echo_child();
        }
        let hub: WireHub<u64> = WireHub::spawn(&WireOptions::for_test(2, path)).expect("spawn");
        match hub.event_timeout(Duration::from_secs(10)).expect("down") {
            HubEvent::Down { rank, error } => {
                assert_eq!(rank, 1);
                assert_eq!(error, TransportError::PeerClosed);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(hub.send(1, 3, &1), Err(TransportError::PeerClosed));
        // The survivor works.
        hub.send(2, 4, &20).expect("send");
        match hub.event_timeout(Duration::from_secs(10)).expect("event") {
            HubEvent::Msg(e) => assert_eq!((e.src, e.msg), (2, 21)),
            other => panic!("unexpected {other:?}"),
        }
        hub.send(2, 99, &0).expect("stop");
        let statuses = hub.shutdown();
        assert!(statuses[2].expect("rank 2 status").success());
    }

    #[test]
    fn hub_drains_queued_frames_across_a_pause() {
        let path = "hub::tests::hub_drains_queued_frames_across_a_pause";
        if WireWorld::child_world_id().as_deref() == Some(path) {
            slurp_child();
        }
        let hub: WireHub<String> = WireHub::spawn(&WireOptions::for_test(1, path)).expect("spawn");

        // Freeze the child, then queue far more than a socket buffer
        // holds: the hub's userspace write queue must absorb it all
        // without blocking or dropping.
        hub.pause(1).expect("pause");
        std::thread::sleep(Duration::from_millis(30));
        let blob = "x".repeat(64 * 1024);
        const K: u64 = 200;
        for _ in 0..K {
            hub.send(1, 7, &blob).expect("burst");
        }
        hub.send(1, 99, &String::new()).expect("stop marker");
        hub.resume(1).expect("resume");

        // Every queued frame must arrive, in order, before the stop
        // marker — the child's count is the witness.
        match hub.event_timeout(Duration::from_secs(30)).expect("count") {
            HubEvent::Msg(e) => assert_eq!(e.msg, K.to_string(), "no frame dropped or reordered"),
            other => panic!("unexpected {other:?}"),
        }
        let statuses = hub.shutdown();
        assert!(statuses[1].expect("rank 1 status").success());
    }
}
