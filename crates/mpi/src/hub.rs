//! A star router whose hub is **this process**: rank 0 of a wire world
//! that participates in the protocol instead of only forwarding.
//!
//! [`crate::transport::WireWorld`] is symmetric — the parent spawns
//! `p` child ranks and does nothing but route. A serving system needs
//! the asymmetric shape: the front-end tier (rank 0) lives in the
//! parent, talks to shard ranks 1..=p over the same frame protocol, and
//! — crucially — **survives a child dying**. Where `WireWorld` panics
//! on a lost rank, `WireHub` turns the broken connection into a
//! [`HubEvent::Down`] carrying the [`TransportError`] the reader
//! observed, so a replication layer (see `pdc-db`'s `serve` module) can
//! promote a backup and rebalance instead of inheriting a crash.
//!
//! Frames are exactly the `WireWorld` wire protocol (hello, `MSG`,
//! `RESULT`, downward frames), so children built on
//! [`WireTransport::connect`] work unchanged. Child→child traffic is
//! forwarded through the hub like the symmetric router does; frames
//! addressed to rank 0 are decoded and surfaced as [`HubEvent::Msg`].

use crate::transport::{
    self, read_body, read_u32, read_u64, spawn_rank_process, Envelope, TransportError, WireMessage,
    WireOptions, FRAME_MSG, FRAME_RESULT,
};
use crate::world::{Traffic, TrafficStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, ExitStatus};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the hub's reader threads surface to the owning process.
#[derive(Debug)]
pub enum HubEvent<M> {
    /// A message addressed to rank 0 (the hub process itself).
    Msg(Envelope<M>),
    /// Child `rank`'s connection died: clean hang-up, torn frame, or a
    /// payload that would not decode. Emitted at most once per rank,
    /// after every message that arrived before the failure.
    Down {
        /// The rank whose connection failed.
        rank: usize,
        /// How the failure presented at the transport layer.
        error: TransportError,
    },
    /// Child `rank` delivered its `RESULT` frame (a clean exit).
    Result {
        /// The reporting rank.
        rank: usize,
        /// The undecoded result payload.
        body: Vec<u8>,
    },
}

/// A live hub world: child rank processes 1..=`procs`, this process as
/// rank 0. Dropping the hub without [`WireHub::shutdown`] leaks child
/// processes — always shut down.
pub struct WireHub<M: WireMessage> {
    procs: usize,
    inbox: Receiver<HubEvent<M>>,
    // Indexed by rank; slot 0 (the hub itself) is None. A writer slot
    // whose channel is disconnected means that child is gone.
    out_tx: Vec<Option<Sender<Vec<u8>>>>,
    children: Vec<Child>, // indexed by rank - 1
    readers: Vec<JoinHandle<()>>,
    writers: Vec<JoinHandle<()>>,
    traffic: Arc<Traffic>,
}

impl<M: WireMessage> WireHub<M> {
    /// Spawn `opts.procs` child rank processes (ranks 1..=procs; this
    /// process is rank 0) and start routing. Children see a world of
    /// `opts.procs + 1` ranks.
    ///
    /// # Panics
    /// Panics if a child dies before connecting or none connect within
    /// the 60s accept deadline — startup failure is a bug, not a
    /// tolerated fault; fault tolerance begins once the world is up.
    pub fn spawn(opts: &WireOptions) -> io::Result<WireHub<M>> {
        let p = opts.procs;
        assert!(p > 0, "hub world needs at least one child rank");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();

        let mut children: Vec<Child> = (1..=p)
            .map(|rank| spawn_rank_process(opts, rank, p + 1, &addr))
            .collect::<io::Result<_>>()?;
        let socks = accept_hellos(&listener, &mut children);

        let traffic = Arc::new(Traffic::default());
        let (ev_tx, ev_rx) = unbounded::<HubEvent<M>>();
        let mut out_tx: Vec<Option<Sender<Vec<u8>>>> = vec![None];
        let mut out_rx = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Vec<u8>>();
            out_tx.push(Some(tx));
            out_rx.push(rx);
        }

        let readers = socks
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let rank = i + 1;
                let stream = s.try_clone().expect("hub: clone for reader");
                let fwd_tx = out_tx.clone();
                let ev_tx = ev_tx.clone();
                let traffic = Arc::clone(&traffic);
                std::thread::spawn(move || read_from_child(rank, stream, &fwd_tx, &ev_tx, &traffic))
            })
            .collect();

        let writers = socks
            .into_iter()
            .zip(out_rx)
            .map(|(mut stream, rx)| {
                std::thread::spawn(move || {
                    for frame in rx {
                        // A dead child is a tolerated fault here: stop
                        // writing and let the reader's EOF surface it as
                        // a Down event. (Contrast WireWorld, which
                        // panics the router on delivery failure.)
                        if stream.write_all(&frame).is_err() {
                            return;
                        }
                    }
                })
            })
            .collect();

        Ok(WireHub {
            procs: p,
            inbox: ev_rx,
            out_tx,
            children,
            readers,
            writers,
            traffic,
        })
    }

    /// Number of child ranks (the world size is `procs() + 1`).
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Send `msg` from rank 0 to child rank `dst`. `Err(PeerClosed)`
    /// means the child's writer is already gone; callers treat it like
    /// any other in-flight loss (the `Down` event does the accounting).
    pub fn send(&self, dst: usize, tag: u32, msg: &M) -> Result<(), TransportError> {
        assert!(dst >= 1 && dst <= self.procs, "hub send to bad rank {dst}");
        let body = msg.to_bytes();
        self.traffic.count(1, msg.size_bytes());
        let frame = transport::down_frame(0, tag, &body);
        match &self.out_tx[dst] {
            Some(tx) => tx.send(frame).map_err(|_| TransportError::PeerClosed),
            None => Err(TransportError::PeerClosed),
        }
    }

    /// Next pending event, if any (non-blocking).
    pub fn try_event(&self) -> Option<HubEvent<M>> {
        self.inbox.try_recv().ok()
    }

    /// Next pending event, waiting up to `timeout`.
    pub fn event_timeout(&self, timeout: Duration) -> Option<HubEvent<M>> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// Kill child rank `rank`'s process (SIGKILL). The death then flows
    /// through the normal failure path: reader EOF → [`HubEvent::Down`]
    /// with [`TransportError::PeerClosed`]. This is the fault-injection
    /// hook the serve gate uses; a real crash looks identical.
    pub fn kill(&mut self, rank: usize) -> io::Result<()> {
        assert!(rank >= 1 && rank <= self.procs, "hub kill of bad rank");
        self.children[rank - 1].kill()
    }

    /// Router traffic counted from `modeled` frame fields, plus the
    /// hub's own sends.
    pub fn stats(&self) -> TrafficStats {
        self.traffic.stats()
    }

    /// Close the downward channels, join the router threads, and reap
    /// every child. Returns exit statuses by rank (index 0 unused as
    /// `None`); killed children report their signal status rather than
    /// failing the shutdown.
    pub fn shutdown(mut self) -> Vec<Option<ExitStatus>> {
        for slot in &mut self.out_tx {
            *slot = None; // writers drain and exit
        }
        for h in self.readers.drain(..) {
            h.join().expect("hub reader thread panicked");
        }
        for h in self.writers.drain(..) {
            h.join().expect("hub writer thread panicked");
        }
        let mut statuses = vec![None];
        for c in &mut self.children {
            statuses.push(Some(c.wait().expect("hub: wait for child")));
        }
        statuses
    }
}

/// Accept one hello per child, failing fast if a child dies before
/// connecting (same policy as `WireWorld::accept_ranks`, shifted to
/// ranks 1..=p).
fn accept_hellos(listener: &TcpListener, children: &mut [Child]) -> Vec<TcpStream> {
    let p = children.len();
    listener
        .set_nonblocking(true)
        .expect("hub: nonblocking listener");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut socks: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
    let mut connected = 0;
    while connected < p {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false).expect("hub: blocking conn");
                s.set_nodelay(true).ok();
                let mut hello = [0u8; 4];
                (&s).read_exact(&mut hello).expect("hub: read hello");
                let r = u32::from_le_bytes(hello) as usize;
                assert!(r >= 1 && r <= p, "hello from out-of-range rank {r}");
                assert!(socks[r - 1].is_none(), "duplicate hello from rank {r}");
                socks[r - 1] = Some(s);
                connected += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                for (i, c) in children.iter_mut().enumerate() {
                    if let Some(status) = c.try_wait().expect("hub: try_wait") {
                        panic!(
                            "hub child rank {} exited ({status}) before connecting; \
                             check that WireOptions::child_args re-enter this world",
                            i + 1
                        );
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "hub children failed to connect within 60s"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("hub: accept: {e}"),
        }
    }
    socks
        .into_iter()
        .map(|s| s.expect("all connected"))
        .collect()
}

/// Reader loop for one child: decode hub-addressed messages, forward
/// peer-addressed frames (re-framed with the verified source), surface
/// the terminal condition — clean or not — as exactly one event.
fn read_from_child<M: WireMessage>(
    rank: usize,
    stream: TcpStream,
    fwd_tx: &[Option<Sender<Vec<u8>>>],
    ev_tx: &Sender<HubEvent<M>>,
    traffic: &Traffic,
) {
    let mut r = BufReader::new(stream);
    let down = |error| {
        ev_tx.send(HubEvent::Down { rank, error }).ok();
    };
    loop {
        let mut kind = [0u8; 1];
        match r.read_exact(&mut kind) {
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return down(TransportError::PeerClosed)
            }
            Err(_) => return down(TransportError::PeerClosed),
            Ok(()) => {}
        }
        match kind[0] {
            FRAME_MSG => {
                let (dst, tag, modeled, body) = match (
                    read_u32(&mut r),
                    read_u32(&mut r),
                    read_u64(&mut r),
                    read_body(&mut r),
                ) {
                    (Ok(d), Ok(t), Ok(m), Ok(b)) => (d as usize, t, m, b),
                    _ => return down(TransportError::Truncated),
                };
                traffic.count(1, modeled);
                if dst == 0 {
                    match M::from_bytes(&body) {
                        Some(msg) => {
                            ev_tx
                                .send(HubEvent::Msg(Envelope {
                                    src: rank,
                                    tag,
                                    msg,
                                }))
                                .ok();
                        }
                        None => return down(TransportError::Undecodable),
                    }
                } else if dst < fwd_tx.len() {
                    let frame = transport::down_frame(rank, tag, &body);
                    if let Some(tx) = &fwd_tx[dst] {
                        tx.send(frame).ok(); // dead destination: tolerated
                    }
                } else {
                    return down(TransportError::Undecodable);
                }
            }
            FRAME_RESULT => match read_body(&mut r) {
                Ok(body) => {
                    ev_tx.send(HubEvent::Result { rank, body }).ok();
                }
                Err(_) => return down(TransportError::Truncated),
            },
            _ => return down(TransportError::Undecodable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use crate::WireWorld;

    /// Child entry for the hub tests: echo every (tag, value) back to
    /// the hub with the value incremented, exit on tag 99.
    fn echo_child() -> ! {
        let env = transport::take_child_env().expect("hub child env");
        let t: crate::WireTransport<u64> =
            crate::WireTransport::connect(&env.addr, env.rank).expect("hub child connect");
        loop {
            match t.try_recv() {
                Ok(env) if env.tag == 99 => std::process::exit(0),
                Ok(e) => {
                    // Peer-addressed probe: value 1000+r means "forward
                    // to rank r", exercising child→child routing.
                    if e.msg >= 1000 {
                        let dst = (e.msg - 1000) as usize;
                        t.try_send(0, dst, 7, 555).expect("fwd");
                    } else {
                        t.try_send(0, 0, e.tag, e.msg + 1).expect("echo");
                    }
                }
                Err(_) => std::process::exit(0),
            }
        }
    }

    fn hub_world(procs: usize, test_path: &str) -> WireOptions {
        WireOptions::for_test(procs, test_path)
    }

    #[test]
    fn hub_routes_and_reports_child_death() {
        let path = "hub::tests::hub_routes_and_reports_child_death";
        if WireWorld::child_world_id().as_deref() == Some(path) {
            echo_child();
        }
        let mut hub: WireHub<u64> = WireHub::spawn(&hub_world(2, path)).expect("spawn");

        // Round-trip to both children.
        hub.send(1, 3, &10).expect("send");
        hub.send(2, 4, &20).expect("send");
        let mut got = Vec::new();
        while got.len() < 2 {
            match hub.event_timeout(Duration::from_secs(10)).expect("event") {
                HubEvent::Msg(e) => got.push((e.src, e.tag, e.msg)),
                other => panic!("unexpected {other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![(1, 3, 11), (2, 4, 21)]);

        // Child→child forwarding: ask rank 1 to poke rank 2; rank 2
        // echoes the poke (555 + 1) back to us.
        hub.send(1, 5, &1002).expect("send");
        match hub.event_timeout(Duration::from_secs(10)).expect("event") {
            HubEvent::Msg(e) => assert_eq!((e.src, e.msg), (2, 556)),
            other => panic!("unexpected {other:?}"),
        }

        // Kill rank 1: the death must surface as Down(PeerClosed), not
        // a panic anywhere in the router.
        hub.kill(1).expect("kill");
        match hub.event_timeout(Duration::from_secs(10)).expect("down") {
            HubEvent::Down { rank, error } => {
                assert_eq!(rank, 1);
                assert_eq!(error, TransportError::PeerClosed);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Rank 2 still serves.
        hub.send(2, 6, &30).expect("send");
        match hub.event_timeout(Duration::from_secs(10)).expect("event") {
            HubEvent::Msg(e) => assert_eq!((e.src, e.msg), (2, 31)),
            other => panic!("unexpected {other:?}"),
        }
        // Sending to the dead rank is an error, not a panic.
        std::thread::sleep(Duration::from_millis(50));
        let _ = hub.send(1, 3, &1); // may still enqueue; must not panic

        hub.send(2, 99, &0).expect("stop");
        let statuses = hub.shutdown();
        assert!(statuses[2].expect("rank 2 status").success());
        assert!(!statuses[1].expect("rank 1 status").success(), "killed");
    }
}
