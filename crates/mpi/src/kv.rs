//! A client-server key-value store: the request/reply pattern.
//!
//! CS87's "C socket client-server" short lab and CS45's distributed-
//! systems introduction both teach the same structure: a server loop
//! services typed requests from concurrent clients; clients block on
//! replies. Channels stand in for sockets; the protocol (request enum,
//! reply enum, versioned writes) is the real content.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;

/// Client requests.
#[derive(Debug, Clone)]
pub enum Request {
    /// Read a key.
    Get {
        /// Key to read.
        key: String,
    },
    /// Write a key, returning the new version.
    Put {
        /// Key to write.
        key: String,
        /// Value to store.
        value: String,
    },
    /// Delete a key.
    Delete {
        /// Key to delete.
        key: String,
    },
    /// Compare-and-swap: write only if the current version matches.
    Cas {
        /// Key to write.
        key: String,
        /// Expected current version.
        expect_version: u64,
        /// Value to store on success.
        value: String,
    },
    /// Shut the server down.
    Shutdown,
}

/// Server replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Value and its version.
    Value {
        /// The stored value.
        value: String,
        /// Its version number.
        version: u64,
    },
    /// Key absent.
    NotFound,
    /// Write accepted; the new version.
    Ok {
        /// Version after the write.
        version: u64,
    },
    /// CAS failed; the actual current version.
    CasConflict {
        /// The version the server holds.
        actual_version: u64,
    },
    /// Server acknowledged shutdown.
    Bye,
}

struct Envelope {
    req: Request,
    reply_to: Sender<Reply>,
}

/// A handle for sending requests to a running server.
#[derive(Clone)]
pub struct Client {
    tx: Sender<Envelope>,
}

impl Client {
    /// Send a request and block for the reply.
    pub fn call(&self, req: Request) -> Reply {
        let (rtx, rrx) = unbounded();
        self.tx
            .send(Envelope { req, reply_to: rtx })
            .expect("server has exited");
        rrx.recv().expect("server dropped the reply channel")
    }

    /// Convenience: get a key's value.
    pub fn get(&self, key: &str) -> Option<String> {
        match self.call(Request::Get { key: key.into() }) {
            Reply::Value { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Convenience: put a key, returning the new version.
    pub fn put(&self, key: &str, value: &str) -> u64 {
        match self.call(Request::Put {
            key: key.into(),
            value: value.into(),
        }) {
            Reply::Ok { version } => version,
            other => panic!("unexpected put reply {other:?}"),
        }
    }
}

/// A running server: the thread plus the request statistics on join.
pub struct Server {
    handle: JoinHandle<ServerStats>,
    tx: Sender<Envelope>,
}

/// Counters the server reports at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests serviced (excluding Shutdown).
    pub requests: u64,
    /// Get requests that found the key.
    pub hits: u64,
    /// CAS attempts rejected.
    pub cas_conflicts: u64,
}

impl Server {
    /// Start a server thread; returns the server handle and a client.
    pub fn start() -> (Server, Client) {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
        let handle = std::thread::spawn(move || {
            let mut store: HashMap<String, (String, u64)> = HashMap::new();
            let mut stats = ServerStats::default();
            while let Ok(Envelope { req, reply_to }) = rx.recv() {
                let reply = match req {
                    Request::Shutdown => {
                        let _ = reply_to.send(Reply::Bye);
                        break;
                    }
                    Request::Get { key } => {
                        stats.requests += 1;
                        match store.get(&key) {
                            Some((v, ver)) => {
                                stats.hits += 1;
                                Reply::Value {
                                    value: v.clone(),
                                    version: *ver,
                                }
                            }
                            None => Reply::NotFound,
                        }
                    }
                    Request::Put { key, value } => {
                        stats.requests += 1;
                        let entry = store.entry(key).or_insert((String::new(), 0));
                        entry.0 = value;
                        entry.1 += 1;
                        Reply::Ok { version: entry.1 }
                    }
                    Request::Delete { key } => {
                        stats.requests += 1;
                        match store.remove(&key) {
                            Some(_) => Reply::Ok { version: 0 },
                            None => Reply::NotFound,
                        }
                    }
                    Request::Cas {
                        key,
                        expect_version,
                        value,
                    } => {
                        stats.requests += 1;
                        match store.get_mut(&key) {
                            Some((v, ver)) if *ver == expect_version => {
                                *v = value;
                                *ver += 1;
                                Reply::Ok { version: *ver }
                            }
                            Some((_, ver)) => {
                                stats.cas_conflicts += 1;
                                Reply::CasConflict {
                                    actual_version: *ver,
                                }
                            }
                            None if expect_version == 0 => {
                                store.insert(key, (value, 1));
                                Reply::Ok { version: 1 }
                            }
                            None => {
                                stats.cas_conflicts += 1;
                                Reply::CasConflict { actual_version: 0 }
                            }
                        }
                    }
                };
                let _ = reply_to.send(reply);
            }
            stats
        });
        (
            Server {
                handle,
                tx: tx.clone(),
            },
            Client { tx },
        )
    }

    /// Shut down and collect statistics.
    pub fn shutdown(self) -> ServerStats {
        let (rtx, rrx) = unbounded();
        let _ = self.tx.send(Envelope {
            req: Request::Shutdown,
            reply_to: rtx,
        });
        let _ = rrx.recv();
        self.handle.join().expect("server panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_delete_roundtrip() {
        let (server, client) = Server::start();
        assert_eq!(client.get("x"), None);
        assert_eq!(client.put("x", "1"), 1);
        assert_eq!(client.get("x"), Some("1".into()));
        assert_eq!(client.put("x", "2"), 2, "version increments");
        assert_eq!(
            client.call(Request::Delete { key: "x".into() }),
            Reply::Ok { version: 0 }
        );
        assert_eq!(client.get("x"), None);
        let stats = server.shutdown();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn cas_succeeds_only_on_matching_version() {
        let (server, client) = Server::start();
        client.put("k", "a"); // version 1
        let r = client.call(Request::Cas {
            key: "k".into(),
            expect_version: 1,
            value: "b".into(),
        });
        assert_eq!(r, Reply::Ok { version: 2 });
        let r = client.call(Request::Cas {
            key: "k".into(),
            expect_version: 1,
            value: "c".into(),
        });
        assert_eq!(r, Reply::CasConflict { actual_version: 2 });
        assert_eq!(client.get("k"), Some("b".into()));
        let stats = server.shutdown();
        assert_eq!(stats.cas_conflicts, 1);
    }

    #[test]
    fn cas_version_zero_creates() {
        let (server, client) = Server::start();
        let r = client.call(Request::Cas {
            key: "new".into(),
            expect_version: 0,
            value: "v".into(),
        });
        assert_eq!(r, Reply::Ok { version: 1 });
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_serviced() {
        let (server, client) = Server::start();
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let client = client.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        client.put(&format!("k{c}"), &i.to_string());
                    }
                    client.get(&format!("k{c}")).unwrap()
                })
            })
            .collect();
        for (c, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), "99", "client {c}");
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests, 8 * 101);
    }

    #[test]
    fn concurrent_cas_exactly_one_winner_per_round() {
        let (server, client) = Server::start();
        client.put("counter", "0"); // version 1
                                    // 4 clients race to CAS version 1 -> exactly one wins.
        let wins: usize = (0..4)
            .map(|i| {
                let client = client.clone();
                std::thread::spawn(move || {
                    matches!(
                        client.call(Request::Cas {
                            key: "counter".into(),
                            expect_version: 1,
                            value: format!("w{i}"),
                        }),
                        Reply::Ok { .. }
                    )
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| usize::from(h.join().unwrap()))
            .sum();
        assert_eq!(wins, 1, "CAS linearizes concurrent writers");
        let stats = server.shutdown();
        assert_eq!(stats.cas_conflicts, 3);
    }
}
