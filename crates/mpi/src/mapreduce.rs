//! A mini MapReduce framework — the Hadoop-lab substitute (paper
//! Section III: "Most likely the additional lab will involve using
//! Hadoop").
//!
//! The three phases run exactly as the programming model prescribes:
//! *map* tasks run in parallel over input splits emitting `(K, V)` pairs;
//! the *shuffle* partitions pairs by `hash(K) % reducers` and groups
//! values per key; *reduce* tasks run in parallel over their partitions.
//! Shuffle volume (pairs moved across the map→reduce boundary) is
//! reported, since that is the quantity MapReduce tuning obsesses over.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Statistics from one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobStats {
    /// Map tasks executed.
    pub map_tasks: u64,
    /// Intermediate pairs emitted by all mappers.
    pub pairs_emitted: u64,
    /// Pairs moved during the shuffle (= emitted, without a combiner).
    pub shuffle_pairs: u64,
    /// Distinct keys reduced.
    pub distinct_keys: u64,
    /// Reduce tasks executed.
    pub reduce_tasks: u64,
}

fn partition_of<K: Hash>(key: &K, reducers: usize) -> usize {
    let mut h = std::hash::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % reducers as u64) as usize
}

/// Run a MapReduce job.
///
/// * `inputs` — one element per input split; each map task receives one.
/// * `mappers` — number of parallel map workers.
/// * `reducers` — number of parallel reduce workers (= output partitions).
/// * `map_fn(split) -> Vec<(K, V)>` — the mapper.
/// * `reduce_fn(key, values) -> R` — the reducer, called once per key.
///
/// Returns the `(K, R)` results (sorted by partition then key order of
/// arrival — deterministic for a fixed input) and the [`JobStats`].
pub fn run_job<I, K, V, R, MF, RF>(
    inputs: Vec<I>,
    mappers: usize,
    reducers: usize,
    map_fn: MF,
    reduce_fn: RF,
) -> (Vec<(K, R)>, JobStats)
where
    I: Send,
    K: Hash + Eq + Ord + Clone + Send,
    V: Send,
    R: Send,
    MF: Fn(I) -> Vec<(K, V)> + Sync,
    RF: Fn(&K, Vec<V>) -> R + Sync,
{
    assert!(mappers > 0, "need at least one mapper");
    assert!(reducers > 0, "need at least one reducer");
    let map_tasks = inputs.len() as u64;

    // ---- Map phase: split inputs round-robin across mapper workers.
    let mut worker_inputs: Vec<Vec<I>> = (0..mappers).map(|_| Vec::new()).collect();
    for (i, input) in inputs.into_iter().enumerate() {
        worker_inputs[i % mappers].push(input);
    }
    let map_fn = &map_fn;
    let mapped: Vec<Vec<(K, V)>> = std::thread::scope(|s| {
        let handles: Vec<_> = worker_inputs
            .into_iter()
            .map(|splits| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for split in splits {
                        out.extend(map_fn(split));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let pairs_emitted: u64 = mapped.iter().map(|m| m.len() as u64).sum();

    // ---- Shuffle: partition by key hash, group values per key.
    let mut partitions: Vec<HashMap<K, Vec<V>>> = (0..reducers).map(|_| HashMap::new()).collect();
    for pairs in mapped {
        for (k, v) in pairs {
            let part = partition_of(&k, reducers);
            partitions[part].entry(k).or_default().push(v);
        }
    }
    let distinct_keys: u64 = partitions.iter().map(|p| p.len() as u64).sum();

    // ---- Reduce phase: one worker per partition.
    let reduce_fn = &reduce_fn;
    let reduced: Vec<Vec<(K, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = partitions
            .into_iter()
            .map(|part| {
                s.spawn(move || {
                    // Sort keys for deterministic output within a partition.
                    let mut entries: Vec<(K, Vec<V>)> = part.into_iter().collect();
                    entries.sort_by(|a, b| a.0.cmp(&b.0));
                    entries
                        .into_iter()
                        .map(|(k, vs)| {
                            let r = reduce_fn(&k, vs);
                            (k, r)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = JobStats {
        map_tasks,
        pairs_emitted,
        shuffle_pairs: pairs_emitted,
        distinct_keys,
        reduce_tasks: reducers as u64,
    };
    (reduced.into_iter().flatten().collect(), stats)
}

/// The canonical word-count job.
pub fn word_count(
    documents: Vec<String>,
    mappers: usize,
    reducers: usize,
) -> (Vec<(String, u64)>, JobStats) {
    run_job(
        documents,
        mappers,
        reducers,
        |doc: String| {
            doc.split_whitespace()
                .map(|w| {
                    (
                        w.trim_matches(|c: char| !c.is_alphanumeric())
                            .to_lowercase(),
                        1u64,
                    )
                })
                .filter(|(w, _)| !w.is_empty())
                .collect()
        },
        |_k, vs| vs.iter().sum::<u64>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    #[test]
    fn word_count_basic() {
        let docs = vec![
            "the quick brown fox".to_string(),
            "the lazy dog and the fox".to_string(),
        ];
        let (results, stats) = word_count(docs, 2, 3);
        let m: Map<String, u64> = results.into_iter().collect();
        assert_eq!(m["the"], 3);
        assert_eq!(m["fox"], 2);
        assert_eq!(m["dog"], 1);
        assert_eq!(stats.map_tasks, 2);
        assert_eq!(stats.pairs_emitted, 10);
        assert_eq!(stats.distinct_keys, 7);
        assert_eq!(stats.reduce_tasks, 3);
    }

    #[test]
    fn punctuation_and_case_normalized() {
        let (results, _) = word_count(vec!["Hello, hello! HELLO?".to_string()], 1, 1);
        let m: Map<String, u64> = results.into_iter().collect();
        assert_eq!(m["hello"], 3);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn results_independent_of_worker_counts() {
        let docs: Vec<String> = (0..50)
            .map(|i| format!("w{} w{} shared", i % 7, i % 3))
            .collect();
        let canonical = {
            let (mut r, _) = word_count(docs.clone(), 1, 1);
            r.sort();
            r
        };
        for (m, red) in [(1usize, 4usize), (3, 2), (8, 1), (4, 4)] {
            let (mut r, _) = word_count(docs.clone(), m, red);
            r.sort();
            assert_eq!(r, canonical, "mappers={m} reducers={red}");
        }
    }

    #[test]
    fn generic_job_inverted_index() {
        // Build an inverted index: word -> sorted list of doc ids.
        let docs: Vec<(usize, &str)> = vec![
            (0, "apple banana"),
            (1, "banana cherry"),
            (2, "apple cherry apple"),
        ];
        let (results, _) = run_job(
            docs,
            2,
            2,
            |(id, text): (usize, &str)| {
                text.split_whitespace()
                    .map(|w| (w.to_string(), id))
                    .collect()
            },
            |_w, mut ids: Vec<usize>| {
                ids.sort_unstable();
                ids.dedup();
                ids
            },
        );
        let m: Map<String, Vec<usize>> = results.into_iter().collect();
        assert_eq!(m["apple"], vec![0, 2]);
        assert_eq!(m["banana"], vec![0, 1]);
        assert_eq!(m["cherry"], vec![1, 2]);
    }

    #[test]
    fn every_key_lands_in_exactly_one_partition() {
        let docs: Vec<String> = (0..100).map(|i| format!("key{}", i % 20)).collect();
        let (results, stats) = word_count(docs, 4, 5);
        assert_eq!(results.len(), 20, "20 distinct keys, no duplicates");
        assert_eq!(stats.distinct_keys, 20);
        let total: u64 = results.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_input() {
        let (results, stats) = word_count(vec![], 2, 2);
        assert!(results.is_empty());
        assert_eq!(stats.pairs_emitted, 0);
    }

    #[test]
    fn stats_shuffle_equals_emitted_without_combiner() {
        let (_, stats) = word_count(vec!["a a a a".to_string()], 1, 1);
        assert_eq!(stats.shuffle_pairs, stats.pairs_emitted);
        assert_eq!(stats.pairs_emitted, 4);
    }
}
