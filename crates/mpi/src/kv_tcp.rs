//! The client-server lab over **real TCP sockets** — CS87's "C socket
//! client-server" short lab, on loopback.
//!
//! A line-oriented protocol (one request per line, one reply per line):
//!
//! ```text
//! GET <key>             -> VALUE <version> <value> | NOTFOUND
//! PUT <key> <value>     -> OK <version>
//! DEL <key>             -> OK | NOTFOUND
//! CAS <key> <ver> <val> -> OK <version> | CONFLICT <actual>
//! QUIT                  -> BYE (connection closes)
//! ```
//!
//! One thread per connection (the lab's architecture), a shared store
//! behind a mutex, and a clean shutdown path. The in-process channel
//! version lives in [`crate::kv`]; this module shows the same semantics
//! surviving a real byte stream.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Store = Arc<Mutex<HashMap<String, (String, u64)>>>;

/// A running TCP KV server.
pub struct TcpKvServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    /// Clones of every accepted stream, so shutdown can force-close
    /// connections whose clients are still attached (otherwise joining
    /// their threads would block on a read forever).
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl TcpKvServer {
    /// Bind to an ephemeral loopback port and start serving.
    pub fn start() -> std::io::Result<TcpKvServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let store: Store = Arc::new(Mutex::new(HashMap::new()));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let sd = Arc::clone(&shutdown);
        let conns2 = Arc::clone(&conns);
        let accept_handle = std::thread::spawn(move || {
            let mut conn_handles = Vec::new();
            for stream in listener.incoming() {
                if sd.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                if let Ok(clone) = stream.try_clone() {
                    conns2.lock().unwrap().push(clone);
                }
                let store = Arc::clone(&store);
                conn_handles.push(std::thread::spawn(move || serve_conn(stream, store)));
            }
            for h in conn_handles {
                let _ = h.join();
            }
        });
        Ok(TcpKvServer {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            conns,
        })
    }

    /// The server's address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, force-close live connections, and join every
    /// server thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Force-close connections still being read (clients that never
        // sent QUIT); their serve_conn threads see EOF/error and exit.
        for c in self.conns.lock().unwrap().iter() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_conn(stream: TcpStream, store: Store) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let reply = handle_line(&line, &store);
        let quit = line.trim() == "QUIT";
        if writer.write_all(reply.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
        {
            return;
        }
        if quit {
            return;
        }
    }
}

fn handle_line(line: &str, store: &Store) -> String {
    let mut parts = line.trim().splitn(4, ' ');
    let cmd = parts.next().unwrap_or("");
    match cmd {
        "GET" => {
            let Some(key) = parts.next() else {
                return "ERR usage: GET <key>".into();
            };
            match store.lock().unwrap().get(key) {
                Some((v, ver)) => format!("VALUE {ver} {v}"),
                None => "NOTFOUND".into(),
            }
        }
        "PUT" => {
            let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
                return "ERR usage: PUT <key> <value>".into();
            };
            let mut s = store.lock().unwrap();
            let entry = s.entry(key.to_string()).or_insert((String::new(), 0));
            entry.0 = value.to_string();
            entry.1 += 1;
            format!("OK {}", entry.1)
        }
        "DEL" => {
            let Some(key) = parts.next() else {
                return "ERR usage: DEL <key>".into();
            };
            match store.lock().unwrap().remove(key) {
                Some(_) => "OK 0".into(),
                None => "NOTFOUND".into(),
            }
        }
        "CAS" => {
            let (Some(key), Some(ver), Some(value)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return "ERR usage: CAS <key> <version> <value>".into();
            };
            let Ok(expect) = ver.parse::<u64>() else {
                return "ERR bad version".into();
            };
            let mut s = store.lock().unwrap();
            match s.get_mut(key) {
                Some((v, actual)) if *actual == expect => {
                    *v = value.to_string();
                    *actual += 1;
                    format!("OK {actual}")
                }
                Some((_, actual)) => format!("CONFLICT {actual}"),
                None if expect == 0 => {
                    s.insert(key.to_string(), (value.to_string(), 1));
                    "OK 1".into()
                }
                None => "CONFLICT 0".into(),
            }
        }
        "QUIT" => "BYE".into(),
        _ => format!("ERR unknown command {cmd:?}"),
    }
}

/// A blocking line-protocol client.
pub struct TcpKvClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpKvClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpKvClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpKvClient {
            writer: stream,
            reader,
        })
    }

    /// Send one request line; return the reply line.
    pub fn call(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_del_over_real_sockets() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert_eq!(c.call("GET x").unwrap(), "NOTFOUND");
        assert_eq!(c.call("PUT x 41").unwrap(), "OK 1");
        assert_eq!(c.call("PUT x 42").unwrap(), "OK 2");
        assert_eq!(c.call("GET x").unwrap(), "VALUE 2 42");
        assert_eq!(c.call("DEL x").unwrap(), "OK 0");
        assert_eq!(c.call("GET x").unwrap(), "NOTFOUND");
        assert_eq!(c.call("QUIT").unwrap(), "BYE");
        server.shutdown();
    }

    #[test]
    fn cas_over_sockets() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert_eq!(c.call("CAS k 0 first").unwrap(), "OK 1");
        assert_eq!(c.call("CAS k 1 second").unwrap(), "OK 2");
        assert_eq!(c.call("CAS k 1 stale").unwrap(), "CONFLICT 2");
        assert_eq!(c.call("GET k").unwrap(), "VALUE 2 second");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_shared_store() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpKvClient::connect(addr).unwrap();
                    for j in 0..50 {
                        let r = c.call(&format!("PUT c{i} v{j}")).unwrap();
                        assert!(r.starts_with("OK "), "{r}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut c = TcpKvClient::connect(addr).unwrap();
        for i in 0..4 {
            assert_eq!(c.call(&format!("GET c{i}")).unwrap(), "VALUE 50 v49");
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_cas_one_winner() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();
        let mut c = TcpKvClient::connect(addr).unwrap();
        c.call("PUT hot base").unwrap(); // version 1
        let wins: usize = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpKvClient::connect(addr).unwrap();
                    let r = c.call(&format!("CAS hot 1 w{i}")).unwrap();
                    usize::from(r.starts_with("OK"))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(wins, 1, "server linearizes CAS across sockets");
        server.shutdown();
    }

    #[test]
    fn protocol_errors_reported() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert!(c.call("FROB x").unwrap().starts_with("ERR"));
        assert!(c.call("GET").unwrap().starts_with("ERR"));
        assert!(c.call("CAS k notanumber v").unwrap().starts_with("ERR"));
        server.shutdown();
    }
}
