//! The client-server lab over **real TCP sockets** — CS87's "C socket
//! client-server" short lab, on loopback.
//!
//! A line-oriented protocol (one request per line, one reply per line):
//!
//! ```text
//! GET <key>             -> VALUE <version> <value> | NOTFOUND
//! PUT <key> <value>     -> OK <version>
//! DEL <key>             -> OK | NOTFOUND
//! CAS <key> <ver> <val> -> OK <version> | CONFLICT <actual>
//! QUIT                  -> BYE (connection closes)
//! ```
//!
//! One thread per connection (the lab's architecture), a shared store
//! behind a mutex, and a clean shutdown path. The in-process channel
//! version lives in [`crate::kv`]; this module shows the same semantics
//! surviving a real byte stream.
//!
//! Connections that die mid-request (a half-read line at EOF, a read or
//! write error) never crash their thread and never execute the
//! truncated request; each such failure bumps the server's
//! `kv.conn_errors` counter in its pdc-trace session.

use pdc_core::metrics::Counter;
use pdc_core::trace::TraceSession;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Store = Arc<Mutex<HashMap<String, (String, u64)>>>;

/// A running TCP KV server.
pub struct TcpKvServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    /// Clones of every accepted stream, so shutdown can force-close
    /// connections whose clients are still attached (otherwise joining
    /// their threads would block on a read forever).
    conns: Arc<Mutex<Vec<TcpStream>>>,
    trace: TraceSession,
}

impl TcpKvServer {
    /// Bind to an ephemeral loopback port and start serving, with a
    /// private trace session.
    pub fn start() -> std::io::Result<TcpKvServer> {
        TcpKvServer::start_traced(&TraceSession::new())
    }

    /// Like [`TcpKvServer::start`], publishing `kv.conn_errors` into a
    /// shared `session`.
    pub fn start_traced(session: &TraceSession) -> std::io::Result<TcpKvServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let store: Store = Arc::new(Mutex::new(HashMap::new()));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_errors = session.counter("kv.conn_errors");
        let sd = Arc::clone(&shutdown);
        let conns2 = Arc::clone(&conns);
        let accept_handle = std::thread::spawn(move || {
            let mut conn_handles = Vec::new();
            for stream in listener.incoming() {
                if sd.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                if let Ok(clone) = stream.try_clone() {
                    conns2.lock().unwrap().push(clone);
                }
                let store = Arc::clone(&store);
                let errors = conn_errors.clone();
                conn_handles.push(std::thread::spawn(move || {
                    serve_conn(stream, store, errors)
                }));
            }
            for h in conn_handles {
                let _ = h.join();
            }
        });
        Ok(TcpKvServer {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            conns,
            trace: session.clone(),
        })
    }

    /// The server's address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The trace session this server publishes `kv.conn_errors` into.
    pub fn trace(&self) -> &TraceSession {
        &self.trace
    }

    /// Connections that failed mid-request so far (`kv.conn_errors`).
    pub fn conn_errors(&self) -> u64 {
        self.trace.snapshot().get("kv.conn_errors")
    }

    /// Stop accepting, force-close live connections, and join every
    /// server thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Force-close connections still being read (clients that never
        // sent QUIT); their serve_conn threads see EOF/error and exit.
        for c in self.conns.lock().unwrap().iter() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_conn(stream: TcpStream, store: Store, conn_errors: Counter) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            conn_errors.inc();
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            // Clean EOF: client closed between requests.
            Ok(0) => return,
            Ok(_) => {
                // A line without its newline means the client vanished
                // mid-request. Never execute a truncated request — a
                // half-read "DEL xy…" is not the request that was sent.
                if !line.ends_with('\n') {
                    conn_errors.inc();
                    return;
                }
            }
            // Read error (e.g. connection reset): count and move on;
            // the thread exits but the server keeps serving others.
            Err(_) => {
                conn_errors.inc();
                return;
            }
        }
        let reply = handle_line(&line, &store);
        let quit = line.trim() == "QUIT";
        if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            conn_errors.inc();
            return;
        }
        if quit {
            return;
        }
    }
}

fn handle_line(line: &str, store: &Store) -> String {
    let mut parts = line.trim().splitn(4, ' ');
    let cmd = parts.next().unwrap_or("");
    match cmd {
        "GET" => {
            let Some(key) = parts.next() else {
                return "ERR usage: GET <key>".into();
            };
            match store.lock().unwrap().get(key) {
                Some((v, ver)) => format!("VALUE {ver} {v}"),
                None => "NOTFOUND".into(),
            }
        }
        "PUT" => {
            let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
                return "ERR usage: PUT <key> <value>".into();
            };
            let mut s = store.lock().unwrap();
            let entry = s.entry(key.to_string()).or_insert((String::new(), 0));
            entry.0 = value.to_string();
            entry.1 += 1;
            format!("OK {}", entry.1)
        }
        "DEL" => {
            let Some(key) = parts.next() else {
                return "ERR usage: DEL <key>".into();
            };
            match store.lock().unwrap().remove(key) {
                Some(_) => "OK 0".into(),
                None => "NOTFOUND".into(),
            }
        }
        "CAS" => {
            let (Some(key), Some(ver), Some(value)) = (parts.next(), parts.next(), parts.next())
            else {
                return "ERR usage: CAS <key> <version> <value>".into();
            };
            let Ok(expect) = ver.parse::<u64>() else {
                return "ERR bad version".into();
            };
            let mut s = store.lock().unwrap();
            match s.get_mut(key) {
                Some((v, actual)) if *actual == expect => {
                    *v = value.to_string();
                    *actual += 1;
                    format!("OK {actual}")
                }
                Some((_, actual)) => format!("CONFLICT {actual}"),
                None if expect == 0 => {
                    s.insert(key.to_string(), (value.to_string(), 1));
                    "OK 1".into()
                }
                None => "CONFLICT 0".into(),
            }
        }
        "QUIT" => "BYE".into(),
        _ => format!("ERR unknown command {cmd:?}"),
    }
}

/// A blocking line-protocol client.
pub struct TcpKvClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpKvClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpKvClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpKvClient {
            writer: stream,
            reader,
        })
    }

    /// Send one request line; return the reply line.
    pub fn call(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_del_over_real_sockets() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert_eq!(c.call("GET x").unwrap(), "NOTFOUND");
        assert_eq!(c.call("PUT x 41").unwrap(), "OK 1");
        assert_eq!(c.call("PUT x 42").unwrap(), "OK 2");
        assert_eq!(c.call("GET x").unwrap(), "VALUE 2 42");
        assert_eq!(c.call("DEL x").unwrap(), "OK 0");
        assert_eq!(c.call("GET x").unwrap(), "NOTFOUND");
        assert_eq!(c.call("QUIT").unwrap(), "BYE");
        server.shutdown();
    }

    #[test]
    fn cas_over_sockets() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert_eq!(c.call("CAS k 0 first").unwrap(), "OK 1");
        assert_eq!(c.call("CAS k 1 second").unwrap(), "OK 2");
        assert_eq!(c.call("CAS k 1 stale").unwrap(), "CONFLICT 2");
        assert_eq!(c.call("GET k").unwrap(), "VALUE 2 second");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_shared_store() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpKvClient::connect(addr).unwrap();
                    for j in 0..50 {
                        let r = c.call(&format!("PUT c{i} v{j}")).unwrap();
                        assert!(r.starts_with("OK "), "{r}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut c = TcpKvClient::connect(addr).unwrap();
        for i in 0..4 {
            assert_eq!(c.call(&format!("GET c{i}")).unwrap(), "VALUE 50 v49");
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_cas_one_winner() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();
        let mut c = TcpKvClient::connect(addr).unwrap();
        c.call("PUT hot base").unwrap(); // version 1
        let wins: usize = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpKvClient::connect(addr).unwrap();
                    let r = c.call(&format!("CAS hot 1 w{i}")).unwrap();
                    usize::from(r.starts_with("OK"))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(wins, 1, "server linearizes CAS across sockets");
        server.shutdown();
    }

    #[test]
    fn mid_request_disconnect_is_survived_and_counted() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();

        // Seed a key through a well-behaved client.
        let mut c = TcpKvClient::connect(addr).unwrap();
        assert_eq!(c.call("PUT victim alive").unwrap(), "OK 1");

        // A client that dies mid-request: half a line, no newline. The
        // truncated "DEL victim" must NOT be executed.
        {
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(b"DEL victim").unwrap();
            // Drop closes the socket: the server sees EOF mid-line.
        }

        // The error is counted (poll: the conn thread runs async).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.conn_errors() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "kv.conn_errors never incremented"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.conn_errors(), 1);

        // The server survived: existing and new clients still work, and
        // the half-read DEL was not applied.
        assert_eq!(c.call("GET victim").unwrap(), "VALUE 1 alive");
        let mut c2 = TcpKvClient::connect(addr).unwrap();
        assert_eq!(c2.call("GET victim").unwrap(), "VALUE 1 alive");
        server.shutdown();
    }

    #[test]
    fn clean_disconnect_without_quit_is_not_an_error() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();
        {
            let mut c = TcpKvClient::connect(addr).unwrap();
            assert_eq!(c.call("PUT k v").unwrap(), "OK 1");
            // Drop without QUIT: complete requests only, clean EOF.
        }
        // Give the connection thread a moment to observe EOF.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(server.conn_errors(), 0);
        server.shutdown();
    }

    #[test]
    fn protocol_errors_reported() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert!(c.call("FROB x").unwrap().starts_with("ERR"));
        assert!(c.call("GET").unwrap().starts_with("ERR"));
        assert!(c.call("CAS k notanumber v").unwrap().starts_with("ERR"));
        server.shutdown();
    }
}
