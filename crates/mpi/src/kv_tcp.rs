//! The client-server lab over **real TCP sockets** — CS87's "C socket
//! client-server" short lab, on loopback.
//!
//! A line-oriented protocol (one request per line, one reply per line):
//!
//! ```text
//! GET <key>             -> VALUE <version> <value> | NOTFOUND
//! PUT <key> <value>     -> OK <version>
//! DEL <key>             -> OK | NOTFOUND
//! CAS <key> <ver> <val> -> OK <version> | CONFLICT <actual>
//! QUIT                  -> BYE (connection closes)
//! ```
//!
//! Two server architectures share the protocol and the store logic:
//!
//! * [`TcpKvServer`] — one thread per connection (the lab's first
//!   architecture), shared store behind a mutex.
//! * [`EventLoopKvServer`] — a single-threaded nonblocking event loop,
//!   hand-rolled on `set_nonblocking` + a poll sweep (the `mio` shape
//!   without the dependency): per-connection read/write buffers, no
//!   lock on the store at all, and no thread explosion at high fan-in.
//!
//! The in-process channel version lives in [`crate::kv`]; this module
//! shows the same semantics surviving a real byte stream.
//!
//! Connections that die mid-request (a half-read line at EOF, a read or
//! write error) never crash the server and never execute the truncated
//! request; each such failure bumps the server's `kv.conn_errors`
//! counter in its pdc-trace session. Failures *caused by shutdown* are
//! not client failures and are never counted: shutdown half-closes the
//! read side and lets in-flight replies finish writing, so a server
//! stopped under load reports zero spurious errors.

use pdc_core::metrics::Counter;
use pdc_core::trace::TraceSession;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Store = Arc<Mutex<HashMap<String, (String, u64)>>>;

/// Longest accepted request line, in bytes, including the newline. A
/// client that streams more than this without a `\n` gets `ERR
/// too-long`, one `kv.conn_errors` bump, and a closed connection — on
/// **both** server architectures — instead of growing a server-side
/// buffer without bound. `db::serve`'s front end enforces the same cap.
pub const MAX_LINE: usize = 4096;

/// Cap on buffered, not-yet-written reply bytes per connection. A
/// client that pipelines requests but never reads replies hits this
/// instead of OOMing the event loop; such a connection is dropped and
/// counted in `kv.conn_errors`.
pub const MAX_WBUF: usize = 256 * 1024;

/// A running TCP KV server.
pub struct TcpKvServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    /// Clones of every accepted stream, so shutdown can force-close
    /// connections whose clients are still attached (otherwise joining
    /// their threads would block on a read forever).
    conns: Arc<Mutex<Vec<TcpStream>>>,
    trace: TraceSession,
}

impl TcpKvServer {
    /// Bind to an ephemeral loopback port and start serving, with a
    /// private trace session.
    pub fn start() -> std::io::Result<TcpKvServer> {
        TcpKvServer::start_traced(&TraceSession::new())
    }

    /// Like [`TcpKvServer::start`], publishing `kv.conn_errors` into a
    /// shared `session`.
    pub fn start_traced(session: &TraceSession) -> std::io::Result<TcpKvServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let store: Store = Arc::new(Mutex::new(HashMap::new()));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_errors = session.counter("kv.conn_errors");
        let sd = Arc::clone(&shutdown);
        let conns2 = Arc::clone(&conns);
        let accept_handle = std::thread::spawn(move || {
            let mut conn_handles = Vec::new();
            for stream in listener.incoming() {
                if sd.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                stream.set_nodelay(true).ok();
                if let Ok(clone) = stream.try_clone() {
                    conns2.lock().unwrap().push(clone);
                }
                let store = Arc::clone(&store);
                let errors = conn_errors.clone();
                let sd = Arc::clone(&sd);
                conn_handles.push(std::thread::spawn(move || {
                    serve_conn(stream, store, errors, sd)
                }));
            }
            for h in conn_handles {
                let _ = h.join();
            }
        });
        Ok(TcpKvServer {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            conns,
            trace: session.clone(),
        })
    }

    /// The server's address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The trace session this server publishes `kv.conn_errors` into.
    pub fn trace(&self) -> &TraceSession {
        &self.trace
    }

    /// Connections that failed mid-request so far (`kv.conn_errors`).
    pub fn conn_errors(&self) -> u64 {
        self.trace.snapshot().get("kv.conn_errors")
    }

    /// Stop accepting, drain live connections, and join every server
    /// thread.
    ///
    /// Connections are half-closed on the **read** side only: a thread
    /// blocked in `read_line` wakes with a clean EOF, while a thread
    /// mid-write finishes its in-flight reply undisturbed (closing both
    /// directions here used to race those writes into spurious
    /// `kv.conn_errors` bumps). Whatever the teardown interrupts is the
    /// server's doing, not a client failure, so `serve_conn` counts no
    /// errors once the shutdown flag is up.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for c in self.conns.lock().unwrap().iter() {
            let _ = c.shutdown(std::net::Shutdown::Read);
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_conn(stream: TcpStream, store: Store, conn_errors: Counter, shutdown: Arc<AtomicBool>) {
    // A failure observed after shutdown began is the server tearing the
    // connection down, not the client misbehaving: never count it.
    let count_error = || {
        if !shutdown.load(Ordering::SeqCst) {
            conn_errors.inc();
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            count_error();
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_capped(&mut reader) {
            LineRead::Line(l) => l,
            // Clean EOF: client closed between requests.
            LineRead::Eof => return,
            // Over-long request: tell the client why before closing.
            // The event loop replies identically (parity-tested).
            LineRead::TooLong => {
                let _ = writer.write_all(b"ERR too-long\n");
                count_error();
                return;
            }
            // EOF mid-line or a read error: the client vanished
            // mid-request. Never execute a truncated request — a
            // half-read "DEL xy…" is not the request that was sent.
            LineRead::Failed => {
                count_error();
                return;
            }
        };
        let reply = handle_line(&line, &store);
        let quit = line.trim() == "QUIT";
        if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            count_error();
            return;
        }
        if quit {
            return;
        }
    }
}

fn handle_line(line: &str, store: &Store) -> String {
    apply_line(line, &mut store.lock().unwrap())
}

/// Outcome of reading one capped request line.
enum LineRead {
    /// A complete `\n`-terminated line within [`MAX_LINE`].
    Line(String),
    /// Clean EOF at a line boundary.
    Eof,
    /// The client streamed [`MAX_LINE`] bytes without a newline.
    TooLong,
    /// EOF mid-line or a read error — the client vanished mid-request.
    Failed,
}

/// `read_line` with the [`MAX_LINE`] cap the event loop also enforces,
/// so the two server architectures frame (and reject) identically.
fn read_line_capped(r: &mut impl BufRead) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (consume, found) = {
            let avail = match r.fill_buf() {
                Ok(a) => a,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return LineRead::Failed,
            };
            if avail.is_empty() {
                return if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Failed
                };
            }
            match avail.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if buf.len() + i + 1 > MAX_LINE {
                        return LineRead::TooLong;
                    }
                    buf.extend_from_slice(&avail[..=i]);
                    (i + 1, true)
                }
                None => {
                    buf.extend_from_slice(avail);
                    (avail.len(), false)
                }
            }
        };
        r.consume(consume);
        if found {
            return LineRead::Line(String::from_utf8_lossy(&buf).into_owned());
        }
        if buf.len() >= MAX_LINE {
            return LineRead::TooLong;
        }
    }
}

/// Execute one request line against the map. The store logic is shared
/// verbatim by the thread-per-connection server (which locks around it)
/// and the event-loop server (which owns the map and needs no lock).
fn apply_line(line: &str, store: &mut HashMap<String, (String, u64)>) -> String {
    let mut parts = line.trim().splitn(4, ' ');
    let cmd = parts.next().unwrap_or("");
    match cmd {
        "GET" => {
            let Some(key) = parts.next() else {
                return "ERR usage: GET <key>".into();
            };
            match store.get(key) {
                Some((v, ver)) => format!("VALUE {ver} {v}"),
                None => "NOTFOUND".into(),
            }
        }
        "PUT" => {
            let (Some(key), Some(value)) = (parts.next(), parts.next()) else {
                return "ERR usage: PUT <key> <value>".into();
            };
            let entry = store.entry(key.to_string()).or_insert((String::new(), 0));
            entry.0 = value.to_string();
            entry.1 += 1;
            format!("OK {}", entry.1)
        }
        "DEL" => {
            let Some(key) = parts.next() else {
                return "ERR usage: DEL <key>".into();
            };
            match store.remove(key) {
                Some(_) => "OK 0".into(),
                None => "NOTFOUND".into(),
            }
        }
        "CAS" => {
            let (Some(key), Some(ver), Some(value)) = (parts.next(), parts.next(), parts.next())
            else {
                return "ERR usage: CAS <key> <version> <value>".into();
            };
            let Ok(expect) = ver.parse::<u64>() else {
                return "ERR bad version".into();
            };
            match store.get_mut(key) {
                Some((v, actual)) if *actual == expect => {
                    *v = value.to_string();
                    *actual += 1;
                    format!("OK {actual}")
                }
                Some((_, actual)) => format!("CONFLICT {actual}"),
                None if expect == 0 => {
                    store.insert(key.to_string(), (value.to_string(), 1));
                    "OK 1".into()
                }
                None => "CONFLICT 0".into(),
            }
        }
        "QUIT" => "BYE".into(),
        _ => format!("ERR unknown command {cmd:?}"),
    }
}

/// One connection's state in the event loop: the nonblocking stream
/// plus the read bytes not yet forming a full line and the reply bytes
/// not yet written.
struct ElConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Stop reading (QUIT or EOF seen); close once `wbuf` drains.
    closing: bool,
    /// Remove from the loop this sweep.
    dead: bool,
}

/// A running KV server with the same line protocol as [`TcpKvServer`],
/// but a single-threaded nonblocking event loop instead of a thread per
/// connection: one sweep accepts new sockets, reads whatever bytes are
/// ready, executes complete lines against a store the loop thread owns
/// outright (no mutex), and writes as much pending reply as each socket
/// accepts. `WouldBlock` is the scheduler — a connection that isn't
/// ready costs one syscall, not one parked thread.
pub struct EventLoopKvServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    trace: TraceSession,
}

impl EventLoopKvServer {
    /// Bind to an ephemeral loopback port and start the loop, with a
    /// private trace session.
    pub fn start() -> std::io::Result<EventLoopKvServer> {
        EventLoopKvServer::start_traced(&TraceSession::new())
    }

    /// Like [`EventLoopKvServer::start`], publishing `kv.conn_errors`
    /// into a shared `session`.
    pub fn start_traced(session: &TraceSession) -> std::io::Result<EventLoopKvServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_errors = session.counter("kv.conn_errors");
        let sd = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || event_loop(listener, &conn_errors, &sd));
        Ok(EventLoopKvServer {
            addr,
            shutdown,
            handle: Some(handle),
            trace: session.clone(),
        })
    }

    /// The server's address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The trace session this server publishes `kv.conn_errors` into.
    pub fn trace(&self) -> &TraceSession {
        &self.trace
    }

    /// Connections that failed mid-request so far (`kv.conn_errors`).
    pub fn conn_errors(&self) -> u64 {
        self.trace.snapshot().get("kv.conn_errors")
    }

    /// Stop the loop and join it. The loop drains first — pending
    /// complete requests are executed and their replies flushed — so a
    /// shutdown under load loses no acknowledged work and, as with
    /// [`TcpKvServer::shutdown`], counts no spurious `kv.conn_errors`.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The sweep loop: accept, read/execute/write every connection, sleep
/// briefly only when a full sweep made no progress.
fn event_loop(listener: TcpListener, conn_errors: &Counter, shutdown: &AtomicBool) {
    let mut store: HashMap<String, (String, u64)> = HashMap::new();
    let mut conns: Vec<ElConn> = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        let shutting_down = shutdown.load(Ordering::SeqCst);
        let mut progress = false;

        // Accept everything ready (stop taking new work once draining).
        if !shutting_down {
            loop {
                match listener.accept() {
                    Ok((s, _)) => {
                        if s.set_nonblocking(true).is_err() {
                            conn_errors.inc();
                            continue;
                        }
                        s.set_nodelay(true).ok();
                        conns.push(ElConn {
                            stream: s,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            closing: false,
                            dead: false,
                        });
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn_errors.inc();
                        break;
                    }
                }
            }
        }

        for conn in &mut conns {
            progress |= sweep_conn(conn, &mut store, &mut scratch, conn_errors, shutting_down);
        }
        conns.retain(|c| !c.dead);

        if shutting_down && conns.iter().all(|c| c.wbuf.is_empty()) {
            // Drained: every complete request received before shutdown
            // has been executed and its reply flushed.
            return;
        }
        if !progress {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
}

/// One sweep over one connection: read ready bytes, execute complete
/// lines, write as much pending reply as the socket accepts. Returns
/// whether anything moved.
fn sweep_conn(
    conn: &mut ElConn,
    store: &mut HashMap<String, (String, u64)>,
    scratch: &mut [u8],
    conn_errors: &Counter,
    shutting_down: bool,
) -> bool {
    use std::io::Read;
    let mut progress = false;

    // Read phase.
    if !conn.closing {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // EOF. Leftover bytes are a request the client never
                // finished — count it (unless we're the ones leaving)
                // and never execute it.
                if !conn.rbuf.is_empty() && !shutting_down {
                    conn_errors.inc();
                }
                conn.closing = true;
                progress = true;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                progress = true;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if !shutting_down {
                    conn_errors.inc();
                }
                conn.dead = true;
                return true;
            }
        }
        // Execute every complete line we now hold.
        while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = conn.rbuf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&raw);
            let reply = apply_line(&line, store);
            conn.wbuf.extend_from_slice(reply.as_bytes());
            conn.wbuf.push(b'\n');
            progress = true;
            if line.trim() == "QUIT" {
                conn.closing = true;
                break;
            }
        }
        // Still no newline and the buffer is at the cap: the client is
        // streaming an over-long request. Same reply, count, and close
        // as the threaded server (parity-tested).
        if !conn.closing && conn.rbuf.len() >= MAX_LINE {
            conn.rbuf.clear();
            conn.wbuf.extend_from_slice(b"ERR too-long\n");
            if !shutting_down {
                conn_errors.inc();
            }
            conn.closing = true;
            progress = true;
        }
    }

    // Write phase. A client that pipelines requests but never reads
    // replies is shed at the buffer cap instead of growing `wbuf`
    // without bound.
    if conn.wbuf.len() > MAX_WBUF {
        if !shutting_down {
            conn_errors.inc();
        }
        conn.dead = true;
        return true;
    }
    if !conn.wbuf.is_empty() {
        match write_pending(&mut conn.stream, &mut conn.wbuf) {
            WriteStep::Progress => progress = true,
            WriteStep::Idle => {}
            WriteStep::Dead => {
                if !shutting_down {
                    conn_errors.inc();
                }
                conn.dead = true;
                return true;
            }
        }
    }
    if conn.closing && conn.wbuf.is_empty() {
        conn.dead = true;
        progress = true;
    }
    progress
}

/// Outcome of one nonblocking write attempt.
enum WriteStep {
    /// Some bytes moved.
    Progress,
    /// Socket not ready (`WouldBlock`/`Interrupted`).
    Idle,
    /// The connection is unusable; the caller counts and drops it.
    Dead,
}

/// Write as much of `wbuf` as the socket accepts. `Ok(0)` — a socket
/// that will never accept another byte — reports [`WriteStep::Dead`]
/// exactly like a write error, so the caller's `kv.conn_errors`
/// accounting stays symmetric with the read phase (the `Ok(0)` arm used
/// to mark the connection dead without counting).
fn write_pending(w: &mut impl Write, wbuf: &mut Vec<u8>) -> WriteStep {
    match w.write(wbuf) {
        Ok(0) => WriteStep::Dead,
        Ok(n) => {
            wbuf.drain(..n);
            WriteStep::Progress
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::Interrupted =>
        {
            WriteStep::Idle
        }
        Err(_) => WriteStep::Dead,
    }
}

/// A blocking line-protocol client.
pub struct TcpKvClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpKvClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpKvClient> {
        let stream = TcpStream::connect(addr)?;
        // One small request per reply: without nodelay, Nagle holding
        // the request back for the previous reply's delayed ACK puts
        // ~40ms of idle wire time on every call.
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpKvClient {
            writer: stream,
            reader,
        })
    }

    /// Send one request line; return the reply line.
    pub fn call(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_del_over_real_sockets() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert_eq!(c.call("GET x").unwrap(), "NOTFOUND");
        assert_eq!(c.call("PUT x 41").unwrap(), "OK 1");
        assert_eq!(c.call("PUT x 42").unwrap(), "OK 2");
        assert_eq!(c.call("GET x").unwrap(), "VALUE 2 42");
        assert_eq!(c.call("DEL x").unwrap(), "OK 0");
        assert_eq!(c.call("GET x").unwrap(), "NOTFOUND");
        assert_eq!(c.call("QUIT").unwrap(), "BYE");
        server.shutdown();
    }

    #[test]
    fn cas_over_sockets() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert_eq!(c.call("CAS k 0 first").unwrap(), "OK 1");
        assert_eq!(c.call("CAS k 1 second").unwrap(), "OK 2");
        assert_eq!(c.call("CAS k 1 stale").unwrap(), "CONFLICT 2");
        assert_eq!(c.call("GET k").unwrap(), "VALUE 2 second");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_shared_store() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpKvClient::connect(addr).unwrap();
                    for j in 0..50 {
                        let r = c.call(&format!("PUT c{i} v{j}")).unwrap();
                        assert!(r.starts_with("OK "), "{r}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut c = TcpKvClient::connect(addr).unwrap();
        for i in 0..4 {
            assert_eq!(c.call(&format!("GET c{i}")).unwrap(), "VALUE 50 v49");
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_cas_one_winner() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();
        let mut c = TcpKvClient::connect(addr).unwrap();
        c.call("PUT hot base").unwrap(); // version 1
        let wins: usize = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpKvClient::connect(addr).unwrap();
                    let r = c.call(&format!("CAS hot 1 w{i}")).unwrap();
                    usize::from(r.starts_with("OK"))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(wins, 1, "server linearizes CAS across sockets");
        server.shutdown();
    }

    #[test]
    fn mid_request_disconnect_is_survived_and_counted() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();

        // Seed a key through a well-behaved client.
        let mut c = TcpKvClient::connect(addr).unwrap();
        assert_eq!(c.call("PUT victim alive").unwrap(), "OK 1");

        // A client that dies mid-request: half a line, no newline. The
        // truncated "DEL victim" must NOT be executed.
        {
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(b"DEL victim").unwrap();
            // Drop closes the socket: the server sees EOF mid-line.
        }

        // The error is counted (poll: the conn thread runs async).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.conn_errors() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "kv.conn_errors never incremented"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.conn_errors(), 1);

        // The server survived: existing and new clients still work, and
        // the half-read DEL was not applied.
        assert_eq!(c.call("GET victim").unwrap(), "VALUE 1 alive");
        let mut c2 = TcpKvClient::connect(addr).unwrap();
        assert_eq!(c2.call("GET victim").unwrap(), "VALUE 1 alive");
        server.shutdown();
    }

    #[test]
    fn clean_disconnect_without_quit_is_not_an_error() {
        let server = TcpKvServer::start().unwrap();
        let addr = server.addr();
        {
            let mut c = TcpKvClient::connect(addr).unwrap();
            assert_eq!(c.call("PUT k v").unwrap(), "OK 1");
            // Drop without QUIT: complete requests only, clean EOF.
        }
        // Give the connection thread a moment to observe EOF.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(server.conn_errors(), 0);
        server.shutdown();
    }

    #[test]
    fn protocol_errors_reported() {
        let server = TcpKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert!(c.call("FROB x").unwrap().starts_with("ERR"));
        assert!(c.call("GET").unwrap().starts_with("ERR"));
        assert!(c.call("CAS k notanumber v").unwrap().starts_with("ERR"));
        server.shutdown();
    }

    /// N clients loop GET → CAS on one key; returns the sorted list of
    /// versions the `OK <version>` replies handed out across all
    /// clients.
    fn hammer_one_key(addr: SocketAddr, clients: usize, rounds: usize) -> Vec<u64> {
        let mut seed = TcpKvClient::connect(addr).unwrap();
        assert_eq!(seed.call("PUT hot base").unwrap(), "OK 1");
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpKvClient::connect(addr).unwrap();
                    let mut wins = Vec::new();
                    for _ in 0..rounds {
                        let r = c.call("GET hot").unwrap();
                        let ver: u64 = r.split(' ').nth(1).unwrap().parse().unwrap();
                        let r = c.call(&format!("CAS hot {ver} w{i}")).unwrap();
                        if let Some(v) = r.strip_prefix("OK ") {
                            wins.push(v.parse::<u64>().unwrap());
                        } else {
                            assert!(r.starts_with("CONFLICT "), "{r}");
                        }
                    }
                    wins
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all
    }

    /// The contention invariant: the server must hand out each version
    /// to exactly one winner. Since only successful CAS bumps the
    /// version, the won versions must be exactly {2, 3, …, final} with
    /// no duplicates and no gaps.
    fn assert_cas_serialized(addr: SocketAddr) {
        let wins = hammer_one_key(addr, 6, 30);
        assert!(!wins.is_empty(), "at least one CAS must win");
        let mut c = TcpKvClient::connect(addr).unwrap();
        let reply = c.call("GET hot").unwrap();
        let final_ver: u64 = reply.split(' ').nth(1).unwrap().parse().unwrap();
        assert_eq!(final_ver, 1 + wins.len() as u64, "one bump per OK");
        assert_eq!(
            wins,
            (2..=final_ver).collect::<Vec<u64>>(),
            "every version won exactly once"
        );
    }

    #[test]
    fn cas_contention_one_ok_per_version_threaded_server() {
        let server = TcpKvServer::start().unwrap();
        assert_cas_serialized(server.addr());
        server.shutdown();
    }

    #[test]
    fn cas_contention_one_ok_per_version_event_loop_server() {
        let server = EventLoopKvServer::start().unwrap();
        assert_cas_serialized(server.addr());
        server.shutdown();
    }

    /// Drive a server with request/response loops while it shuts down;
    /// whatever the teardown interrupts must not surface as client
    /// failures in `kv.conn_errors`.
    fn shutdown_under_load(addr: SocketAddr, shutdown: impl FnOnce()) {
        let stop = Arc::new(AtomicBool::new(false));
        let clients: Vec<_> = (0..4)
            .map(|i| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let Ok(mut c) = TcpKvClient::connect(addr) else {
                        return;
                    };
                    let mut j = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        j += 1;
                        match c.call(&format!("PUT k{i} v{j}")) {
                            // Server left mid-call (empty read or error):
                            // expected during shutdown.
                            Ok(r) if r.starts_with("OK ") => {}
                            _ => return,
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(100));
        shutdown();
        stop.store(true, Ordering::SeqCst);
        for c in clients {
            c.join().unwrap();
        }
    }

    #[test]
    fn threaded_shutdown_mid_traffic_counts_no_spurious_errors() {
        // Pins the fix for the shutdown race: force-closing both stream
        // directions used to kill in-flight replies and bump
        // kv.conn_errors for connections that did nothing wrong.
        let session = TraceSession::new();
        let server = TcpKvServer::start_traced(&session).unwrap();
        shutdown_under_load(server.addr(), move || server.shutdown());
        assert_eq!(
            session.snapshot().get("kv.conn_errors"),
            0,
            "shutdown fabricated connection errors"
        );
    }

    #[test]
    fn event_loop_shutdown_mid_traffic_counts_no_spurious_errors() {
        let session = TraceSession::new();
        let server = EventLoopKvServer::start_traced(&session).unwrap();
        shutdown_under_load(server.addr(), move || server.shutdown());
        assert_eq!(session.snapshot().get("kv.conn_errors"), 0);
    }

    #[test]
    fn event_loop_serves_the_full_protocol() {
        let server = EventLoopKvServer::start().unwrap();
        let mut c = TcpKvClient::connect(server.addr()).unwrap();
        assert_eq!(c.call("GET x").unwrap(), "NOTFOUND");
        assert_eq!(c.call("PUT x 41").unwrap(), "OK 1");
        assert_eq!(c.call("PUT x 42").unwrap(), "OK 2");
        assert_eq!(c.call("GET x").unwrap(), "VALUE 2 42");
        assert_eq!(c.call("CAS x 2 43").unwrap(), "OK 3");
        assert_eq!(c.call("CAS x 2 stale").unwrap(), "CONFLICT 3");
        assert_eq!(c.call("DEL x").unwrap(), "OK 0");
        assert_eq!(c.call("GET x").unwrap(), "NOTFOUND");
        assert!(c.call("FROB x").unwrap().starts_with("ERR"));
        assert_eq!(c.call("QUIT").unwrap(), "BYE");
        server.shutdown();
    }

    #[test]
    fn event_loop_handles_pipelined_requests_in_one_write() {
        // Three requests in a single syscall: the loop must split lines
        // itself instead of relying on one-read-per-request framing.
        let server = EventLoopKvServer::start().unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"PUT a 1\nPUT b 2\nGET a\n").unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut l = String::new();
            r.read_line(&mut l).unwrap();
            lines.push(l.trim_end().to_string());
        }
        assert_eq!(lines, ["OK 1", "OK 1", "VALUE 1 1"]);
        server.shutdown();
    }

    #[test]
    fn event_loop_concurrent_clients_shared_store() {
        let server = EventLoopKvServer::start().unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpKvClient::connect(addr).unwrap();
                    for j in 0..50 {
                        let r = c.call(&format!("PUT c{i} v{j}")).unwrap();
                        assert!(r.starts_with("OK "), "{r}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut c = TcpKvClient::connect(addr).unwrap();
        for i in 0..4 {
            assert_eq!(c.call(&format!("GET c{i}")).unwrap(), "VALUE 50 v49");
        }
        server.shutdown();
    }

    #[test]
    fn event_loop_mid_request_disconnect_is_survived_and_counted() {
        let server = EventLoopKvServer::start().unwrap();
        let addr = server.addr();
        let mut c = TcpKvClient::connect(addr).unwrap();
        assert_eq!(c.call("PUT victim alive").unwrap(), "OK 1");
        {
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(b"DEL victim").unwrap();
            // Drop: EOF with half a request buffered.
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.conn_errors() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "kv.conn_errors never incremented"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(server.conn_errors(), 1);
        assert_eq!(c.call("GET victim").unwrap(), "VALUE 1 alive");
        server.shutdown();
    }

    /// Send `PUT a 1\nQUIT\nPUT b 2\n` in one write; return the reply
    /// lines the server produced, stopping at EOF or once a read
    /// timeout shows no further reply is coming.
    fn pipeline_past_quit(addr: SocketAddr) -> Vec<String> {
        let s = TcpStream::connect(addr).unwrap();
        (&s).write_all(b"PUT a 1\nQUIT\nPUT b 2\n").unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_millis(500)))
            .unwrap();
        let mut r = BufReader::new(s);
        let mut replies = Vec::new();
        let mut l = String::new();
        loop {
            l.clear();
            match r.read_line(&mut l) {
                Ok(0) | Err(_) => return replies,
                Ok(_) => replies.push(l.trim_end().to_string()),
            }
        }
    }

    /// Both servers must execute the same prefix of a pipelined burst
    /// that contains QUIT, drop the same suffix, and agree that nothing
    /// about it was a connection error.
    fn assert_quit_drops_pipelined_suffix(addr: SocketAddr, conn_errors: impl Fn() -> u64) {
        assert_eq!(pipeline_past_quit(addr), ["OK 1", "BYE"]);
        let mut c = TcpKvClient::connect(addr).unwrap();
        assert_eq!(c.call("GET a").unwrap(), "VALUE 1 1", "prefix executed");
        assert_eq!(c.call("GET b").unwrap(), "NOTFOUND", "suffix dropped");
        assert_eq!(conn_errors(), 0, "a clean QUIT is not a conn error");
    }

    #[test]
    fn threaded_quit_drops_pipelined_suffix() {
        let server = TcpKvServer::start().unwrap();
        assert_quit_drops_pipelined_suffix(server.addr(), || server.conn_errors());
        server.shutdown();
    }

    #[test]
    fn event_loop_quit_drops_pipelined_suffix() {
        let server = EventLoopKvServer::start().unwrap();
        assert_quit_drops_pipelined_suffix(server.addr(), || server.conn_errors());
        server.shutdown();
    }

    /// Stream 4 × [`MAX_LINE`] bytes with no newline; expect `ERR
    /// too-long`, a closed connection, one `kv.conn_errors` bump, and a
    /// server that still serves new clients — on both architectures.
    fn assert_overlong_line_rejected(addr: SocketAddr, conn_errors: impl Fn() -> u64) {
        let s = TcpStream::connect(addr).unwrap();
        // Exactly MAX_LINE newline-less bytes: enough to trip the cap
        // on both servers, small enough to never block the writer.
        (&s).write_all(&vec![b'A'; MAX_LINE]).unwrap();
        s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut r = BufReader::new(s);
        let mut reply = String::new();
        let _ = r.read_line(&mut reply);
        assert_eq!(reply.trim_end(), "ERR too-long");
        // The overflow was counted…
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while conn_errors() == 0 {
            assert!(std::time::Instant::now() < deadline, "overflow not counted");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(conn_errors(), 1);
        // …and the server survived.
        let mut c = TcpKvClient::connect(addr).unwrap();
        assert_eq!(c.call("PUT ok 1").unwrap(), "OK 1");
    }

    #[test]
    fn threaded_overlong_line_rejected_not_buffered() {
        let server = TcpKvServer::start().unwrap();
        assert_overlong_line_rejected(server.addr(), || server.conn_errors());
        server.shutdown();
    }

    #[test]
    fn event_loop_overlong_line_rejected_not_buffered() {
        let server = EventLoopKvServer::start().unwrap();
        assert_overlong_line_rejected(server.addr(), || server.conn_errors());
        server.shutdown();
    }

    /// Pins the write-phase accounting fix: a zero-length write is a
    /// dead connection and must report `Dead` (which the sweep counts in
    /// `kv.conn_errors`), not silently vanish like it used to.
    #[test]
    fn zero_length_write_is_a_dead_connection() {
        struct ZeroSink;
        impl Write for ZeroSink {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut wbuf = b"OK 1\n".to_vec();
        assert!(matches!(
            write_pending(&mut ZeroSink, &mut wbuf),
            WriteStep::Dead
        ));
        assert_eq!(wbuf, b"OK 1\n", "nothing consumed from a dead conn");
    }
}
