//! The rank world: ranks + tag matching + traffic counters over a
//! pluggable [`Transport`].
//!
//! `World::run(p, f)` runs `f(&mut rank)` on `p` scoped threads joined
//! by in-process channels ([`LocalTransport`], the default transport
//! type parameter of [`Rank`]); `WireWorld::run` in [`crate::transport`]
//! runs the same `f` with each rank as a separate OS process. Either
//! way, `send` is non-blocking (eager buffered, like small-message
//! MPI), `recv(src, tag)` blocks and performs MPI-style envelope
//! matching, buffering messages that arrive out of order — the matching
//! lives here, above the transport seam, so both transports share it.
//! Every message increments global message/byte counters — the raw data
//! for the α–β analyses in [`crate::cost`]. A world started with
//! [`World::run_traced`] additionally publishes `mpi.msgs` / `mpi.bytes`
//! into a shared pdc-trace session and records per-rank send/recv
//! events, under the same schema the thread pool and `SimMachine` use.

use crate::transport::{Envelope, LocalTransport, Transport};
use crossbeam::channel::unbounded;
use pdc_core::metrics::Counter;
use pdc_core::trace::{self, EventKind, ThreadTrace, TraceSession};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Types that can be sent between ranks, with a modeled wire size.
pub trait Payload: Send + 'static {
    /// `Some(n)` when every value of this type models exactly `n`
    /// bytes. Containers use it to compute [`Self::size_bytes`] in O(1)
    /// instead of walking elements — `send` sizes every message, so a
    /// `Vec<u64>` payload would otherwise pay an O(len) walk per send.
    /// The default `None` means per-value sizes vary.
    const FIXED_SIZE: Option<u64> = None;

    /// Modeled size in bytes (for the β term of the cost model).
    fn size_bytes(&self) -> u64;
}

macro_rules! scalar_payload {
    ($($t:ty),*) => {$(
        impl Payload for $t {
            const FIXED_SIZE: Option<u64> = Some(std::mem::size_of::<$t>() as u64);
            fn size_bytes(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        }
    )*};
}
scalar_payload!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    bool,
    ()
);

impl<T: Payload> Payload for Vec<T> {
    fn size_bytes(&self) -> u64 {
        match T::FIXED_SIZE {
            Some(per_element) => per_element * self.len() as u64,
            None => self.iter().map(Payload::size_bytes).sum(),
        }
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    const FIXED_SIZE: Option<u64> = match (A::FIXED_SIZE, B::FIXED_SIZE) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    };
    fn size_bytes(&self) -> u64 {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl Payload for String {
    fn size_bytes(&self) -> u64 {
        self.len() as u64
    }
}

impl<T: Payload> Payload for Option<T> {
    fn size_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, Payload::size_bytes)
    }
}

/// Global traffic counters for a world run.
#[derive(Debug, Default)]
pub struct Traffic {
    msgs: AtomicU64,
    bytes: AtomicU64,
}

impl Traffic {
    /// Record `msgs` messages totalling `bytes` modeled bytes.
    pub(crate) fn count(&self, msgs: u64, bytes: u64) {
        self.msgs.fetch_add(msgs, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub(crate) fn stats(&self) -> TrafficStats {
        TrafficStats {
            messages: self.msgs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total point-to-point messages sent.
    pub messages: u64,
    /// Total modeled bytes sent.
    pub bytes: u64,
}

/// A traced rank's pdc-trace hookup.
struct RankObs {
    session: TraceSession,
    thread: ThreadTrace,
    /// `mpi.msgs`, shared across all ranks of the world.
    msgs: Counter,
    /// `mpi.bytes`, shared across all ranks of the world.
    bytes: Counter,
}

/// One rank's endpoint inside a running world.
///
/// Generic over the [`Transport`] moving its envelopes; the default is
/// the in-process [`LocalTransport`], so `Rank<M>` means what it always
/// meant. Tag matching, the pending buffer, and all observability live
/// here — above the transport seam — so every transport shares them.
pub struct Rank<M: Payload, T: Transport<M> = LocalTransport<M>> {
    id: usize,
    size: usize,
    transport: T,
    /// Out-of-order messages awaiting a matching recv.
    pending: VecDeque<Envelope<M>>,
    traffic: Arc<Traffic>,
    obs: Option<RankObs>,
    /// Collectives entered by this rank so far (for begin/end marks).
    coll_seq: u64,
}

impl<M: Payload, T: Transport<M>> Rank<M, T> {
    /// Wire up a rank endpoint over `transport`. When `session` is
    /// given, the rank publishes `mpi.msgs`/`mpi.bytes` counters into
    /// it and records send/recv events as actor `id`.
    pub(crate) fn new(
        id: usize,
        size: usize,
        transport: T,
        traffic: Arc<Traffic>,
        session: Option<&TraceSession>,
    ) -> Rank<M, T> {
        let obs = session.map(|sess| RankObs {
            session: sess.clone(),
            thread: sess.thread(id as u32),
            msgs: sess.counter("mpi.msgs"),
            bytes: sess.counter("mpi.bytes"),
        });
        Rank {
            id,
            size,
            transport,
            pending: VecDeque::new(),
            traffic,
            obs,
            coll_seq: 0,
        }
    }

    /// Tear down the rank endpoint and recover its transport — a wire
    /// child uses this to deliver its result and drain write queues
    /// after the rank body returns.
    pub(crate) fn into_transport(self) -> T {
        self.transport
    }

    /// This rank's id in `0..size`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `msg` to `dst` with `tag` (non-blocking, eager).
    ///
    /// # Panics
    /// Panics if `dst` is out of range or the destination rank has
    /// already finished and dropped its inbox.
    pub fn send(&self, dst: usize, tag: u32, msg: M) {
        assert!(dst < self.size, "rank {dst} out of range");
        let nbytes = msg.size_bytes();
        self.traffic.count(1, nbytes);
        if let Some(obs) = &self.obs {
            obs.msgs.inc();
            obs.bytes.add(nbytes);
            obs.thread.record(EventKind::Send, dst as u64, nbytes);
        }
        self.transport.send(self.id, dst, tag, msg);
    }

    /// Receive the next message matching `(src, tag)`, blocking until it
    /// arrives. Messages from other envelopes are buffered, preserving
    /// per-sender FIFO order.
    pub fn recv(&mut self, src: usize, tag: u32) -> M {
        // Check the pending buffer first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)
        {
            let msg = self.pending.remove(pos).unwrap().msg;
            self.note_recv(src, &msg);
            return msg;
        }
        loop {
            let env = self.transport.recv();
            if env.src == src && env.tag == tag {
                self.note_recv(src, &env.msg);
                return env.msg;
            }
            self.pending.push_back(env);
        }
    }

    /// Receive from any source with the given tag; returns `(src, msg)`.
    pub fn recv_any(&mut self, tag: u32) -> (usize, M) {
        if let Some(pos) = self.pending.iter().position(|e| e.tag == tag) {
            let e = self.pending.remove(pos).unwrap();
            self.note_recv(e.src, &e.msg);
            return (e.src, e.msg);
        }
        loop {
            let env = self.transport.recv();
            if env.tag == tag {
                self.note_recv(env.src, &env.msg);
                return (env.src, env.msg);
            }
            self.pending.push_back(env);
        }
    }

    fn note_recv(&self, src: usize, msg: &M) {
        if let Some(obs) = &self.obs {
            obs.thread
                .record(EventKind::Recv, src as u64, msg.size_bytes());
        }
    }

    /// Increment a named counter in the world's trace session, if this
    /// rank is traced. The collectives use this for their `coll.*`
    /// invocation counters; it is a no-op in untraced worlds.
    pub fn count(&self, name: &str) {
        if let Some(obs) = &self.obs {
            obs.session.counter(name).inc();
        }
    }

    /// Mark the start of a collective on this rank (`coll` is the
    /// collective's id code, see `coll::CollId`). Bumps the per-rank
    /// collective sequence number and, when traced, records a
    /// `coll_begin` event; every send/recv this rank records before
    /// the matching [`Self::coll_end`] belongs to that collective.
    /// Returns the sequence number to pass to `coll_end`.
    pub fn coll_begin(&mut self, coll: u64) -> u64 {
        self.coll_seq += 1;
        if let Some(obs) = &self.obs {
            obs.thread.record(EventKind::CollBegin, coll, self.coll_seq);
        }
        self.coll_seq
    }

    /// Mark the end of the collective opened with [`Self::coll_begin`];
    /// `coll` and `seq` must match the begin mark. No-op when untraced.
    pub fn coll_end(&mut self, coll: u64, seq: u64) {
        if let Some(obs) = &self.obs {
            obs.thread.record(EventKind::CollEnd, coll, seq);
        }
    }
}

/// A message-passing world.
pub struct World;

impl World {
    /// Run `f` on `p` ranks (threads); returns each rank's result in rank
    /// order plus the traffic counters.
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank panics.
    pub fn run<M, R, F>(p: usize, f: F) -> (Vec<R>, TrafficStats)
    where
        M: Payload,
        R: Send,
        F: Fn(&mut Rank<M>) -> R + Sync,
    {
        World::run_inner(p, None, f)
    }

    /// Like [`World::run`], but every rank publishes `mpi.msgs` /
    /// `mpi.bytes` counters and send/recv events into `session`. Rank
    /// `i` records as actor `i`.
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank panics.
    pub fn run_traced<M, R, F>(p: usize, session: &TraceSession, f: F) -> (Vec<R>, TrafficStats)
    where
        M: Payload,
        R: Send,
        F: Fn(&mut Rank<M>) -> R + Sync,
    {
        World::run_inner(p, Some(session), f)
    }

    /// [`World::run`] or [`World::run_traced`] behind one signature:
    /// `Some(session)` traces, `None` runs bare. Lets callers that are
    /// themselves generic over tracing (the scenario seam's workload
    /// wrappers) avoid duplicating both code paths.
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank panics.
    pub fn run_opt<M, R, F>(
        p: usize,
        session: Option<&TraceSession>,
        f: F,
    ) -> (Vec<R>, TrafficStats)
    where
        M: Payload,
        R: Send,
        F: Fn(&mut Rank<M>) -> R + Sync,
    {
        World::run_inner(p, session, f)
    }

    fn run_inner<M, R, F>(p: usize, session: Option<&TraceSession>, f: F) -> (Vec<R>, TrafficStats)
    where
        M: Payload,
        R: Send,
        F: Fn(&mut Rank<M>) -> R + Sync,
    {
        assert!(p > 0, "world needs at least one rank");
        let traffic = Arc::new(Traffic::default());
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let results: Vec<R> = std::thread::scope(|s| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(id, inbox)| {
                    let transport = LocalTransport {
                        senders: senders.clone(),
                        inbox,
                    };
                    let traffic = Arc::clone(&traffic);
                    let f = &f;
                    s.spawn(move || {
                        let mut rank = Rank::new(id, p, transport, traffic, session);
                        // In a traced world the rank thread also records
                        // pdc-sync acquire/release events under its rank
                        // id, so `pdc-analyze` sees rank-local locking.
                        if let Some(o) = &rank.obs {
                            trace::install_sync_trace(o.thread.clone());
                        }
                        let out = f(&mut rank);
                        trace::clear_sync_trace();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        });
        (results, traffic.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let (results, stats) = World::run(1, |r: &mut Rank<u64>| r.id());
        assert_eq!(results, vec![0]);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn ping_pong() {
        let (results, stats) = World::run(2, |r: &mut Rank<u64>| {
            if r.id() == 0 {
                r.send(1, 0, 42);
                r.recv(1, 0)
            } else {
                let v = r.recv(0, 0);
                r.send(0, 0, v + 1);
                v
            }
        });
        assert_eq!(results, vec![43, 42]);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.bytes, 16);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let (results, _) = World::run(2, |r: &mut Rank<u64>| {
            if r.id() == 0 {
                // Send tag 2 first, then tag 1.
                r.send(1, 2, 200);
                r.send(1, 1, 100);
                0
            } else {
                // Receive in the opposite order: matching must buffer.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                assert_eq!((a, b), (100, 200));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn per_sender_fifo_within_tag() {
        let (_, _) = World::run(2, |r: &mut Rank<u64>| {
            if r.id() == 0 {
                for i in 0..100 {
                    r.send(1, 7, i);
                }
            } else {
                for i in 0..100 {
                    assert_eq!(r.recv(0, 7), i, "FIFO per (src, tag)");
                }
            }
        });
    }

    #[test]
    fn recv_any_collects_from_all() {
        let (results, _) = World::run(4, |r: &mut Rank<u64>| {
            if r.id() == 0 {
                let mut sum = 0;
                let mut seen = [false; 4];
                for _ in 0..3 {
                    let (src, v) = r.recv_any(0);
                    assert!(!seen[src]);
                    seen[src] = true;
                    sum += v;
                }
                sum
            } else {
                r.send(0, 0, r.id() as u64 * 10);
                0
            }
        });
        assert_eq!(results[0], 60);
    }

    #[test]
    fn ring_pipeline() {
        // Each rank forwards an accumulating token around the ring.
        let p = 5;
        let (results, stats) = World::run(p, |r: &mut Rank<u64>| {
            let next = (r.id() + 1) % r.size();
            let prev = (r.id() + r.size() - 1) % r.size();
            if r.id() == 0 {
                r.send(next, 0, 1);
                r.recv(prev, 0)
            } else {
                let v = r.recv(prev, 0);
                r.send(next, 0, v + 1);
                v
            }
        });
        assert_eq!(results[0], p as u64, "token visited every rank");
        assert_eq!(stats.messages, p as u64);
    }

    #[test]
    fn vec_payload_byte_accounting() {
        let (_, stats) = World::run(2, |r: &mut Rank<Vec<u64>>| {
            if r.id() == 0 {
                r.send(1, 0, vec![0u64; 100]);
            } else {
                let v = r.recv(0, 0);
                assert_eq!(v.len(), 100);
            }
        });
        assert_eq!(stats.bytes, 800);
        assert_eq!(stats.messages, 1);
    }

    #[test]
    fn vec_size_fast_path_agrees_with_elementwise_walk() {
        // The O(1) `FIXED_SIZE * len` fast path must price a vector
        // exactly like the naive per-element walk it replaces.
        fn walked<T: Payload>(v: &[T]) -> u64 {
            v.iter().map(Payload::size_bytes).sum()
        }
        let fixed = vec![7u64; 1000];
        assert_eq!(<u64 as Payload>::FIXED_SIZE, Some(8));
        assert_eq!(fixed.size_bytes(), walked(&fixed));
        assert_eq!(fixed.size_bytes(), 8000);

        let pairs = vec![(1u32, true); 9];
        assert_eq!(<(u32, bool) as Payload>::FIXED_SIZE, Some(5));
        assert_eq!(pairs.size_bytes(), walked(&pairs));

        let unit = vec![(); 3];
        assert_eq!(unit.size_bytes(), walked(&unit));

        // Variable-size element types must keep the exact walk.
        let strings = vec!["ab".to_string(), "cdef".to_string()];
        assert_eq!(<String as Payload>::FIXED_SIZE, None);
        assert_eq!(strings.size_bytes(), walked(&strings));
        assert_eq!(strings.size_bytes(), 6);

        let nested = vec![vec![1u8, 2], vec![3]];
        assert_eq!(<Vec<u8> as Payload>::FIXED_SIZE, None);
        assert_eq!(nested.size_bytes(), walked(&nested));
        assert_eq!(nested.size_bytes(), 3);

        let options = vec![Some(1u64), None, Some(2)];
        assert_eq!(<Option<u64> as Payload>::FIXED_SIZE, None);
        assert_eq!(options.size_bytes(), walked(&options));
    }

    #[test]
    fn traced_world_publishes_counters_and_events() {
        let session = TraceSession::new();
        let (_, stats) = World::run_traced(2, &session, |r: &mut Rank<u64>| {
            if r.id() == 0 {
                r.send(1, 0, 42);
                r.recv(1, 0)
            } else {
                let v = r.recv(0, 0);
                r.send(0, 0, v + 1);
                v
            }
        });
        let snap = session.snapshot();
        assert_eq!(snap.get("mpi.msgs"), stats.messages);
        assert_eq!(snap.get("mpi.bytes"), stats.bytes);
        let events = session.events();
        let sends = events.iter().filter(|e| e.kind == EventKind::Send).count();
        let recvs = events.iter().filter(|e| e.kind == EventKind::Recv).count();
        assert_eq!(sends, 2);
        assert_eq!(recvs, 2);
        // Each rank records as its own actor.
        assert!(events.iter().any(|e| e.actor == 0));
        assert!(events.iter().any(|e| e.actor == 1));
        // Send events carry the modeled byte size.
        assert!(events
            .iter()
            .filter(|e| e.kind == EventKind::Send)
            .all(|e| e.b == 8));
    }

    #[test]
    fn untraced_world_counts_nothing_extra() {
        // `count` is a no-op without a session; stats still work.
        let (_, stats) = World::run(2, |r: &mut Rank<u64>| {
            r.count("coll.fake");
            if r.id() == 0 {
                r.send(1, 0, 7);
            } else {
                r.recv(0, 0);
            }
        });
        assert_eq!(stats.messages, 1);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn send_to_bad_rank_panics() {
        World::run(2, |r: &mut Rank<u64>| {
            if r.id() == 0 {
                r.send(5, 0, 1);
            }
        });
    }
}
