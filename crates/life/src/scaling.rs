//! The scalability *study*: the experiment students run and write up.
//!
//! Two instruments:
//!
//! * [`wallclock_strong_scaling`] — times the real threaded engine at
//!   each worker count (honest, but on a single-core CI host the curve
//!   is flat-to-negative — itself a teachable observation).
//! * [`modeled_strong_scaling`] — the deterministic
//!   [`pdc_core::SimMachine`] model of the same program structure
//!   (per-generation compute split over workers + one barrier), which
//!   reproduces the lab's textbook speedup shape on any host.

use crate::engine::step_generations;
use crate::grid::Grid;
use crate::parallel::parallel_step_generations;
use pdc_core::laws::ScalingCurve;
use pdc_core::machine::{BarrierModel, MachineConfig, SimMachine};
use pdc_core::scaling::strong_scaling;
use pdc_core::stats::time_op;

/// Wall-clock strong scaling of the threaded engine.
///
/// `reps` timing repetitions per point (minimum time reported, per the
/// lab's measurement discipline).
pub fn wallclock_strong_scaling(
    grid: &Grid,
    generations: usize,
    worker_counts: &[usize],
    reps: usize,
) -> ScalingCurve {
    strong_scaling(worker_counts, |p| {
        let t = time_op(reps, || {
            std::hint::black_box(parallel_step_generations(grid, generations, p))
        });
        t.min.as_secs_f64()
    })
}

/// Modeled strong scaling: per generation, `rows × cols` cell updates
/// split across `p` workers (block rows, remainder spread), then one
/// barrier among `p` workers; plus thread-spawn cost up front. Exactly
/// the threaded engine's structure, on the abstract machine.
pub fn modeled_strong_scaling(
    rows: usize,
    cols: usize,
    generations: usize,
    worker_counts: &[usize],
) -> ScalingCurve {
    modeled_strong_scaling_with(rows, cols, generations, worker_counts, BarrierModel::Linear)
}

/// [`modeled_strong_scaling`] with an explicit barrier cost model — the
/// ablation showing how much of the efficiency loss at high `p` is the
/// barrier's fault.
pub fn modeled_strong_scaling_with(
    rows: usize,
    cols: usize,
    generations: usize,
    worker_counts: &[usize],
    barrier_model: BarrierModel,
) -> ScalingCurve {
    strong_scaling(worker_counts, |p| {
        let mut m = SimMachine::new(MachineConfig {
            barrier_model,
            ..MachineConfig::with_cores(p)
        });
        m.spawn_workers(p);
        let workers = p.min(rows);
        // Per-generation row bands: the tallest band gates the phase.
        let base = rows / workers;
        let rem = rows % workers;
        let ops: Vec<u64> = (0..workers)
            .map(|w| ((base + usize::from(w < rem)) * cols) as u64)
            .collect();
        for _ in 0..generations {
            m.parallel(&ops);
            m.barrier(workers);
        }
        m.finish().elapsed()
    })
}

/// Verify the threaded engine and return its result with the sequential
/// baseline's update count (used by the experiments binary).
pub fn verified_run(grid: &Grid, generations: usize, workers: usize) -> (Grid, u64) {
    let (seq, updates) = step_generations(grid, generations);
    let (par, _) = parallel_step_generations(grid, generations, workers);
    assert_eq!(seq, par, "threaded engine must match sequential");
    (par, updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Boundary;

    #[test]
    fn modeled_curve_has_textbook_shape() {
        let curve = modeled_strong_scaling(512, 512, 50, &[1, 2, 4, 8, 16, 32]);
        let sp = curve.speedups();
        // Speedup grows initially...
        assert!(sp[1].1 > 1.5, "2 workers speedup {}", sp[1].1);
        assert!(sp[3].1 > sp[1].1, "8 > 2 workers");
        // ...but sub-linearly (barrier + imbalance overheads).
        let (p_last, s_last) = *sp.last().unwrap();
        assert!(s_last < p_last as f64, "no superlinear magic");
        // Efficiency decays monotonically.
        let eff = curve.efficiencies();
        for w in eff.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "efficiency must not rise: {eff:?}");
        }
    }

    #[test]
    fn modeled_small_grid_scales_worse() {
        // Fixed worker count: a small problem has worse efficiency than a
        // large one (sync costs don't amortize) — the lab's key insight.
        let small = modeled_strong_scaling(64, 64, 50, &[1, 8]);
        let large = modeled_strong_scaling(1024, 1024, 50, &[1, 8]);
        let eff_small = small.efficiencies()[1].1;
        let eff_large = large.efficiencies()[1].1;
        assert!(
            eff_large > eff_small,
            "large {eff_large} should beat small {eff_small}"
        );
    }

    #[test]
    fn wallclock_runs_and_is_positive() {
        let g = Grid::random(32, 32, Boundary::Torus, 0.3, 1);
        let curve = wallclock_strong_scaling(&g, 3, &[1, 2], 2);
        assert!(curve.points().iter().all(|p| p.time > 0.0));
    }

    #[test]
    fn verified_run_checks_equivalence() {
        let g = Grid::random(20, 20, Boundary::Torus, 0.4, 9);
        let (out, updates) = verified_run(&g, 5, 3);
        assert_eq!(updates, 20 * 20 * 5);
        assert_eq!(out.rows(), 20);
    }

    #[test]
    fn tree_barrier_ablation_improves_small_grid_scaling() {
        // Small grid, many workers: the barrier dominates; the tree
        // barrier recovers a chunk of the lost efficiency.
        let ps = [1usize, 32];
        let linear = modeled_strong_scaling_with(64, 64, 100, &ps, BarrierModel::Linear);
        let tree = modeled_strong_scaling_with(64, 64, 100, &ps, BarrierModel::Tree);
        let eff_linear = linear.efficiencies()[1].1;
        let eff_tree = tree.efficiencies()[1].1;
        assert!(
            eff_tree > eff_linear + 0.05,
            "tree {eff_tree} vs linear {eff_linear}"
        );
    }

    #[test]
    fn karp_flatt_rises_with_p_in_model() {
        // The model's overhead is sync, not serial code: Karp–Flatt
        // should expose it as a rising experimentally-determined serial
        // fraction — the lab report's diagnostic step.
        let curve = modeled_strong_scaling(256, 256, 50, &[1, 2, 4, 8, 16]);
        let kf = curve.karp_flatt_series();
        assert!(
            kf.last().unwrap().1 > kf.first().unwrap().1,
            "karp-flatt should rise: {kf:?}"
        );
    }
}
