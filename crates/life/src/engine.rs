//! Sequential Life stepping — the baseline of the scalability study.

use crate::grid::Grid;

/// Compute row `r` of the next generation into `out_row`.
///
/// Shared by the sequential, threaded, and distributed engines so all
/// three apply *exactly* the same rule (their outputs are compared
/// bit-for-bit in tests).
pub(crate) fn step_row(src: &Grid, r: usize, out_row: &mut [u8]) {
    let cols = src.cols();
    debug_assert_eq!(out_row.len(), cols);
    for (c, out) in out_row.iter_mut().enumerate() {
        let n = src.neighbors(r, c);
        let alive = src.get(r, c);
        // B3/S23.
        *out = u8::from(n == 3 || (alive && n == 2));
    }
}

/// Advance `grid` one generation, returning the new board.
pub fn step(grid: &Grid) -> Grid {
    let mut next = Grid::new(grid.rows(), grid.cols(), grid.boundary());
    for r in 0..grid.rows() {
        let cols = grid.cols();
        step_row(grid, r, &mut next.cells_mut()[r * cols..(r + 1) * cols]);
    }
    next
}

/// Advance `grid` by `generations`, returning the final board and the
/// total number of cell updates performed (the lab's work metric).
pub fn step_generations(grid: &Grid, generations: usize) -> (Grid, u64) {
    let gen_steps = (grid.rows() * grid.cols()) as u64;
    let mut cur = grid.clone();
    for _ in 0..generations {
        cur = step(&cur);
        // One unit-cost operation per cell update, attributed to the
        // caller's sync trace when one is installed (no-op otherwise)
        // so the span pass can measure the engine's empirical work.
        pdc_core::trace::record_steps(gen_steps);
    }
    let updates = gen_steps * generations as u64;
    (cur, updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{patterns, Boundary};

    #[test]
    fn block_is_still_life() {
        let mut g = Grid::new(6, 6, Boundary::Dead);
        g.stamp(2, 2, &patterns::BLOCK);
        let (after, _) = step_generations(&g, 5);
        assert_eq!(after, g);
    }

    #[test]
    fn blinker_oscillates_with_period_2() {
        let mut g = Grid::new(5, 5, Boundary::Dead);
        g.stamp(2, 1, &patterns::BLINKER);
        let one = step(&g);
        assert_ne!(one, g, "phase changes");
        let two = step(&one);
        assert_eq!(two, g, "period 2");
        assert_eq!(one.population(), 3);
    }

    #[test]
    fn toad_oscillates_with_period_2() {
        let mut g = Grid::new(6, 6, Boundary::Dead);
        g.stamp(2, 1, &patterns::TOAD);
        let two = step(&step(&g));
        assert_eq!(two, g);
    }

    #[test]
    fn glider_translates_by_one_diagonal_every_4_gens() {
        let mut g = Grid::new(12, 12, Boundary::Dead);
        g.stamp(1, 1, &patterns::GLIDER);
        let (after, _) = step_generations(&g, 4);
        let mut expected = Grid::new(12, 12, Boundary::Dead);
        expected.stamp(2, 2, &patterns::GLIDER);
        assert_eq!(after, expected);
    }

    #[test]
    fn glider_wraps_on_torus() {
        let mut g = Grid::new(8, 8, Boundary::Torus);
        g.stamp(0, 0, &patterns::GLIDER);
        // 8 * 4 = 32 generations: the glider crosses the board and
        // returns to its starting cells on a torus.
        let (after, _) = step_generations(&g, 32);
        assert_eq!(after, g);
        // Population conserved for a lone glider.
        assert_eq!(after.population(), 5);
    }

    #[test]
    fn empty_board_stays_empty_and_full_board_collapses() {
        let g = Grid::new(8, 8, Boundary::Torus);
        assert_eq!(step(&g).population(), 0);
        let mut full = Grid::new(8, 8, Boundary::Torus);
        for r in 0..8 {
            for c in 0..8 {
                full.set(r, c, true);
            }
        }
        // On a torus every cell has 8 neighbors: all die.
        assert_eq!(step(&full).population(), 0);
    }

    #[test]
    fn lone_cells_die_three_neighbors_birth() {
        let mut g = Grid::new(5, 5, Boundary::Dead);
        g.set(2, 2, true);
        assert_eq!(step(&g).population(), 0, "underpopulation");
        let mut g = Grid::new(5, 5, Boundary::Dead);
        g.set(1, 1, true);
        g.set(1, 3, true);
        g.set(3, 2, true);
        let next = step(&g);
        assert!(next.get(2, 2), "birth on exactly 3 neighbors");
    }

    #[test]
    fn update_count_reported() {
        let g = Grid::new(10, 20, Boundary::Torus);
        let (_, updates) = step_generations(&g, 7);
        assert_eq!(updates, 10 * 20 * 7);
    }
}
