//! Distributed Game of Life on `pdc-mpi`: row bands + ghost-row (halo)
//! exchange — the CS87 message-passing version of the CS31 lab, and the
//! "hybrid MPI ray tracer"-style project pattern the paper floats for
//! CS40.
//!
//! Each rank owns a contiguous band of rows of a **torus** board. Every
//! generation, ranks exchange boundary rows with their ring neighbors
//! (two messages per rank), then step their band locally against a
//! (band + 2)-row working buffer. The result is bit-identical to the
//! sequential engine; message counts are exactly `2 · p · generations`.

use crate::grid::{Boundary, Grid};
use pdc_core::trace::TraceSession;
use pdc_mpi::world::{Rank, TrafficStats, World};

const TAG_UP: u32 = 1; // a row traveling toward lower rank ids
const TAG_DOWN: u32 = 2; // a row traveling toward higher rank ids

/// Advance a torus board by `generations` on `ranks` message-passing
/// ranks. Returns the final board and the traffic counters.
///
/// Untraced convenience wrapper around
/// [`dist_step_generations_traced`].
///
/// # Panics
/// Panics if the board is not a torus (bands assume ring wrap), or if
/// `ranks == 0`.
pub fn dist_step_generations(
    grid: &Grid,
    generations: usize,
    ranks: usize,
) -> (Grid, TrafficStats) {
    dist_step_generations_traced(grid, generations, ranks, None)
}

/// [`dist_step_generations`] with optional pdc-trace observability:
/// with `Some(session)`, every rank records its send/recv events as
/// actor `rank.id()` (so `pdc-analyze`'s MPI lint sees the halo
/// exchange), each boundary row shipped bumps `life.halo_rows`, and the
/// generation count lands in `life.generations`. The resulting board is
/// identical either way.
///
/// # Panics
/// Panics if the board is not a torus (bands assume ring wrap), or if
/// `ranks == 0`.
pub fn dist_step_generations_traced(
    grid: &Grid,
    generations: usize,
    ranks: usize,
    session: Option<&TraceSession>,
) -> (Grid, TrafficStats) {
    assert!(
        grid.boundary() == Boundary::Torus,
        "distributed engine is torus-only"
    );
    assert!(ranks > 0, "need at least one rank");
    let rows = grid.rows();
    let cols = grid.cols();
    let p = ranks.min(rows);

    // Band boundaries.
    let base = rows / p;
    let rem = rows % p;
    let mut starts = Vec::with_capacity(p + 1);
    let mut lo = 0;
    for w in 0..p {
        starts.push(lo);
        lo += base + usize::from(w < rem);
    }
    starts.push(rows);

    // Flatten the initial board rows for distribution.
    let all_rows: Vec<Vec<u8>> = (0..rows)
        .map(|r| (0..cols).map(|c| u8::from(grid.get(r, c))).collect())
        .collect();

    if let Some(session) = session {
        session.counter("life.generations").add(generations as u64);
    }

    let (bands, stats) = World::run_opt(p, session, |rank: &mut Rank<Vec<u8>>| {
        let me = rank.id();
        let up = (me + p - 1) % p;
        let down = (me + 1) % p;
        let (r0, r1) = (starts[me], starts[me + 1]);
        let band_rows = r1 - r0;
        // Working buffer: ghost top + band + ghost bottom.
        let mut cur: Vec<Vec<u8>> = Vec::with_capacity(band_rows + 2);
        cur.push(vec![0; cols]); // ghost top (filled per generation)
        for row in &all_rows[r0..r1] {
            cur.push(row.clone());
        }
        cur.push(vec![0; cols]); // ghost bottom

        for _ in 0..generations {
            // Halo exchange: my top row travels up, my bottom row down.
            rank.send(up, TAG_UP, cur[1].clone());
            rank.count("life.halo_rows");
            rank.send(down, TAG_DOWN, cur[band_rows].clone());
            rank.count("life.halo_rows");
            // My ghost-bottom is the down neighbor's top row (tag UP);
            // my ghost-top is the up neighbor's bottom row (tag DOWN).
            let ghost_bottom = rank.recv(down, TAG_UP);
            let ghost_top = rank.recv(up, TAG_DOWN);
            cur[0] = ghost_top;
            cur[band_rows + 1] = ghost_bottom;

            // Step the band.
            let mut next: Vec<Vec<u8>> = vec![vec![0; cols]; band_rows];
            for br in 0..band_rows {
                for c in 0..cols {
                    let mut n = 0u8;
                    for dr in 0..3usize {
                        for dc in [-1i64, 0, 1] {
                            if dr == 1 && dc == 0 {
                                continue;
                            }
                            let rr = br + dr; // index into cur (br+1 is self row)
                            let cc = (c as i64 + dc).rem_euclid(cols as i64) as usize;
                            n += cur[rr][cc];
                        }
                    }
                    let alive = cur[br + 1][c] == 1;
                    next[br][c] = u8::from(n == 3 || (alive && n == 2));
                }
            }
            for (dst, src) in cur[1..=band_rows].iter_mut().zip(next) {
                *dst = src;
            }
        }
        cur[1..=band_rows].to_vec()
    });

    // Assemble.
    let mut out = Grid::new(rows, cols, Boundary::Torus);
    let mut r = 0;
    for band in bands {
        for row in band {
            for (c, &v) in row.iter().enumerate() {
                out.set(r, c, v == 1);
            }
            r += 1;
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::step_generations;
    use crate::grid::patterns;

    #[test]
    fn matches_sequential_for_various_rank_counts() {
        let g = Grid::random(24, 16, Boundary::Torus, 0.4, 77);
        let (seq, _) = step_generations(&g, 8);
        for ranks in [1usize, 2, 3, 4, 6, 8] {
            let (dist, _) = dist_step_generations(&g, 8, ranks);
            assert_eq!(dist, seq, "ranks={ranks}");
        }
    }

    #[test]
    fn glider_crosses_band_boundaries() {
        let mut g = Grid::new(16, 16, Boundary::Torus);
        g.stamp(1, 1, &patterns::GLIDER);
        let (seq, _) = step_generations(&g, 20);
        let (dist, _) = dist_step_generations(&g, 20, 4);
        assert_eq!(dist, seq, "glider must survive halo crossings");
    }

    #[test]
    fn message_count_is_two_per_rank_per_generation() {
        let g = Grid::random(32, 8, Boundary::Torus, 0.3, 5);
        let gens = 6;
        let ranks = 4;
        let (_, stats) = dist_step_generations(&g, gens, ranks);
        assert_eq!(stats.messages, (2 * ranks * gens) as u64);
        // Bytes: each message is one row of `cols` u8s.
        assert_eq!(stats.bytes, (2 * ranks * gens * 8) as u64);
    }

    #[test]
    fn more_ranks_than_rows_clamped() {
        let g = Grid::random(3, 10, Boundary::Torus, 0.5, 2);
        let (seq, _) = step_generations(&g, 5);
        let (dist, _) = dist_step_generations(&g, 5, 16);
        assert_eq!(dist, seq);
    }

    #[test]
    fn single_rank_self_exchange_works() {
        let g = Grid::random(8, 8, Boundary::Torus, 0.5, 31);
        let (seq, _) = step_generations(&g, 4);
        let (dist, _) = dist_step_generations(&g, 4, 1);
        assert_eq!(dist, seq);
    }

    #[test]
    fn traced_run_matches_untraced_and_counts_halo_rows() {
        let g = Grid::random(24, 12, Boundary::Torus, 0.4, 9);
        let (gens, ranks) = (5usize, 3usize);
        let session = TraceSession::new();
        let (traced, _) = dist_step_generations_traced(&g, gens, ranks, Some(&session));
        let (bare, _) = dist_step_generations(&g, gens, ranks);
        assert_eq!(traced, bare, "tracing must not change the board");
        let snap = session.snapshot();
        // Two boundary rows shipped per rank per generation.
        assert_eq!(snap.get("life.halo_rows"), (2 * ranks * gens) as u64);
        assert_eq!(snap.get("life.generations"), gens as u64);
        assert_eq!(snap.get("mpi.msgs"), (2 * ranks * gens) as u64);
        // The halo sends/recvs are in the event stream for the analyzer.
        let events = session.events();
        let sends = events
            .iter()
            .filter(|e| e.kind == pdc_core::trace::EventKind::Send)
            .count();
        assert_eq!(sends, 2 * ranks * gens);
    }

    #[test]
    fn zero_generations_identity() {
        let g = Grid::random(10, 10, Boundary::Torus, 0.5, 4);
        let (dist, stats) = dist_step_generations(&g, 0, 3);
        assert_eq!(dist, g);
        assert_eq!(stats.messages, 0);
    }
}
