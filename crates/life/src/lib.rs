//! # pdc-life — Conway's Game of Life, four ways
//!
//! The Game of Life is the spine of CS31's lab sequence (paper Table I):
//! first as a C-programming/timing lab, then as the **parallel Game of
//! Life with an experimental scalability study** — the course's capstone
//! shared-memory project. This crate implements the full ladder:
//!
//! * [`grid`] — the board: torus or dead-boundary, pattern library,
//!   deterministic random fills.
//! * [`engine`] — sequential stepping (the baseline students time).
//! * [`parallel`] — row-partitioned threaded stepping with a
//!   [`pdc_sync::SenseBarrier`] per generation, bit-identical to the
//!   sequential engine.
//! * [`scaling`] — the scalability *study*: wall-clock strong scaling
//!   plus the deterministic [`pdc_core::SimMachine`] model that
//!   reproduces the lab's speedup curves on any host.
//! * [`dist`] — the distributed version on [`pdc_mpi`]: row bands with
//!   ghost-row exchange, the halo pattern CS87 teaches.
//! * [`scenario`] — all of the above behind the
//!   [`pdc_core::scenario`] seam, digest-checked across backends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod grid;
pub mod parallel;
pub mod scaling;
pub mod scenario;

pub use engine::step_generations;
pub use grid::{Boundary, Grid};
pub use parallel::parallel_step_generations;
pub use scenario::LifeScenario;
