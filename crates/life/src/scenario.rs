//! The Game of Life behind the [`pdc_core::scenario`] seam.
//!
//! `size` is the board's side length (a `size × size` torus, random
//! fill from the seed); the work is a fixed number of generations. The
//! sequential engine is the baseline; the threads backend is the
//! barrier-per-generation row-partitioned stepper; the MPI backend is
//! the halo-exchange band decomposition, traced so `pdc-analyze` sees
//! the exchange. All three are bit-identical, which is exactly what the
//! outcome digest asserts.

use crate::dist::dist_step_generations_traced;
use crate::engine::step_generations;
use crate::grid::{Boundary, Grid};
use crate::parallel::parallel_step_generations;
use pdc_core::scenario::{Backend, Digest, Outcome, Scenario, ScenarioCtx};

/// Generations per run: enough for patterns to cross band boundaries,
/// small enough that the sweep stays fast.
pub const GENERATIONS: usize = 8;

/// Live-cell density of the seeded random board.
const DENSITY: f64 = 0.35;

/// Digest a board: dimensions plus every cell in row-major order.
pub fn digest_grid(grid: &Grid) -> u64 {
    let mut d = Digest::new();
    d.write_u64(grid.rows() as u64);
    d.write_u64(grid.cols() as u64);
    for r in 0..grid.rows() {
        for c in 0..grid.cols() {
            d.write(&[u8::from(grid.get(r, c))]);
        }
    }
    d.finish()
}

/// Game of Life on sequential / threads / MPI backends.
pub struct LifeScenario;

impl Scenario for LifeScenario {
    fn name(&self) -> &'static str {
        "life"
    }

    fn backends(&self) -> Vec<Backend> {
        vec![
            Backend::Sequential,
            Backend::Threads { workers: 4 },
            Backend::Mpi {
                ranks: 4,
                wire: false,
            },
        ]
    }

    fn run(&self, backend: &Backend, ctx: &ScenarioCtx<'_>) -> Outcome {
        let grid = Grid::random(ctx.size, ctx.size, Boundary::Torus, DENSITY, ctx.seed);
        let out = match backend {
            Backend::Sequential => step_generations(&grid, GENERATIONS).0,
            Backend::Threads { workers } => {
                parallel_step_generations(&grid, GENERATIONS, *workers).0
            }
            Backend::Mpi { ranks, wire: false } => {
                dist_step_generations_traced(&grid, GENERATIONS, *ranks, Some(ctx.session)).0
            }
            other => panic!("life scenario does not support {other}"),
        };
        let items = (ctx.size * ctx.size * GENERATIONS) as u64;
        ctx.session.counter("life.cell_updates").add(items);
        Outcome {
            digest: digest_grid(&out),
            items,
            detail: format!("pop={}", out.population()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::scenario::{run_scenario, AnalyzeVerdict, ScenarioConfig};
    use pdc_core::trace::TraceSession;

    fn no_analyzer(_: &TraceSession) -> AnalyzeVerdict {
        AnalyzeVerdict {
            clean: true,
            defects: 0,
            events: 0,
        }
    }

    #[test]
    fn all_backends_agree_on_small_boards() {
        let cfg = ScenarioConfig::new(42, &[12, 20]);
        let report = run_scenario(&LifeScenario, &cfg, &no_analyzer);
        assert_eq!(report.runs.len(), 6);
        assert!(report.outcomes_agree(), "{:?}", report.mismatches());
        assert!(report.rows_valid());
    }

    #[test]
    fn digest_tracks_board_content() {
        let a = Grid::random(10, 10, Boundary::Torus, 0.5, 1);
        let b = Grid::random(10, 10, Boundary::Torus, 0.5, 2);
        assert_ne!(digest_grid(&a), digest_grid(&b));
        assert_eq!(digest_grid(&a), digest_grid(&a.clone()));
    }
}
