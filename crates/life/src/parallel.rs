//! Threaded Game of Life: row bands + a barrier per generation.
//!
//! This is the paper's flagship lab ("Parallel Game of Life Using
//! Pthreads and Experimental Scalability Study"). Persistent workers
//! each own a band of rows; every generation they compute their band
//! from the read buffer into the write buffer, then meet at a
//! [`pdc_sync::SenseBarrier`]; buffers swap by generation parity.
//!
//! Cells are `AtomicU8` so the double-buffered sharing is safe Rust:
//! within a generation, reads target only the read buffer and each
//! worker writes only its own rows; the barrier's Release/Acquire
//! ordering publishes every write before the next generation reads it.

use crate::grid::{Boundary, Grid};
use pdc_core::trace::{self, EventKind};
use pdc_sync::SenseBarrier;
use std::sync::atomic::{AtomicU8, Ordering};

fn to_atomic(grid: &Grid) -> Vec<AtomicU8> {
    grid.cells().iter().map(|&c| AtomicU8::new(c)).collect()
}

fn neighbors_at(
    cells: &[AtomicU8],
    rows: usize,
    cols: usize,
    boundary: Boundary,
    r: usize,
    c: usize,
) -> u8 {
    let mut count = 0;
    for dr in [-1i64, 0, 1] {
        for dc in [-1i64, 0, 1] {
            if dr == 0 && dc == 0 {
                continue;
            }
            let (nr, nc) = (r as i64 + dr, c as i64 + dc);
            let alive = match boundary {
                Boundary::Torus => {
                    let nr = nr.rem_euclid(rows as i64) as usize;
                    let nc = nc.rem_euclid(cols as i64) as usize;
                    cells[nr * cols + nc].load(Ordering::Relaxed)
                }
                Boundary::Dead => {
                    if nr < 0 || nc < 0 || nr >= rows as i64 || nc >= cols as i64 {
                        0
                    } else {
                        cells[nr as usize * cols + nc as usize].load(Ordering::Relaxed)
                    }
                }
            };
            count += alive;
        }
    }
    count
}

/// Per-run statistics of the threaded engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelStats {
    /// Rows computed by each worker per generation.
    pub rows_per_worker: Vec<usize>,
    /// Barrier episodes executed (= generations).
    pub barrier_episodes: u64,
}

/// Advance `grid` by `generations` using `workers` threads.
/// Returns the final board plus statistics; the result is bit-identical
/// to [`crate::engine::step_generations`].
///
/// # Panics
/// Panics if `workers == 0`.
pub fn parallel_step_generations(
    grid: &Grid,
    generations: usize,
    workers: usize,
) -> (Grid, ParallelStats) {
    assert!(workers > 0, "need at least one worker");
    let rows = grid.rows();
    let cols = grid.cols();
    let boundary = grid.boundary();
    let workers = workers.min(rows); // never more workers than rows
    let buf_a = to_atomic(grid);
    let buf_b: Vec<AtomicU8> = (0..rows * cols).map(|_| AtomicU8::new(0)).collect();
    let barrier = SenseBarrier::new(workers);

    // Row bands (block partitioning with remainder spread).
    let base = rows / workers;
    let rem = rows % workers;
    let mut bands = Vec::with_capacity(workers);
    let mut lo = 0;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        bands.push(lo..lo + len);
        lo += len;
    }

    // When the calling thread has a sync trace installed (the scenario
    // driver does), the run becomes observable: each worker records
    // under its own sibling actor — barrier pulses from pdc-sync plus
    // one step mark per generation (its band's cell updates) — with
    // fork/join handles tying the workers' lifetimes to the caller so
    // the span pass sees one connected DAG. With no trace installed
    // all of this is a no-op.
    let parent = trace::current_sync_trace();
    let done_handles = std::thread::scope(|s| {
        let mut done_handles = Vec::new();
        for (w, band) in bands.clone().into_iter().enumerate() {
            let (buf_a, buf_b, barrier) = (&buf_a, &buf_b, &barrier);
            let tracing = parent.as_ref().map(|p| {
                let start = trace::next_site_id();
                let done = trace::next_site_id();
                p.record(EventKind::Fork, start, w as u64);
                done_handles.push(done);
                (p.sibling_auto(), start, done)
            });
            let band_steps = (band.len() * cols) as u64;
            s.spawn(move || {
                if let Some((t, start, _)) = &tracing {
                    t.record(EventKind::Join, *start, w as u64);
                    trace::install_sync_trace(t.clone());
                }
                for generation in 0..generations {
                    let (src, dst) = if generation % 2 == 0 {
                        (buf_a, buf_b)
                    } else {
                        (buf_b, buf_a)
                    };
                    for r in band.clone() {
                        for c in 0..cols {
                            let n = neighbors_at(src, rows, cols, boundary, r, c);
                            let alive = src[r * cols + c].load(Ordering::Relaxed) == 1;
                            let next = u8::from(n == 3 || (alive && n == 2));
                            dst[r * cols + c].store(next, Ordering::Relaxed);
                        }
                    }
                    trace::record_steps(band_steps);
                    // The barrier both synchronizes the generation and
                    // publishes this worker's writes to every reader.
                    barrier.wait();
                }
                if let Some((t, _, done)) = &tracing {
                    t.record(EventKind::Fork, *done, w as u64);
                    trace::clear_sync_trace();
                }
            });
        }
        done_handles
    });
    // The scope joined every worker; adopt their completion histories.
    if let Some(p) = &parent {
        for (w, handle) in done_handles.iter().enumerate() {
            p.record(EventKind::Join, *handle, w as u64);
        }
    }

    let final_buf = if generations.is_multiple_of(2) {
        &buf_a
    } else {
        &buf_b
    };
    let mut out = Grid::new(rows, cols, boundary);
    for (dst, src) in out.cells_mut().iter_mut().zip(final_buf.iter()) {
        *dst = src.load(Ordering::Relaxed);
    }
    let stats = ParallelStats {
        rows_per_worker: bands.iter().map(|b| b.len()).collect(),
        barrier_episodes: generations as u64,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::step_generations;
    use crate::grid::patterns;

    fn random_board(rows: usize, cols: usize, boundary: Boundary, seed: u64) -> Grid {
        Grid::random(rows, cols, boundary, 0.35, seed)
    }

    #[test]
    fn matches_sequential_exactly() {
        for (rows, cols) in [(16usize, 16usize), (17, 31), (8, 64)] {
            for boundary in [Boundary::Torus, Boundary::Dead] {
                let g = random_board(rows, cols, boundary, 99);
                let (seq, _) = step_generations(&g, 10);
                for workers in [1usize, 2, 3, 4, 8] {
                    let (par, _) = parallel_step_generations(&g, 10, workers);
                    assert_eq!(par, seq, "{rows}x{cols} {boundary:?} w={workers}");
                }
            }
        }
    }

    #[test]
    fn zero_generations_is_identity() {
        let g = random_board(10, 10, Boundary::Torus, 3);
        let (out, stats) = parallel_step_generations(&g, 0, 4);
        assert_eq!(out, g);
        assert_eq!(stats.barrier_episodes, 0);
    }

    #[test]
    fn more_workers_than_rows_clamped() {
        let g = random_board(3, 20, Boundary::Torus, 5);
        let (par, stats) = parallel_step_generations(&g, 4, 16);
        let (seq, _) = step_generations(&g, 4);
        assert_eq!(par, seq);
        assert_eq!(stats.rows_per_worker.len(), 3, "clamped to row count");
    }

    #[test]
    fn band_partition_covers_all_rows() {
        let g = random_board(17, 5, Boundary::Dead, 7);
        let (_, stats) = parallel_step_generations(&g, 1, 4);
        assert_eq!(stats.rows_per_worker.iter().sum::<usize>(), 17);
        // Remainder spread: sizes differ by at most one.
        let max = stats.rows_per_worker.iter().max().unwrap();
        let min = stats.rows_per_worker.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn glider_correct_under_threads() {
        let mut g = Grid::new(12, 12, Boundary::Dead);
        g.stamp(1, 1, &patterns::GLIDER);
        let (par, _) = parallel_step_generations(&g, 4, 3);
        let mut expected = Grid::new(12, 12, Boundary::Dead);
        expected.stamp(2, 2, &patterns::GLIDER);
        assert_eq!(par, expected);
    }

    #[test]
    fn traced_run_records_forks_steps_and_barrier_pulses() {
        use pdc_core::trace::{self, EventKind, TraceSession, MARK_STEPS};
        let session = TraceSession::with_capacity(1 << 12);
        let prev = trace::install_sync_trace(session.thread(500));
        let g = random_board(12, 10, Boundary::Torus, 21);
        let (out, _) = parallel_step_generations(&g, 3, 4);
        match prev {
            Some(p) => {
                trace::install_sync_trace(p);
            }
            None => {
                trace::clear_sync_trace();
            }
        }
        let (seq, _) = step_generations(&g, 3);
        assert_eq!(out, seq, "tracing must not change the result");
        let events = session.events();
        // 4 workers x (start fork by caller + start join + done fork +
        // done join by caller) = 16 fork/join events.
        let forks = events.iter().filter(|e| e.kind == EventKind::Fork).count();
        let joins = events.iter().filter(|e| e.kind == EventKind::Join).count();
        assert_eq!(forks, 8);
        assert_eq!(joins, 8);
        // One step mark per worker per generation, band cells each.
        let marks: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Mark && e.a == MARK_STEPS)
            .collect();
        assert_eq!(marks.len(), 4 * 3);
        assert_eq!(
            marks.iter().map(|e| e.b).sum::<u64>(),
            12 * 10 * 3,
            "attributed steps cover every cell update"
        );
        // The sense barrier's pulses are visible (release on arrival,
        // acquire on wakeup, every worker, every generation).
        let pulses = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Acquire | EventKind::Release))
            .count();
        assert_eq!(pulses, 2 * 4 * 3);
        // Untraced runs record nothing.
        assert!(trace::current_sync_trace().is_none());
        let before = session.events().len();
        parallel_step_generations(&g, 2, 2);
        assert_eq!(session.events().len(), before);
    }

    #[test]
    fn odd_generation_count_lands_in_other_buffer() {
        let g = random_board(9, 9, Boundary::Torus, 11);
        let (seq, _) = step_generations(&g, 7);
        let (par, _) = parallel_step_generations(&g, 7, 2);
        assert_eq!(par, seq);
    }
}
