//! The Life board: storage, boundaries, patterns.

use pdc_core::rng::Rng;

/// Boundary condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Wrap-around (the CS31 lab default).
    Torus,
    /// Cells beyond the edge are permanently dead.
    Dead,
}

/// A Life board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
    boundary: Boundary,
    cells: Vec<u8>, // 0 or 1; u8 keeps neighbor sums branch-free
}

impl Grid {
    /// An empty `rows × cols` board.
    ///
    /// # Panics
    /// Panics on a zero dimension.
    pub fn new(rows: usize, cols: usize, boundary: Boundary) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Grid {
            rows,
            cols,
            boundary,
            cells: vec![0; rows * cols],
        }
    }

    /// A board randomly filled with live-cell `density` in `[0, 1]`.
    pub fn random(rows: usize, cols: usize, boundary: Boundary, density: f64, seed: u64) -> Self {
        let mut g = Grid::new(rows, cols, boundary);
        let mut rng = Rng::new(seed);
        for c in g.cells.iter_mut() {
            *c = u8::from(rng.chance(density));
        }
        g
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Boundary condition.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Is the cell at `(r, c)` alive?
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "cell ({r},{c}) out of range"
        );
        self.cells[r * self.cols + c] == 1
    }

    /// Set the cell at `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, alive: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "cell ({r},{c}) out of range"
        );
        self.cells[r * self.cols + c] = u8::from(alive);
    }

    /// Number of live cells.
    pub fn population(&self) -> usize {
        self.cells.iter().map(|&c| c as usize).sum()
    }

    /// Raw row-major cell bytes (for engines).
    pub(crate) fn cells(&self) -> &[u8] {
        &self.cells
    }

    /// Raw mutable cell bytes (for engines).
    pub(crate) fn cells_mut(&mut self) -> &mut [u8] {
        &mut self.cells
    }

    /// Live-neighbor count of `(r, c)` under the boundary rule.
    pub fn neighbors(&self, r: usize, c: usize) -> u8 {
        let mut count = 0u8;
        for dr in [-1i64, 0, 1] {
            for dc in [-1i64, 0, 1] {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                let alive = match self.boundary {
                    Boundary::Torus => {
                        let nr = nr.rem_euclid(self.rows as i64) as usize;
                        let nc = nc.rem_euclid(self.cols as i64) as usize;
                        self.cells[nr * self.cols + nc]
                    }
                    Boundary::Dead => {
                        if nr < 0 || nc < 0 || nr >= self.rows as i64 || nc >= self.cols as i64 {
                            0
                        } else {
                            self.cells[nr as usize * self.cols + nc as usize]
                        }
                    }
                };
                count += alive;
            }
        }
        count
    }

    /// Stamp a pattern (list of live `(r, c)` offsets) at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the pattern exceeds the board.
    pub fn stamp(&mut self, r0: usize, c0: usize, pattern: &[(usize, usize)]) {
        for &(dr, dc) in pattern {
            self.set(r0 + dr, c0 + dc, true);
        }
    }

    /// Render as `.`/`#` text (small boards, tests and demos).
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(self.rows * (self.cols + 1));
        for r in 0..self.rows {
            for c in 0..self.cols {
                s.push(if self.get(r, c) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

/// Classic patterns as `(row, col)` offsets.
pub mod patterns {
    /// Period-2 oscillator.
    pub const BLINKER: [(usize, usize); 3] = [(0, 0), (0, 1), (0, 2)];
    /// Still life.
    pub const BLOCK: [(usize, usize); 4] = [(0, 0), (0, 1), (1, 0), (1, 1)];
    /// The glider (moves one cell diagonally every 4 generations).
    pub const GLIDER: [(usize, usize); 5] = [(0, 1), (1, 2), (2, 0), (2, 1), (2, 2)];
    /// Period-2 oscillator (two phases non-symmetric).
    pub const TOAD: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 0), (1, 1), (1, 2)];
    /// Methuselah: stabilizes after 1103 generations (unbounded board).
    pub const R_PENTOMINO: [(usize, usize); 5] = [(0, 1), (0, 2), (1, 0), (1, 1), (2, 1)];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_population() {
        let mut g = Grid::new(4, 5, Boundary::Dead);
        assert_eq!(g.population(), 0);
        g.set(0, 0, true);
        g.set(3, 4, true);
        assert!(g.get(0, 0) && g.get(3, 4));
        assert_eq!(g.population(), 2);
        g.set(0, 0, false);
        assert_eq!(g.population(), 1);
    }

    #[test]
    fn neighbor_counts_dead_boundary() {
        let mut g = Grid::new(3, 3, Boundary::Dead);
        g.stamp(0, 0, &patterns::BLOCK);
        // Corner of the block: 3 neighbors; far corner of board: 1.
        assert_eq!(g.neighbors(0, 0), 3);
        assert_eq!(g.neighbors(2, 2), 1);
        // Edge cells see nothing beyond the board.
        assert_eq!(g.neighbors(0, 2), 2);
    }

    #[test]
    fn neighbor_counts_torus_wrap() {
        let mut g = Grid::new(4, 4, Boundary::Torus);
        g.set(0, 0, true);
        // Wrapped neighbors of the opposite corner see it.
        assert_eq!(g.neighbors(3, 3), 1);
        assert_eq!(g.neighbors(0, 3), 1);
        assert_eq!(g.neighbors(3, 0), 1);
    }

    #[test]
    fn random_density_approximate() {
        let g = Grid::random(100, 100, Boundary::Torus, 0.3, 42);
        let frac = g.population() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "density {frac}");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Grid::random(32, 32, Boundary::Torus, 0.5, 7);
        let b = Grid::random(32, 32, Boundary::Torus, 0.5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn render_shape() {
        let mut g = Grid::new(2, 3, Boundary::Dead);
        g.set(0, 1, true);
        assert_eq!(g.render(), ".#.\n...\n");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Grid::new(2, 2, Boundary::Dead).get(2, 0);
    }
}
