//! Selection: quickselect, median-of-medians, and parallel selection.
//!
//! CS41's "Selection" row (Table III): the expected-linear randomized
//! algorithm, the worst-case-linear deterministic one, and a parallel
//! version built from the scan-based filter primitive.

use pdc_core::rng::Rng;
use pdc_threads::sliceops::par_filter;

/// The `k`-th smallest element (0-based) by randomized quickselect.
/// Expected O(n).
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn quickselect<T: Ord + Clone>(data: &[T], k: usize, seed: u64) -> T {
    assert!(k < data.len(), "k={k} out of range {}", data.len());
    let mut rng = Rng::new(seed);
    let mut work: Vec<T> = data.to_vec();
    let mut k = k;
    loop {
        if work.len() == 1 {
            return work.pop().unwrap();
        }
        let pivot = work[rng.usize_in(0, work.len())].clone();
        let (less, rest): (Vec<T>, Vec<T>) = work.into_iter().partition(|x| *x < pivot);
        let (equal, greater): (Vec<T>, Vec<T>) = rest.into_iter().partition(|x| *x == pivot);
        if k < less.len() {
            work = less;
        } else if k < less.len() + equal.len() {
            return pivot;
        } else {
            k -= less.len() + equal.len();
            work = greater;
        }
    }
}

/// The `k`-th smallest element by deterministic median-of-medians.
/// Worst-case O(n).
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn median_of_medians<T: Ord + Clone>(data: &[T], k: usize) -> T {
    assert!(k < data.len(), "k={k} out of range {}", data.len());
    mom_select(data.to_vec(), k)
}

fn mom_select<T: Ord + Clone>(mut data: Vec<T>, mut k: usize) -> T {
    loop {
        if data.len() <= 10 {
            data.sort();
            return data[k].clone();
        }
        // Medians of groups of 5.
        let medians: Vec<T> = data
            .chunks(5)
            .map(|g| {
                let mut g = g.to_vec();
                g.sort();
                g[g.len() / 2].clone()
            })
            .collect();
        let m = medians.len();
        let pivot = mom_select(medians, m / 2);
        let (less, rest): (Vec<T>, Vec<T>) = data.into_iter().partition(|x| *x < pivot);
        let (equal, greater): (Vec<T>, Vec<T>) = rest.into_iter().partition(|x| *x == pivot);
        if k < less.len() {
            data = less;
        } else if k < less.len() + equal.len() {
            return pivot;
        } else {
            k -= less.len() + equal.len();
            data = greater;
        }
    }
}

/// Parallel quickselect: the partition step uses the parallel filter
/// (flag + scan + pack) from `pdc-threads`, the CS41 scan application.
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn parallel_select<T: Ord + Clone + Send + Sync>(
    data: &[T],
    k: usize,
    workers: usize,
    seed: u64,
) -> T {
    assert!(k < data.len(), "k={k} out of range {}", data.len());
    let mut rng = Rng::new(seed);
    let mut work: Vec<T> = data.to_vec();
    let mut k = k;
    loop {
        if work.len() <= 256 {
            work.sort();
            return work[k].clone();
        }
        let pivot = work[rng.usize_in(0, work.len())].clone();
        let less = par_filter(&work, workers, |x| *x < pivot);
        if k < less.len() {
            work = less;
            continue;
        }
        let equal_count = work.iter().filter(|x| **x == pivot).count();
        if k < less.len() + equal_count {
            return pivot;
        }
        k -= less.len() + equal_count;
        work = par_filter(&work, workers, |x| *x > pivot);
    }
}

/// Convenience: the median (lower median for even lengths).
pub fn median<T: Ord + Clone>(data: &[T]) -> T {
    quickselect(data, (data.len() - 1) / 2, 0xC0FFEE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all_ks(data: &[i64]) {
        let mut sorted = data.to_vec();
        sorted.sort();
        for (k, &expect) in sorted.iter().enumerate() {
            assert_eq!(quickselect(data, k, 42), expect, "qs k={k}");
            assert_eq!(median_of_medians(data, k), expect, "mom k={k}");
        }
    }

    #[test]
    fn selects_correctly_small() {
        check_all_ks(&[5]);
        check_all_ks(&[2, 1]);
        check_all_ks(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3]);
        check_all_ks(&(0..50).rev().collect::<Vec<i64>>());
        check_all_ks(&[7; 20]);
    }

    #[test]
    fn selects_correctly_large_random() {
        let mut rng = Rng::new(777);
        let data = rng.i64_vec(10_000);
        let mut sorted = data.clone();
        sorted.sort();
        for k in [0usize, 1, 4_999, 5_000, 9_998, 9_999] {
            assert_eq!(quickselect(&data, k, 1), sorted[k]);
            assert_eq!(median_of_medians(&data, k), sorted[k]);
            assert_eq!(parallel_select(&data, k, 4, 1), sorted[k]);
        }
    }

    #[test]
    fn parallel_select_matches_on_duplicates() {
        let data: Vec<i64> = (0..5000).map(|i| i % 7).collect();
        let mut sorted = data.clone();
        sorted.sort();
        for k in [0usize, 100, 2500, 4999] {
            assert_eq!(parallel_select(&data, k, 3, 9), sorted[k]);
        }
    }

    #[test]
    fn median_lower_for_even() {
        assert_eq!(median(&[4, 1, 3, 2]), 2);
        assert_eq!(median(&[5, 1, 3]), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_out_of_range_panics() {
        quickselect(&[1, 2, 3], 3, 0);
    }

    #[test]
    fn mom_adversarial_sorted_runs() {
        // Deterministic algorithm on pathological inputs: still linear
        // (we just check correctness here; the bench checks scaling).
        let data: Vec<i64> = (0..20_000).collect();
        assert_eq!(median_of_medians(&data, 10_000), 10_000);
        let data: Vec<i64> = (0..20_000).rev().collect();
        assert_eq!(median_of_medians(&data, 0), 0);
    }
}
