//! Merge sort — "a primary example, revisiting the analysis of its
//! complexity in the RAM and out-of-core contexts, as well as discussing
//! the work and span of parallel merge sort" (paper, Section III-A).
//!
//! Three executable variants plus the closed-form analysis:
//!
//! | variant                    | work        | span          |
//! |----------------------------|-------------|---------------|
//! | [`merge_sort`] (RAM model) | Θ(n log n)  | Θ(n log n)    |
//! | [`parallel_merge_sort`]    | Θ(n log n)  | Θ(n) — serial merges gate |
//! | [`parallel_merge_sort_pmerge`] | Θ(n log n) | Θ(log³ n) — CLRS 27.3 |
//!
//! (The out-of-core variant lives in `pdc-extmem::extsort`.)

use pdc_core::workspan::{closed_form, Bounds, Theta, WorkSpan};
use pdc_threads::join::{depth_for, join_depth};

/// Declared asymptotic bounds for the three merge-sort variants — the
/// registry entries the span gate (and the tests below) curve-fit
/// measured/closed-form size sweeps against. Order matches the module
/// table: sequential, serial-merge parallel, parallel-merge parallel.
pub fn declared_bounds() -> Vec<(&'static str, Bounds)> {
    vec![
        ("merge_sort", Bounds::new(Theta::NLogN, Theta::NLogN)),
        (
            "parallel_merge_sort",
            Bounds::new(Theta::NLogN, Theta::Linear),
        ),
        (
            "parallel_merge_sort_pmerge",
            Bounds::new(Theta::NLogN, Theta::LogCubed),
        ),
    ]
}

/// Stable sequential merge of two sorted slices into a vector.
pub fn merge<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sequential (RAM-model) top-down merge sort. Stable.
pub fn merge_sort<T: Ord + Clone>(data: &[T]) -> Vec<T> {
    if data.len() <= 1 {
        return data.to_vec();
    }
    let mid = data.len() / 2;
    let left = merge_sort(&data[..mid]);
    let right = merge_sort(&data[mid..]);
    merge(&left, &right)
}

/// Fork-join merge sort with **serial merges**: the halves sort in
/// parallel (down to `depth` fork levels) but each merge is sequential,
/// so the final Θ(n) merge gates the span.
pub fn parallel_merge_sort<T: Ord + Clone + Send + Sync>(data: &[T], workers: usize) -> Vec<T> {
    let depth = depth_for(workers, data.len(), 1024);
    psort(data, depth)
}

fn psort<T: Ord + Clone + Send + Sync>(data: &[T], depth: u32) -> Vec<T> {
    if data.len() <= 1 {
        return data.to_vec();
    }
    if depth == 0 {
        return merge_sort(data);
    }
    let mid = data.len() / 2;
    let (left, right) = join_depth(
        depth,
        || psort(&data[..mid], depth - 1),
        || psort(&data[mid..], depth - 1),
    );
    merge(&left, &right)
}

/// Fork-join merge sort with the **parallel merge** of CLRS §27.3:
/// the larger half's median splits the smaller half by binary search and
/// the two sub-merges recurse in parallel. Span Θ(log³ n).
pub fn parallel_merge_sort_pmerge<T: Ord + Clone + Send + Sync>(
    data: &[T],
    workers: usize,
) -> Vec<T> {
    let depth = depth_for(workers, data.len(), 1024);
    psort_pmerge(data, depth)
}

fn psort_pmerge<T: Ord + Clone + Send + Sync>(data: &[T], depth: u32) -> Vec<T> {
    if data.len() <= 1 {
        return data.to_vec();
    }
    if depth == 0 {
        return merge_sort(data);
    }
    let mid = data.len() / 2;
    let (left, right) = join_depth(
        depth,
        || psort_pmerge(&data[..mid], depth - 1),
        || psort_pmerge(&data[mid..], depth - 1),
    );
    parallel_merge(&left, &right, depth)
}

/// The CLRS parallel merge: recursive median splitting, sub-merges in
/// parallel down to `depth` forks.
pub fn parallel_merge<T: Ord + Clone + Send + Sync>(a: &[T], b: &[T], depth: u32) -> Vec<T> {
    // Ensure a is the longer side.
    let (a, b) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    if a.is_empty() {
        return Vec::new();
    }
    if depth == 0 || a.len() + b.len() <= 64 {
        return merge_stable_sided(a, b);
    }
    let ma = a.len() / 2;
    let pivot = &a[ma];
    // partition_point: first index in b with b[j] > pivot keeps stability
    // for the (a-first) convention used by merge().
    let mb = b.partition_point(|x| x <= pivot);
    let (lo, hi) = join_depth(
        depth,
        || parallel_merge(&a[..ma], &b[..mb], depth - 1),
        || parallel_merge(&a[ma + 1..], &b[mb..], depth - 1),
    );
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend(lo);
    out.push(pivot.clone());
    out.extend(hi);
    out
}

// NOTE: the recursive splitting swaps sides, so full stability across
// equal elements of a and b is not preserved by parallel_merge; the
// *sortedness* and multiset equality are (tested). This mirrors CLRS,
// which presents P-MERGE without a stability claim.
fn merge_stable_sided<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    merge(a, b)
}

/// Closed-form work/span of sequential merge sort on `n` elements
/// (unit = comparisons, merge modeled as n).
pub fn analysis_sequential(n: u64) -> WorkSpan {
    if n <= 1 {
        return WorkSpan::ZERO;
    }
    let logn = closed_form::ceil_log2(n);
    WorkSpan::new(n * logn, n * logn)
}

/// Closed-form work/span of parallel merge sort with serial merges:
/// span = sum of merge sizes down one recursion path ≈ 2n.
pub fn analysis_parallel_serial_merge(n: u64) -> WorkSpan {
    if n <= 1 {
        return WorkSpan::ZERO;
    }
    let logn = closed_form::ceil_log2(n);
    WorkSpan::new(n * logn, 2 * n)
}

/// Closed-form work/span of parallel merge sort with parallel merges:
/// span Θ(log³ n) (CLRS 27.3).
pub fn analysis_parallel_pmerge(n: u64) -> WorkSpan {
    if n <= 1 {
        return WorkSpan::ZERO;
    }
    let logn = closed_form::ceil_log2(n).max(1);
    WorkSpan::new(n * logn, logn * logn * logn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::rng::Rng;

    fn workloads() -> Vec<Vec<i64>> {
        let mut rng = Rng::new(2024);
        vec![
            vec![],
            vec![5],
            vec![2, 1],
            (0..100).collect(),
            (0..100).rev().collect(),
            vec![7; 50],
            rng.i64_vec(1000),
            (0..1000).map(|i| (i * 37) % 101).collect(),
        ]
    }

    #[test]
    fn merge_basic() {
        assert_eq!(merge(&[1, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merge::<i32>(&[], &[]), Vec::<i32>::new());
        assert_eq!(merge(&[1, 2], &[]), vec![1, 2]);
    }

    #[test]
    fn all_variants_sort_correctly() {
        for w in workloads() {
            let mut want = w.clone();
            want.sort();
            assert_eq!(merge_sort(&w), want, "seq");
            for p in [1usize, 2, 4] {
                assert_eq!(parallel_merge_sort(&w, p), want, "par p={p}");
                assert_eq!(parallel_merge_sort_pmerge(&w, p), want, "pmerge p={p}");
            }
        }
    }

    #[test]
    fn merge_sort_is_stable() {
        // Sort (key, id) pairs by key only; ids must stay in order.
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct Item(u32, usize);
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.cmp(&other.0)
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let items: Vec<Item> = (0..200).map(|i| Item((i * 7) % 5, i as usize)).collect();
        let sorted = merge_sort(&items);
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn parallel_merge_correct_on_adversarial_splits() {
        let mut rng = Rng::new(5);
        for _ in 0..50 {
            let na = rng.usize_in(0, 200);
            let nb = rng.usize_in(0, 200);
            let mut a = rng.i64_vec(na);
            let mut b = rng.i64_vec(nb);
            a.sort();
            b.sort();
            let got = parallel_merge(&a, &b, 3);
            let want = merge(&a, &b);
            assert_eq!(got.len(), want.len());
            // Same multiset, sorted.
            assert!(got.windows(2).all(|w| w[0] <= w[1]));
            let mut g = got.clone();
            let mut w2 = want.clone();
            g.sort();
            w2.sort();
            assert_eq!(g, w2);
        }
    }

    #[test]
    fn analysis_span_ordering() {
        // For large n: seq span >> serial-merge span >> pmerge span.
        let n = 1 << 20;
        let seq = analysis_sequential(n);
        let par = analysis_parallel_serial_merge(n);
        let pm = analysis_parallel_pmerge(n);
        assert_eq!(seq.work, par.work);
        assert_eq!(seq.work, pm.work);
        assert!(seq.span > par.span * 5);
        assert!(par.span > pm.span * 100);
        // Parallelism ordering follows.
        assert!(pm.parallelism() > par.parallelism());
        assert!(par.parallelism() > seq.parallelism());
    }

    #[test]
    fn declared_bounds_track_closed_form_sweeps() {
        // Sweep the closed-form analyses over a 64x size range and
        // curve-fit against the registry declarations: the right shape
        // fits tightly, swapping declarations between variants fails.
        let sizes = [1u64 << 10, 1 << 12, 1 << 14, 1 << 16];
        let sweep = |f: fn(u64) -> WorkSpan| -> Vec<(u64, WorkSpan)> {
            sizes.iter().map(|&n| (n, f(n))).collect()
        };
        let registry = declared_bounds();
        let find = |name: &str| {
            registry
                .iter()
                .find(|(k, _)| *k == name)
                .unwrap_or_else(|| panic!("{name} not in registry"))
                .1
        };
        type AnalysisCase = (&'static str, fn(u64) -> WorkSpan);
        let cases: [AnalysisCase; 3] = [
            ("merge_sort", analysis_sequential),
            ("parallel_merge_sort", analysis_parallel_serial_merge),
            ("parallel_merge_sort_pmerge", analysis_parallel_pmerge),
        ];
        for (name, f) in cases {
            let (w, s) = find(name).fit(&sweep(f), 1.5);
            assert!(w.ok, "{name} work: {w:?}");
            assert!(s.ok, "{name} span: {s:?}");
        }
        // Cross-check: the sequential span is NOT Θ(n) and the
        // serial-merge span is NOT Θ(n log n) over this range.
        let (_, s) = find("parallel_merge_sort").fit(&sweep(analysis_sequential), 1.5);
        assert!(!s.ok, "n log n span must not fit a Θ(n) declaration");
        let (_, s) = find("merge_sort").fit(&sweep(analysis_parallel_serial_merge), 1.5);
        assert!(!s.ok, "Θ(n) span must not fit an n log n declaration");
    }

    #[test]
    fn analysis_degenerate_cases() {
        assert_eq!(analysis_sequential(0), WorkSpan::ZERO);
        assert_eq!(analysis_sequential(1), WorkSpan::ZERO);
        assert_eq!(analysis_parallel_pmerge(1), WorkSpan::ZERO);
    }
}
