//! # pdc-algos — the CS41 algorithm suite
//!
//! Paper Table III's "Algorithmic Problems: Sorting, Selection, Matrix
//! Computation" and "Algorithmic Paradigms: Divide and Conquer,
//! Recursion, Scan, Blocking", implemented across models:
//!
//! * [`mergesort`] — the course's unifying example: sequential,
//!   fork-join with serial merges (span Θ(n)), and fork-join with
//!   *parallel* merges (span Θ(log³ n)), plus closed-form work/span.
//! * [`sorting`] — quicksort (sequential/parallel) and sample sort (the
//!   bucket algorithm distributed-memory sorts are built on).
//! * [`selection`] — quickselect, deterministic median-of-medians, and
//!   a filter-based parallel selection.
//! * [`matrix`] — dense matmul: naive, loop-reordered (ikj), blocked,
//!   parallel, and Strassen.
//! * [`scanapps`] — scan applications: line-of-sight and a scan-based
//!   binary LSD radix sort.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod mergesort;
pub mod scanapps;
pub mod selection;
pub mod sorting;

pub use matrix::Matrix;
pub use mergesort::{merge_sort, parallel_merge_sort};
