//! Scan applications: line-of-sight and scan-based radix sort.
//!
//! "Scan" appears by name in Table III's paradigms row. Beyond the
//! primitive (in `pdc-threads` and `pdc-pram`), the course teaches that
//! scan *composes into algorithms*; these are the two classics.

use pdc_threads::sliceops::{par_exclusive_scan, par_inclusive_scan, par_map};

/// Line-of-sight: given terrain `altitudes` seen from position 0,
/// return for each point whether it is visible from the origin
/// (no earlier point subtends a larger angle).
///
/// Parallel structure: angle = map; running max = inclusive max-scan;
/// `visible[i] = angle[i] >= max of angles before i`.
pub fn line_of_sight(altitudes: &[f64], workers: usize) -> Vec<bool> {
    let n = altitudes.len();
    if n == 0 {
        return Vec::new();
    }
    let origin = altitudes[0];
    // Angle proxy: slope (alt - origin) / distance; index 0 sees itself.
    let slopes: Vec<f64> = altitudes
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            if i == 0 {
                f64::NEG_INFINITY
            } else {
                (a - origin) / i as f64
            }
        })
        .collect();
    // Exclusive max-scan gives the max slope strictly before each point.
    let (prefix_max, _) = par_exclusive_scan(&slopes, workers, f64::NEG_INFINITY, |a, b| a.max(*b));
    slopes
        .iter()
        .zip(&prefix_max)
        .enumerate()
        .map(|(i, (&s, &m))| i == 0 || s > m)
        .collect()
}

/// Stable LSD radix sort of `u64`s using scan-based split (partition by
/// bit) — each of the 64 passes is two scans and a scatter, the
/// textbook "split" primitive.
pub fn radix_sort_u64(data: &[u64], workers: usize) -> Vec<u64> {
    let mut cur = data.to_vec();
    if cur.len() <= 1 {
        return cur;
    }
    let bits_needed = 64 - data.iter().copied().max().unwrap_or(0).leading_zeros();
    for bit in 0..bits_needed {
        cur = split_by_bit(&cur, bit, workers);
    }
    cur
}

/// One split pass: stable partition by bit `bit` (zeros first), built
/// from flags + exclusive scan + scatter.
fn split_by_bit(data: &[u64], bit: u32, workers: usize) -> Vec<u64> {
    let n = data.len();
    let zero_flags: Vec<u64> = par_map(data, workers, |&x| u64::from(x >> bit & 1 == 0));
    let (zero_pos, zero_total) = par_exclusive_scan(&zero_flags, workers, 0u64, |a, b| a + b);
    // Position of each element: zeros go to zero_pos[i]; ones go to
    // zero_total + (i - zero_pos[i] adjusted) = ones before i + base.
    let mut out = vec![0u64; n];
    for i in 0..n {
        let idx = if zero_flags[i] == 1 {
            zero_pos[i] as usize
        } else {
            // ones before i = i - zeros before i.
            zero_total as usize + (i - zero_pos[i] as usize)
        };
        out[idx] = data[i];
    }
    out
}

/// Maximum-subarray sum via two scans (Kadane's parallel cousin):
/// `best = max over i of (prefix[i] - min prefix before i)`.
pub fn max_subarray_sum(data: &[i64], workers: usize) -> i64 {
    assert!(!data.is_empty(), "max subarray of empty input");
    let prefix = par_inclusive_scan(data, workers, 0i64, |a, b| a + b);
    // min of prefix[0..i] with a leading 0 (empty prefix).
    let (min_before, _) = par_exclusive_scan(&prefix, workers, 0i64, |a, b| *a.min(b));
    prefix
        .iter()
        .zip(&min_before)
        .map(|(&p, &m)| p - m)
        .max()
        .expect("non-empty")
        .max(0) // the empty subarray is allowed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::rng::Rng;

    #[test]
    fn line_of_sight_flat_terrain_all_visible() {
        let v = line_of_sight(&[0.0; 10], 2);
        // Flat ground at eye level: only the first point subtends the
        // maximal slope; equal slopes are occluded (strictly-greater
        // rule), except point 1 which has nothing before it.
        assert!(v[0] && v[1]);
        assert!(!v[2..].iter().any(|&x| x));
    }

    #[test]
    fn line_of_sight_monotone_rise_all_visible() {
        let alt: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let v = line_of_sight(&alt, 3);
        assert!(v.iter().all(|&x| x), "{v:?}");
    }

    #[test]
    fn line_of_sight_peak_blocks_valley() {
        // Big hill at index 2 hides the valley behind it; far mountain
        // at index 5 pokes above.
        let alt = vec![0.0, 1.0, 50.0, 2.0, 3.0, 200.0];
        let v = line_of_sight(&alt, 2);
        assert_eq!(v, vec![true, true, true, false, false, true]);
    }

    #[test]
    fn line_of_sight_matches_serial_reference() {
        let mut rng = Rng::new(12);
        let alt: Vec<f64> = (0..500).map(|_| rng.f64() * 100.0).collect();
        let got = line_of_sight(&alt, 4);
        // Serial reference.
        let mut best = f64::NEG_INFINITY;
        let mut want = Vec::with_capacity(alt.len());
        for (i, &a) in alt.iter().enumerate() {
            if i == 0 {
                want.push(true);
                continue;
            }
            let s = (a - alt[0]) / i as f64;
            want.push(s > best);
            best = best.max(s);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn radix_sort_matches_std() {
        let mut rng = Rng::new(55);
        for n in [0usize, 1, 2, 100, 5000] {
            let data: Vec<u64> = (0..n).map(|_| rng.gen_range(1 << 40)).collect();
            let mut want = data.clone();
            want.sort_unstable();
            assert_eq!(radix_sort_u64(&data, 3), want, "n={n}");
        }
    }

    #[test]
    fn radix_sort_small_keys_fast_path() {
        // bits_needed limits passes: keys < 16 need only 4 passes.
        let data = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(radix_sort_u64(&data, 2), vec![1, 1, 2, 3, 4, 5, 6, 9]);
    }

    #[test]
    fn split_is_stable() {
        // Equal bits preserve relative order: tag values in low bits.
        let data = vec![0b1000, 0b0001, 0b1010, 0b0011]; // bit 3: 1,0,1,0
        let out = split_by_bit(&data, 3, 2);
        assert_eq!(out, vec![0b0001, 0b0011, 0b1000, 0b1010]);
    }

    #[test]
    fn max_subarray_known_cases() {
        assert_eq!(max_subarray_sum(&[-2, 1, -3, 4, -1, 2, 1, -5, 4], 2), 6);
        assert_eq!(max_subarray_sum(&[5], 1), 5);
        // All negative: empty prefix allowed -> best single... with the
        // empty-prefix convention the result is the max single element
        // only if positive; otherwise 0 (empty subarray).
        assert_eq!(max_subarray_sum(&[-3, -1, -2], 2), 0);
        assert_eq!(max_subarray_sum(&[1, 2, 3], 2), 6);
    }

    #[test]
    fn max_subarray_matches_kadane() {
        let mut rng = Rng::new(88);
        let data: Vec<i64> = (0..2000).map(|_| rng.gen_range(41) as i64 - 20).collect();
        // Kadane allowing empty subarray.
        let mut best = 0i64;
        let mut cur = 0i64;
        for &x in &data {
            cur = (cur + x).max(0);
            best = best.max(cur);
        }
        assert_eq!(max_subarray_sum(&data, 4), best);
    }
}
