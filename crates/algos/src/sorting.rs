//! Quicksort and sample sort.
//!
//! Quicksort is the divide-and-conquer partner to merge sort in CS41;
//! sample sort is the bucket algorithm that underlies practical
//! distributed sorts (and the "parallel join" discussion planned for the
//! Databases course).

use pdc_core::rng::Rng;
use pdc_threads::join::{depth_for, join_depth};
use pdc_threads::sliceops::par_map;

/// In-place sequential quicksort with deterministic seeded pivot choice
/// (median-of-three of random probes).
pub fn quicksort<T: Ord>(data: &mut [T]) {
    let mut rng = Rng::new(0x5EED);
    qsort(data, &mut rng);
}

fn qsort<T: Ord>(data: &mut [T], rng: &mut Rng) {
    if data.len() <= 16 {
        insertion_sort(data);
        return;
    }
    let p = partition(data, rng);
    let (lo, hi) = data.split_at_mut(p);
    qsort(lo, rng);
    qsort(&mut hi[1..], rng);
}

fn insertion_sort<T: Ord>(data: &mut [T]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j] < data[j - 1] {
            data.swap(j, j - 1);
            j -= 1;
        }
    }
}

/// Hoare-style partition around a randomly probed pivot; returns the
/// pivot's final index.
fn partition<T: Ord>(data: &mut [T], rng: &mut Rng) -> usize {
    let n = data.len();
    // Median of three random probes resists adversarial inputs.
    let (a, b, c) = (rng.usize_in(0, n), rng.usize_in(0, n), rng.usize_in(0, n));
    let pivot_idx = median3(data, a, b, c);
    data.swap(pivot_idx, n - 1);
    let mut store = 0;
    for i in 0..n - 1 {
        if data[i] < data[n - 1] {
            data.swap(i, store);
            store += 1;
        }
    }
    data.swap(store, n - 1);
    store
}

fn median3<T: Ord>(data: &[T], a: usize, b: usize, c: usize) -> usize {
    let mut idx = [a, b, c];
    idx.sort_by(|&x, &y| data[x].cmp(&data[y]));
    idx[1]
}

/// Parallel quicksort: partitions sequentially, recurses on the two
/// sides in parallel down to `depth_for(workers, ...)` fork levels.
pub fn parallel_quicksort<T: Ord + Send>(data: &mut [T], workers: usize) {
    let depth = depth_for(workers, data.len(), 4096);
    pqsort(data, depth, 0x5EED);
}

fn pqsort<T: Ord + Send>(data: &mut [T], depth: u32, seed: u64) {
    if data.len() <= 16 {
        insertion_sort(data);
        return;
    }
    if depth == 0 {
        let mut rng = Rng::new(seed);
        qsort(data, &mut rng);
        return;
    }
    let mut rng = Rng::new(seed);
    let p = partition(data, &mut rng);
    let (lo, hi) = data.split_at_mut(p);
    let hi = &mut hi[1..];
    join_depth(
        depth,
        || pqsort(lo, depth - 1, seed.wrapping_mul(0x9E3779B97F4A7C15) + 1),
        || pqsort(hi, depth - 1, seed.wrapping_mul(0x9E3779B97F4A7C15) + 2),
    );
}

/// Statistics from a sample-sort run (bucket balance is the point).
#[derive(Debug, Clone)]
pub struct SampleSortStats {
    /// Final bucket sizes.
    pub bucket_sizes: Vec<usize>,
}

impl SampleSortStats {
    /// Largest bucket over ideal size (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.bucket_sizes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.bucket_sizes.len() as f64;
        *self.bucket_sizes.iter().max().unwrap() as f64 / ideal
    }
}

/// Sample sort with `buckets` buckets and an oversampling factor:
/// sample `buckets * oversample` elements, sort the sample, pick evenly
/// spaced splitters, partition all elements by binary search (in
/// parallel), sort each bucket (in parallel), concatenate.
pub fn sample_sort<T: Ord + Clone + Send + Sync>(
    data: &[T],
    buckets: usize,
    workers: usize,
    seed: u64,
) -> (Vec<T>, SampleSortStats) {
    assert!(buckets >= 1);
    if data.len() <= 1 || buckets == 1 {
        let mut out = data.to_vec();
        out.sort();
        let n = out.len();
        return (
            out,
            SampleSortStats {
                bucket_sizes: vec![n],
            },
        );
    }
    let mut rng = Rng::new(seed);
    let oversample = 8;
    let mut sample: Vec<T> = (0..buckets * oversample)
        .map(|_| data[rng.usize_in(0, data.len())].clone())
        .collect();
    sample.sort();
    let splitters: Vec<T> = (1..buckets)
        .map(|i| sample[i * oversample].clone())
        .collect();
    // Classify in parallel.
    let labels: Vec<usize> = par_map(data, workers, |x| splitters.partition_point(|s| s <= x));
    let mut bucket_vecs: Vec<Vec<T>> = (0..buckets).map(|_| Vec::new()).collect();
    for (x, &b) in data.iter().zip(&labels) {
        bucket_vecs[b].push(x.clone());
    }
    let bucket_sizes: Vec<usize> = bucket_vecs.iter().map(Vec::len).collect();
    // Sort buckets in parallel.
    let sorted: Vec<Vec<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = bucket_vecs
            .into_iter()
            .map(|mut b| {
                s.spawn(move || {
                    b.sort();
                    b
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = Vec::with_capacity(data.len());
    for b in sorted {
        out.extend(b);
    }
    (out, SampleSortStats { bucket_sizes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workloads() -> Vec<Vec<i64>> {
        let mut rng = Rng::new(404);
        vec![
            vec![],
            vec![1],
            vec![3, 1, 2],
            (0..500).rev().collect(),
            vec![42; 100],
            rng.i64_vec(5000),
            (0..2000).map(|i| (i * 31) % 97).collect(),
        ]
    }

    #[test]
    fn quicksort_correct() {
        for mut w in workloads() {
            let mut want = w.clone();
            want.sort();
            quicksort(&mut w);
            assert_eq!(w, want);
        }
    }

    #[test]
    fn parallel_quicksort_correct() {
        for mut w in workloads() {
            let mut want = w.clone();
            want.sort();
            parallel_quicksort(&mut w, 4);
            assert_eq!(w, want);
        }
    }

    #[test]
    fn quicksort_handles_sorted_input_without_blowup() {
        // Already-sorted input: randomized median-of-3 keeps recursion
        // shallow enough to not overflow the stack at 100k.
        let mut v: Vec<i64> = (0..100_000).collect();
        quicksort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sample_sort_correct_and_balanced() {
        let mut rng = Rng::new(31337);
        let data = rng.i64_vec(20_000);
        let mut want = data.clone();
        want.sort();
        let (got, stats) = sample_sort(&data, 8, 4, 1);
        assert_eq!(got, want);
        assert_eq!(stats.bucket_sizes.len(), 8);
        assert_eq!(stats.bucket_sizes.iter().sum::<usize>(), 20_000);
        assert!(
            stats.imbalance() < 2.0,
            "oversampling should balance: {}",
            stats.imbalance()
        );
    }

    #[test]
    fn sample_sort_edge_cases() {
        let (got, _) = sample_sort(&Vec::<i64>::new(), 4, 2, 0);
        assert!(got.is_empty());
        let (got, _) = sample_sort(&[5i64], 4, 2, 0);
        assert_eq!(got, vec![5]);
        let (got, stats) = sample_sort(&[9i64, 8, 7], 1, 2, 0);
        assert_eq!(got, vec![7, 8, 9]);
        assert_eq!(stats.bucket_sizes, vec![3]);
    }

    #[test]
    fn sample_sort_all_duplicates() {
        let data = vec![3i64; 5000];
        let (got, _) = sample_sort(&data, 8, 4, 7);
        assert_eq!(got, data);
    }

    #[test]
    fn insertion_sort_base_case() {
        let mut v = vec![5, 2, 9, 1];
        insertion_sort(&mut v);
        assert_eq!(v, vec![1, 2, 5, 9]);
    }
}
