//! Dense matrix computation: naive, reordered, blocked, parallel,
//! Strassen.
//!
//! "Matrix Computation" is the third algorithmic problem of Table III;
//! the variants ladder the course's two big lessons — memory layout
//! (ijk vs ikj vs blocked) and work vs span (row-parallel, Strassen).

use pdc_threads::parfor::{parallel_for, Schedule};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of `(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| f64::from(u8::from(i == j)))
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutation.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Max absolute elementwise difference (for float comparisons).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Naive ijk matmul (the column-strided inner loop is cache-hostile).
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for j in 0..b.cols {
            let mut acc = 0.0;
            for k in 0..a.cols {
                acc += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// Loop-reordered ikj matmul: B is walked row-wise (unit stride).
pub fn matmul_ikj(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for k in 0..a.cols {
            let aik = a.get(i, k);
            for j in 0..b.cols {
                c.data[i * c.cols + j] += aik * b.data[k * b.cols + j];
            }
        }
    }
    c
}

/// Blocked (tiled) matmul with `tile × tile` tiles.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, tile: usize) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert!(tile > 0);
    let mut c = Matrix::zeros(a.rows, b.cols);
    let (n, m, p) = (a.rows, a.cols, b.cols);
    for ii in (0..n).step_by(tile) {
        for kk in (0..m).step_by(tile) {
            for jj in (0..p).step_by(tile) {
                for i in ii..(ii + tile).min(n) {
                    for k in kk..(kk + tile).min(m) {
                        let aik = a.get(i, k);
                        for j in jj..(jj + tile).min(p) {
                            c.data[i * p + j] += aik * b.data[k * p + j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Row-parallel matmul: output rows are independent, computed with a
/// dynamic-scheduled `parallel_for`.
pub fn matmul_parallel(a: &Matrix, b: &Matrix, workers: usize) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let (n, m, p) = (a.rows, a.cols, b.cols);
    // Compute rows into a Vec of row buffers to keep everything safe.
    let rows: Vec<std::sync::Mutex<Vec<f64>>> =
        (0..n).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    parallel_for(0..n, workers, Schedule::Dynamic { chunk: 4 }, |i| {
        let mut row = vec![0.0; p];
        for k in 0..m {
            let aik = a.get(i, k);
            for (j, r) in row.iter_mut().enumerate() {
                *r += aik * b.data[k * p + j];
            }
        }
        *rows[i].lock().unwrap() = row;
    });
    let mut c = Matrix::zeros(n, p);
    for (i, row) in rows.into_iter().enumerate() {
        let row = row.into_inner().unwrap();
        c.data[i * p..(i + 1) * p].copy_from_slice(&row);
    }
    c
}

/// Strassen's algorithm (power-of-two square matrices; falls back to ikj
/// below the cutoff). Work Θ(n^2.807).
pub fn matmul_strassen(a: &Matrix, b: &Matrix, cutoff: usize) -> Matrix {
    assert_eq!(a.rows, a.cols, "strassen needs square matrices");
    assert_eq!(b.rows, b.cols, "strassen needs square matrices");
    assert_eq!(a.rows, b.rows, "dimensions must agree");
    assert!(a.rows.is_power_of_two(), "strassen needs power-of-two n");
    strassen_rec(a, b, cutoff.max(2))
}

fn quad(a: &Matrix) -> [Matrix; 4] {
    let h = a.rows / 2;
    let mk = |r0: usize, c0: usize| Matrix::from_fn(h, h, |i, j| a.get(r0 + i, c0 + j));
    [mk(0, 0), mk(0, h), mk(h, 0), mk(h, h)]
}

fn madd(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_fn(a.rows, a.cols, |i, j| a.get(i, j) + b.get(i, j))
}

fn msub(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_fn(a.rows, a.cols, |i, j| a.get(i, j) - b.get(i, j))
}

fn strassen_rec(a: &Matrix, b: &Matrix, cutoff: usize) -> Matrix {
    let n = a.rows;
    if n <= cutoff {
        return matmul_ikj(a, b);
    }
    let [a11, a12, a21, a22] = quad(a);
    let [b11, b12, b21, b22] = quad(b);
    let m1 = strassen_rec(&madd(&a11, &a22), &madd(&b11, &b22), cutoff);
    let m2 = strassen_rec(&madd(&a21, &a22), &b11, cutoff);
    let m3 = strassen_rec(&a11, &msub(&b12, &b22), cutoff);
    let m4 = strassen_rec(&a22, &msub(&b21, &b11), cutoff);
    let m5 = strassen_rec(&madd(&a11, &a12), &b22, cutoff);
    let m6 = strassen_rec(&msub(&a21, &a11), &madd(&b11, &b12), cutoff);
    let m7 = strassen_rec(&msub(&a12, &a22), &madd(&b21, &b22), cutoff);
    let h = n / 2;
    let mut c = Matrix::zeros(n, n);
    for i in 0..h {
        for j in 0..h {
            // C11 = M1 + M4 − M5 + M7
            c.set(
                i,
                j,
                m1.get(i, j) + m4.get(i, j) - m5.get(i, j) + m7.get(i, j),
            );
            // C12 = M3 + M5
            c.set(i, j + h, m3.get(i, j) + m5.get(i, j));
            // C21 = M2 + M4
            c.set(i + h, j, m2.get(i, j) + m4.get(i, j));
            // C22 = M1 − M2 + M3 + M6
            c.set(
                i + h,
                j + h,
                m1.get(i, j) - m2.get(i, j) + m3.get(i, j) + m6.get(i, j),
            );
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::rng::Rng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.f64() * 2.0 - 1.0)
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_matrix(8, 8, 1);
        let i = Matrix::identity(8);
        assert!(matmul_naive(&a, &i).max_abs_diff(&a) < 1e-12);
        assert!(matmul_naive(&i, &a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn known_product() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Matrix::from_fn(2, 2, |i, j| [[1.0, 2.0], [3.0, 4.0]][i][j]);
        let b = Matrix::from_fn(2, 2, |i, j| [[5.0, 6.0], [7.0, 8.0]][i][j]);
        let c = matmul_naive(&a, &b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn all_variants_agree() {
        let a = random_matrix(32, 48, 2);
        let b = random_matrix(48, 24, 3);
        let want = matmul_naive(&a, &b);
        assert!(matmul_ikj(&a, &b).max_abs_diff(&want) < 1e-9);
        for tile in [4, 8, 16, 100] {
            assert!(matmul_blocked(&a, &b, tile).max_abs_diff(&want) < 1e-9);
        }
        for w in [1, 2, 4] {
            assert!(matmul_parallel(&a, &b, w).max_abs_diff(&want) < 1e-9);
        }
    }

    #[test]
    fn strassen_agrees_with_naive() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let a = random_matrix(n, n, 5);
            let b = random_matrix(n, n, 6);
            let want = matmul_naive(&a, &b);
            let got = matmul_strassen(&a, &b, 8);
            assert!(got.max_abs_diff(&want) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn rectangular_dims_validated() {
        let a = random_matrix(3, 4, 1);
        let b = random_matrix(4, 5, 2);
        let c = matmul_naive(&a, &b);
        assert_eq!((c.rows(), c.cols()), (3, 5));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = random_matrix(3, 4, 1);
        let b = random_matrix(5, 6, 2);
        matmul_naive(&a, &b);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn strassen_rejects_non_power_of_two() {
        let a = random_matrix(6, 6, 1);
        matmul_strassen(&a, &a, 2);
    }
}
