//! Closed-form I/O bounds for the external-memory model.
//!
//! These are the formulas CS41 derives: scanning costs `⌈N/B⌉`, external
//! merge sort costs `(2N/B)` per pass over `1 + ⌈log_{M/B−1}(N/M)⌉`
//! passes, and the comparison against the RAM model shows why blocking
//! matters.

/// I/Os to scan `n` records with block size `b`.
pub fn scan_ios(n: u64, b: u64) -> u64 {
    assert!(b > 0);
    n.div_ceil(b)
}

/// Number of merge passes for external merge sort: `⌈log_k(runs)⌉` where
/// `k = m/b − 1` is the merge fan-in and `runs = ⌈n/m⌉`.
pub fn merge_passes(n: u64, m: u64, b: u64) -> u64 {
    assert!(b > 0 && m >= 2 * b, "need at least two blocks of memory");
    let k = (m / b - 1).max(2);
    let runs = n.div_ceil(m).max(1);
    // ceil(log_k(runs))
    let mut passes = 0;
    let mut cover = 1u64;
    while cover < runs {
        cover = cover.saturating_mul(k);
        passes += 1;
    }
    passes
}

/// Total I/Os for external merge sort of `n` records: run formation reads
/// and writes everything once (`2⌈n/b⌉`), then each merge pass reads and
/// writes everything once more.
pub fn sort_ios(n: u64, m: u64, b: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let per_pass = 2 * scan_ios(n, b);
    per_pass * (1 + merge_passes(n, m, b))
}

/// I/Os for the naive (RAM-model-style) approach of touching one record
/// per I/O — the baseline that motivates blocking.
pub fn unblocked_ios(n: u64) -> u64 {
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_rounds_up() {
        assert_eq!(scan_ios(100, 10), 10);
        assert_eq!(scan_ios(101, 10), 11);
        assert_eq!(scan_ios(0, 10), 0);
    }

    #[test]
    fn one_pass_when_runs_fit_fanin() {
        // n/m = 8 runs, fan-in = m/b - 1 = 15 >= 8: one merge pass.
        assert_eq!(merge_passes(8 * 1024, 1024, 64), 1);
    }

    #[test]
    fn passes_grow_logarithmically() {
        let m = 100;
        let b = 10; // fan-in 9
        assert_eq!(merge_passes(100, m, b), 0); // single run
        assert_eq!(merge_passes(900, m, b), 1); // 9 runs
        assert_eq!(merge_passes(8_100, m, b), 2); // 81 runs
        assert_eq!(merge_passes(8_101, m, b), 3); // 82 runs
    }

    #[test]
    fn sort_ios_formula() {
        // 1000 records, M=100, B=10: 10 runs, fan-in 9 -> 2 passes.
        // (2*100) * (1 + 2) = 600.
        assert_eq!(sort_ios(1000, 100, 10), 600);
        assert_eq!(sort_ios(0, 100, 10), 0);
    }

    #[test]
    fn blocked_beats_unblocked() {
        let (n, m, b) = (1_000_000u64, 10_000, 100);
        assert!(sort_ios(n, m, b) < unblocked_ios(n));
    }
}
