//! External merge sort: the unifying example of the CS41 models unit.
//!
//! The paper singles out merge sort "as a primary example, revisiting the
//! analysis of its complexity in the RAM and out-of-core contexts". This
//! module is the out-of-core version: run formation sorts memory-sized
//! chunks, then `k = M/B − 1` runs merge per pass until one remains. The
//! I/O count is measured by the [`crate::device::Disk`] and matches
//! [`crate::theory::sort_ios`] exactly for block-aligned inputs.

use crate::device::{Disk, FileId};
use pdc_core::trace::record_steps;
use pdc_core::workspan::closed_form::ceil_log2;
use pdc_threads::pool::{pool_map, WorkStealingPool};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Comparison cost of an in-memory sort of `len` records, attributed
/// to whichever strand runs it (caller or pool worker) so the span
/// pass sees the CPU-bound phase: `n · ⌈log₂ n⌉`, floor one step.
fn chunk_sort_steps(len: usize) -> u64 {
    (len as u64 * ceil_log2(len as u64)).max(1)
}

/// Configuration: internal memory `m` records, fan-in derived as
/// `m / B − 1` (one block reserved for output buffering).
#[derive(Debug, Clone, Copy)]
pub struct SortConfig {
    /// Internal memory capacity in records.
    pub memory: usize,
}

/// Phase 1a: one sequential scan of the input, collecting the raw
/// (unsorted) memory-sized chunks.
fn read_chunks<T: Ord + Clone>(disk: &mut Disk<T>, input: FileId, m: usize) -> Vec<Vec<T>> {
    let mut chunks = Vec::new();
    let mut reader = disk.reader(input);
    loop {
        let chunk = reader.read_chunk(m);
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Phase 1b: write each sorted chunk out as a run file.
fn write_runs<T: Ord + Clone>(disk: &mut Disk<T>, sorted: Vec<Vec<T>>) -> Vec<FileId> {
    let mut runs = Vec::with_capacity(sorted.len());
    for buf in sorted {
        let f = disk.create_empty();
        let mut w = disk.writer();
        for v in buf {
            w.push(v);
        }
        w.finish(disk, f);
        runs.push(f);
    }
    runs
}

/// Phase 2: k-way merge passes until one run remains.
fn merge_runs<T: Ord + Clone>(disk: &mut Disk<T>, mut runs: Vec<FileId>, fan_in: usize) -> FileId {
    while runs.len() > 1 {
        let mut next_runs = Vec::new();
        for group in runs.chunks(fan_in) {
            let out = disk.create_empty();
            let mut w = disk.writer();
            {
                // k open readers + a tournament heap keyed by value.
                let mut readers: Vec<_> = group.iter().map(|&f| disk.reader(f)).collect();
                let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::new();
                for (i, r) in readers.iter_mut().enumerate() {
                    if let Some(v) = r.next() {
                        heap.push(Reverse((v, i)));
                    }
                }
                let mut merged = 0u64;
                while let Some(Reverse((v, i))) = heap.pop() {
                    w.push(v);
                    merged += 1;
                    if let Some(nv) = readers[i].next() {
                        heap.push(Reverse((nv, i)));
                    }
                }
                // Heap work: one ⌈log₂ k⌉-cost sift per merged record,
                // on the calling thread (the merge phase is serial).
                record_steps((merged * ceil_log2(group.len() as u64)).max(1));
            }
            w.finish(disk, out);
            next_runs.push(out);
        }
        runs = next_runs;
    }
    runs[0]
}

/// The shared skeleton: run formation (read chunks → `sort_chunks` →
/// write runs) followed by k-way merging. The I/O pattern — and
/// therefore the measured I/O count — is fixed here; the only latitude
/// a caller has is *how* the in-memory chunk sorts execute.
fn sort_with<T: Ord + Clone>(
    disk: &mut Disk<T>,
    input: FileId,
    config: SortConfig,
    sort_chunks: impl FnOnce(Vec<Vec<T>>) -> Vec<Vec<T>>,
) -> FileId {
    let b = disk.block_size();
    let m = config.memory;
    assert!(m >= 2 * b, "need at least two blocks of memory");
    let fan_in = (m / b - 1).max(2);
    let chunks = read_chunks(disk, input, m);
    let runs = write_runs(disk, sort_chunks(chunks));
    if runs.is_empty() {
        return disk.create_empty();
    }
    merge_runs(disk, runs, fan_in)
}

/// Sort file `input` on `disk`, returning the id of the sorted output
/// file. Only `config.memory` records are resident at any time during
/// run formation, and `fan_in + 1` blocks during merging.
///
/// # Panics
/// Panics if memory is smaller than two blocks (cannot merge).
pub fn external_merge_sort<T: Ord + Clone>(
    disk: &mut Disk<T>,
    input: FileId,
    config: SortConfig,
) -> FileId {
    sort_with(disk, input, config, |mut chunks| {
        for chunk in &mut chunks {
            chunk.sort(); // in-memory sort of <= M records
            record_steps(chunk_sort_steps(chunk.len()));
        }
        chunks
    })
}

/// [`external_merge_sort`] with the in-memory chunk sorts fanned out
/// over a work-stealing pool. The I/O schedule is untouched — the
/// [`Disk`] is single-threaded by construction (`Rc` stats), so every
/// read and write stays on the calling thread and the measured I/O
/// count is *identical* to the sequential sort; only the CPU-bound
/// phase parallelizes. That split — overlap-free I/O, parallel compute
/// — is itself the lesson, and the scenario gate asserts the I/O
/// equality.
///
/// Note: in-memory chunk residency temporarily exceeds `config.memory`
/// records while multiple chunks sort concurrently; the model's memory
/// bound applies per worker.
///
/// # Panics
/// Panics if memory is smaller than two blocks (cannot merge).
pub fn external_merge_sort_pooled<T: Ord + Clone + Send + 'static>(
    disk: &mut Disk<T>,
    input: FileId,
    config: SortConfig,
    pool: &WorkStealingPool,
) -> FileId {
    sort_with(disk, input, config, |chunks| {
        pool_map(pool, chunks, |mut chunk| {
            chunk.sort();
            record_steps(chunk_sort_steps(chunk.len()));
            chunk
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory;
    use pdc_core::rng::Rng;

    fn check_sorted(disk: &Disk<u64>, f: FileId, expected_len: usize) {
        let data = disk.contents(f);
        assert_eq!(data.len(), expected_len);
        assert!(data.windows(2).all(|w| w[0] <= w[1]), "not sorted");
    }

    #[test]
    fn sorts_random_input() {
        let mut rng = Rng::new(42);
        let data = rng.u64_vec(10_000);
        let mut want = data.clone();
        want.sort_unstable();
        let mut disk = Disk::new(16);
        let input = disk.create_file(data);
        let out = external_merge_sort(&mut disk, input, SortConfig { memory: 128 });
        assert_eq!(disk.contents(out), &want[..]);
    }

    #[test]
    fn sorts_already_sorted_and_reverse() {
        for gen in [false, true] {
            let data: Vec<u64> = if gen {
                (0..5000).collect()
            } else {
                (0..5000).rev().collect()
            };
            let mut disk = Disk::new(8);
            let input = disk.create_file(data);
            let out = external_merge_sort(&mut disk, input, SortConfig { memory: 64 });
            check_sorted(&disk, out, 5000);
        }
    }

    #[test]
    fn handles_duplicates() {
        let data = vec![5u64; 1000];
        let mut disk = Disk::new(4);
        let input = disk.create_file(data.clone());
        let out = external_merge_sort(&mut disk, input, SortConfig { memory: 16 });
        assert_eq!(disk.contents(out), &data[..]);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut disk: Disk<u64> = Disk::new(4);
        let input = disk.create_file(vec![]);
        let out = external_merge_sort(&mut disk, input, SortConfig { memory: 8 });
        assert!(disk.is_empty(out));

        let input = disk.create_file(vec![3]);
        let out = external_merge_sort(&mut disk, input, SortConfig { memory: 8 });
        assert_eq!(disk.contents(out), &[3]);
    }

    #[test]
    fn io_count_matches_theory_block_aligned() {
        // n = 1000, M = 100, B = 10: theory says 600 I/Os.
        let mut rng = Rng::new(7);
        let n = 1000usize;
        let (m, b) = (100usize, 10usize);
        let mut disk = Disk::new(b);
        let input = disk.create_file(rng.u64_vec(n));
        let out = external_merge_sort(&mut disk, input, SortConfig { memory: m });
        check_sorted(&disk, out, n);
        assert_eq!(
            disk.stats().total(),
            theory::sort_ios(n as u64, m as u64, b as u64),
            "measured I/Os must equal the closed form"
        );
    }

    #[test]
    fn single_run_needs_no_merge_pass() {
        // Input fits in memory: run formation only (read n/B + write n/B).
        let mut disk = Disk::new(10);
        let input = disk.create_file((0..100u64).rev().collect());
        let out = external_merge_sort(&mut disk, input, SortConfig { memory: 200 });
        check_sorted(&disk, out, 100);
        assert_eq!(disk.stats().total(), 20);
    }

    #[test]
    fn more_memory_fewer_ios() {
        let mut rng = Rng::new(99);
        let data = rng.u64_vec(20_000);
        let measure = |memory: usize| {
            let mut disk = Disk::new(10);
            let input = disk.create_file(data.clone());
            let out = external_merge_sort(&mut disk, input, SortConfig { memory });
            check_sorted(&disk, out, data.len());
            disk.stats().total()
        };
        let small = measure(40); // fan-in 3
        let medium = measure(200); // fan-in 19
        let large = measure(2_000); // fan-in 199
        assert!(small > medium, "{small} vs {medium}");
        assert!(medium > large, "{medium} vs {large}");
    }

    #[test]
    #[should_panic(expected = "two blocks")]
    fn too_little_memory_rejected() {
        let mut disk: Disk<u64> = Disk::new(10);
        let input = disk.create_file(vec![1]);
        external_merge_sort(&mut disk, input, SortConfig { memory: 15 });
    }

    #[test]
    fn pooled_sort_matches_sequential_with_identical_ios() {
        let mut rng = Rng::new(123);
        let data = rng.u64_vec(12_000);
        let config = SortConfig { memory: 150 };

        let mut seq_disk = Disk::new(10);
        let seq_in = seq_disk.create_file(data.clone());
        let seq_out = external_merge_sort(&mut seq_disk, seq_in, config);

        let pool = WorkStealingPool::new(4);
        let mut pool_disk = Disk::new(10);
        let pool_in = pool_disk.create_file(data);
        let pool_out = external_merge_sort_pooled(&mut pool_disk, pool_in, config, &pool);

        assert_eq!(pool_disk.contents(pool_out), seq_disk.contents(seq_out));
        assert_eq!(
            pool_disk.stats().total(),
            seq_disk.stats().total(),
            "parallel chunk sorting must not change the I/O schedule"
        );
        assert!(pool.executed() > 0, "chunk sorts ran on the pool");
    }

    #[test]
    fn pooled_sort_empty_input() {
        let pool = WorkStealingPool::new(2);
        let mut disk: Disk<u64> = Disk::new(4);
        let input = disk.create_file(vec![]);
        let out = external_merge_sort_pooled(&mut disk, input, SortConfig { memory: 8 }, &pool);
        assert!(disk.is_empty(out));
    }

    #[test]
    fn traced_sort_attributes_sort_and_merge_steps() {
        use pdc_core::trace::{self, EventKind, TraceSession, MARK_STEPS};
        let session = TraceSession::with_capacity(1 << 12);
        let prev = trace::install_sync_trace(session.thread(700));
        let mut rng = Rng::new(17);
        let n = 1000usize;
        let mut disk = Disk::new(10);
        let input = disk.create_file(rng.u64_vec(n));
        let out = external_merge_sort(&mut disk, input, SortConfig { memory: 100 });
        match prev {
            Some(p) => {
                trace::install_sync_trace(p);
            }
            None => {
                trace::clear_sync_trace();
            }
        }
        check_sorted(&disk, out, n);
        let marks: Vec<_> = session
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::Mark && e.a == MARK_STEPS)
            .collect();
        // 10 memory-sized chunks of 100 records + at least one merge
        // group mark.
        assert!(marks.len() > 10, "{} marks", marks.len());
        let total: u64 = marks.iter().map(|e| e.b).sum();
        // Run formation alone is 10 x 100·log2(100) = 7000 steps; the
        // merge passes add more on top.
        assert!(total > 7000, "attributed {total} steps");
    }

    #[test]
    fn stability_not_required_but_order_of_equal_keys_total() {
        // With (key, payload) pairs ordered by the full tuple, output is
        // the total order — exercises Ord on tuples through the merge.
        let mut disk = Disk::new(4);
        let data: Vec<(u64, u64)> = (0..500).map(|i| ((i * 7) % 13, i)).collect();
        let mut want = data.clone();
        want.sort();
        let input = disk.create_file(data);
        let out = external_merge_sort(&mut disk, input, SortConfig { memory: 32 });
        assert_eq!(disk.contents(out), &want[..]);
    }
}
