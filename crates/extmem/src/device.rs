//! The simulated disk: files of records with block-granular I/O counting.
//!
//! A [`Disk`] stores files as record vectors. All access goes through
//! [`BlockReader`]/[`BlockWriter`], which move whole blocks of `B`
//! records and charge one I/O per block transferred — the accounting
//! discipline of the I/O model. Algorithms never touch file contents
//! directly (the type system hides them), so every data movement is
//! counted.

use pdc_core::metrics::Counter;
use pdc_core::trace::TraceSession;
use std::cell::Cell;
use std::rc::Rc;

/// Identifier of a file on a [`Disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(usize);

/// Registry mirrors for the disk's `Rc<Cell>` counters: the
/// single-threaded I/O model keeps its cheap interior-mutable counts,
/// and every increment is echoed into the shared lock-free registry.
#[derive(Debug, Clone)]
struct IoObs {
    reads: Counter,
    writes: Counter,
}

/// Shared I/O counters.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    reads: Rc<Cell<u64>>,
    writes: Rc<Cell<u64>>,
    obs: Option<IoObs>,
}

impl IoStats {
    /// Block reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Block writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Total block I/Os.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    fn add_read(&self) {
        self.reads.set(self.reads.get() + 1);
        if let Some(o) = &self.obs {
            o.reads.inc();
        }
    }

    fn add_write(&self) {
        self.writes.set(self.writes.get() + 1);
        if let Some(o) = &self.obs {
            o.writes.inc();
        }
    }
}

/// A simulated disk holding files of records of type `T`.
#[derive(Debug)]
pub struct Disk<T> {
    files: Vec<Vec<T>>,
    block: usize,
    stats: IoStats,
}

impl<T: Clone> Disk<T> {
    /// Create a disk with block size `block` records.
    ///
    /// # Panics
    /// Panics if `block == 0`.
    pub fn new(block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        Disk {
            files: Vec::new(),
            block,
            stats: IoStats::default(),
        }
    }

    /// The block size `B` in records.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// The I/O counters (cheaply cloneable handle).
    pub fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    /// Publish this disk's block I/Os into `session` as `io.reads` /
    /// `io.writes`. Attach before opening readers or writers: handles
    /// snapshot the stats at creation time, so earlier ones keep
    /// counting privately. The `Rc<Cell>` counts are unchanged —
    /// every increment is simply echoed into the registry.
    pub fn attach_trace(&mut self, session: &TraceSession) {
        self.stats.obs = Some(IoObs {
            reads: session.counter("io.reads"),
            writes: session.counter("io.writes"),
        });
    }

    /// Create a file pre-populated with `data` (loading is free: models
    /// data that already resides on disk).
    pub fn create_file(&mut self, data: Vec<T>) -> FileId {
        self.files.push(data);
        FileId(self.files.len() - 1)
    }

    /// Create an empty file for writing.
    pub fn create_empty(&mut self) -> FileId {
        self.create_file(Vec::new())
    }

    /// Length of a file in records.
    pub fn len(&self, f: FileId) -> usize {
        self.files[f.0].len()
    }

    /// Whether the file has no records.
    pub fn is_empty(&self, f: FileId) -> bool {
        self.len(f) == 0
    }

    /// Host-side (uncounted) access for test verification only.
    pub fn contents(&self, f: FileId) -> &[T] {
        &self.files[f.0]
    }

    /// Open a sequential block reader.
    pub fn reader(&self, f: FileId) -> BlockReader<'_, T> {
        BlockReader {
            disk: self,
            file: f,
            pos: 0,
            buf: Vec::new(),
            buf_pos: 0,
        }
    }

    /// Sequentially write `data` to file `f` (replacing its contents),
    /// charging `ceil(len/B)` write I/Os. Returns the I/O count charged.
    pub fn write_file(&mut self, f: FileId, data: Vec<T>) -> u64 {
        let blocks = data.len().div_ceil(self.block) as u64;
        for _ in 0..blocks {
            self.stats.add_write();
        }
        self.files[f.0] = data;
        blocks
    }

    /// Open a detached sequential block writer. The writer counts one
    /// write I/O per full block as records are pushed; call
    /// [`BlockWriter::finish`] to install the data as file `f`'s new
    /// contents. Detachment lets several readers stay open on `&Disk`
    /// while a writer produces output (the k-way merge pattern).
    pub fn writer(&self) -> BlockWriter<T> {
        BlockWriter {
            stats: self.stats.clone(),
            block: self.block,
            data: Vec::new(),
            pending: 0,
        }
    }

    /// Replace file `f`'s contents with data produced by a writer.
    pub fn install(&mut self, f: FileId, data: Vec<T>) {
        self.files[f.0] = data;
    }
}

/// Sequential reader charging one I/O per block fetched.
pub struct BlockReader<'a, T> {
    disk: &'a Disk<T>,
    file: FileId,
    pos: usize,
    buf: Vec<T>,
    buf_pos: usize,
}

impl<T: Clone> BlockReader<'_, T> {
    /// Next record, or `None` at end of file.
    ///
    /// Deliberately an inherent method, not `Iterator`: iterating
    /// borrows the disk's I/O stats, and callers should see the
    /// block-fetch cost model, not a transparent iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<T> {
        if self.buf_pos == self.buf.len() {
            // Fetch the next block.
            let data = &self.disk.files[self.file.0];
            if self.pos >= data.len() {
                return None;
            }
            let end = (self.pos + self.disk.block).min(data.len());
            self.buf = data[self.pos..end].to_vec();
            self.buf_pos = 0;
            self.pos = end;
            self.disk.stats.add_read();
        }
        let v = self.buf[self.buf_pos].clone();
        self.buf_pos += 1;
        Some(v)
    }

    /// Read up to `n` records (for run formation: fill memory).
    pub fn read_chunk(&mut self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.next() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }
}

/// Detached sequential writer charging one I/O per block flushed.
pub struct BlockWriter<T> {
    stats: IoStats,
    block: usize,
    data: Vec<T>,
    pending: usize,
}

impl<T> BlockWriter<T> {
    /// Append one record; a write I/O is charged each time a full block
    /// accumulates.
    pub fn push(&mut self, v: T) {
        self.data.push(v);
        self.pending += 1;
        if self.pending == self.block {
            self.stats.add_write();
            self.pending = 0;
        }
    }

    /// Records written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flush the trailing partial block (if any) and install the data as
    /// file `f` on `disk`.
    pub fn finish(mut self, disk: &mut Disk<T>, f: FileId)
    where
        T: Clone,
    {
        if self.pending > 0 {
            self.stats.add_write();
            self.pending = 0;
        }
        disk.install(f, std::mem::take(&mut self.data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_charges_one_io_per_block() {
        let mut d = Disk::new(10);
        let f = d.create_file((0..95).collect());
        let mut r = d.reader(f);
        let mut count = 0;
        while r.next().is_some() {
            count += 1;
        }
        assert_eq!(count, 95);
        // 95 records / 10 per block = 10 blocks (last partial).
        assert_eq!(d.stats().reads(), 10);
        assert_eq!(d.stats().writes(), 0);
    }

    #[test]
    fn writer_charges_one_io_per_block() {
        let mut d = Disk::new(8);
        let f = d.create_empty();
        let mut w = d.writer();
        for i in 0..20 {
            w.push(i);
        }
        w.finish(&mut d, f); // flushes the partial block
        assert_eq!(d.contents(f), &(0..20).collect::<Vec<_>>()[..]);
        assert_eq!(d.stats().writes(), 3); // 8 + 8 + 4
    }

    #[test]
    fn readers_and_writer_coexist() {
        let mut d = Disk::new(2);
        let f1 = d.create_file(vec![1, 2, 3]);
        let f2 = d.create_file(vec![4, 5, 6]);
        let out = d.create_empty();
        let mut w = d.writer();
        {
            let mut r1 = d.reader(f1);
            let mut r2 = d.reader(f2);
            while let (Some(a), Some(b)) = (r1.next(), r2.next()) {
                w.push(a + b);
            }
        }
        w.finish(&mut d, out);
        assert_eq!(d.contents(out), &[5, 7, 9]);
    }

    #[test]
    fn read_chunk_stops_at_eof() {
        let mut d = Disk::new(4);
        let f = d.create_file(vec![1, 2, 3, 4, 5]);
        let mut r = d.reader(f);
        assert_eq!(r.read_chunk(3), vec![1, 2, 3]);
        assert_eq!(r.read_chunk(10), vec![4, 5]);
        assert!(r.read_chunk(1).is_empty());
    }

    #[test]
    fn write_file_bulk_charges_blocks() {
        let mut d = Disk::new(16);
        let f = d.create_empty();
        let charged = d.write_file(f, (0..64).collect());
        assert_eq!(charged, 4);
        assert_eq!(d.stats().writes(), 4);
    }

    #[test]
    fn empty_file_reader_charges_nothing() {
        let mut d: Disk<u8> = Disk::new(4);
        let f = d.create_empty();
        assert!(d.reader(f).next().is_none());
        assert_eq!(d.stats().total(), 0);
        assert!(d.is_empty(f));
    }

    #[test]
    fn traced_disk_mirrors_ios_into_registry() {
        let session = TraceSession::new();
        let mut d = Disk::new(10);
        d.attach_trace(&session);
        let f = d.create_file((0..95).collect());
        let mut r = d.reader(f);
        while r.next().is_some() {}
        let out = d.create_empty();
        let mut w = d.writer();
        for i in 0..25 {
            w.push(i);
        }
        w.finish(&mut d, out);
        let snap = session.snapshot();
        assert_eq!(snap.get("io.reads"), d.stats().reads());
        assert_eq!(snap.get("io.writes"), d.stats().writes());
        assert_eq!(snap.get("io.reads"), 10);
        assert_eq!(snap.get("io.writes"), 3);
    }

    #[test]
    fn stats_shared_across_handles() {
        let mut d = Disk::new(2);
        let stats = d.stats();
        let f = d.create_file(vec![1, 2, 3, 4]);
        let mut r = d.reader(f);
        while r.next().is_some() {}
        assert_eq!(stats.reads(), 2);
    }
}
