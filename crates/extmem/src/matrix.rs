//! Out-of-core matrix traversal and transpose: blocking in action.
//!
//! A row-major `n × n` matrix on disk, accessed through the buffer pool.
//! Traversal order and tiling decide the I/O count:
//!
//! * row-major scan: `n²/B` I/Os;
//! * column-major scan with a small pool: up to `n²` I/Os;
//! * naive transpose: Θ(n²) I/Os (one side streams, the other thrashes);
//! * tiled transpose with `t × t` tiles, two tiles in memory: Θ(n²/B)
//!   I/Os when `t ≥ B`.
//!
//! These are the numbers behind the CS31/CS41 "think about memory"
//! lessons; the benches print the sweep.

use crate::pool::{CachedArray, PoolStats};

/// A row-major square matrix held in a [`CachedArray`].
pub struct OocMatrix {
    data: CachedArray<f64>,
    n: usize,
}

impl OocMatrix {
    /// Create an `n × n` matrix with `a[i][j] = f(i, j)`, block size
    /// `block`, and a pool of `frames` blocks.
    pub fn from_fn(n: usize, block: usize, frames: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut v = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                v.push(f(i, j));
            }
        }
        OocMatrix {
            data: CachedArray::new(v, block, frames),
            n,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pool statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.data.stats()
    }

    /// Read `a[i][j]`.
    pub fn get(&mut self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n);
        self.data.get(i * self.n + j)
    }

    /// Write `a[i][j]`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n);
        self.data.set(i * self.n + j, v);
    }

    /// Sum by row-major traversal (the I/O-friendly order).
    pub fn sum_row_major(&mut self) -> f64 {
        let n = self.n;
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                s += self.get(i, j);
            }
        }
        s
    }

    /// Sum by column-major traversal (the I/O-hostile order for row-major
    /// layout).
    pub fn sum_col_major(&mut self) -> f64 {
        let n = self.n;
        let mut s = 0.0;
        for j in 0..n {
            for i in 0..n {
                s += self.get(i, j);
            }
        }
        s
    }

    /// In-place transpose, naive order: swap `(i,j)` with `(j,i)` walking
    /// the upper triangle row by row.
    pub fn transpose_naive(&mut self) {
        let n = self.n;
        for i in 0..n {
            for j in i + 1..n {
                let a = self.get(i, j);
                let b = self.get(j, i);
                self.set(i, j, b);
                self.set(j, i, a);
            }
        }
    }

    /// In-place transpose with `tile × tile` tiles: swap tile `(bi, bj)`
    /// with tile `(bj, bi)` while both are pool-resident.
    pub fn transpose_tiled(&mut self, tile: usize) {
        assert!(tile > 0);
        let n = self.n;
        let mut bi = 0;
        while bi < n {
            let mut bj = bi;
            while bj < n {
                for i in bi..(bi + tile).min(n) {
                    let j_start = if bi == bj { i + 1 } else { bj };
                    for j in j_start..(bj + tile).min(n) {
                        let a = self.get(i, j);
                        let b = self.get(j, i);
                        self.set(i, j, b);
                        self.set(j, i, a);
                    }
                }
                bj += tile;
            }
            bi += tile;
        }
    }

    /// Flush and return the raw row-major contents.
    pub fn into_inner(self) -> Vec<f64> {
        self.data.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(n: usize, block: usize, frames: usize) -> OocMatrix {
        OocMatrix::from_fn(n, block, frames, |i, j| (i * n + j) as f64)
    }

    #[test]
    fn row_major_scan_is_block_efficient() {
        let n = 64;
        let b = 16;
        let mut m = fresh(n, b, 4);
        let s = m.sum_row_major();
        let want: f64 = (0..(n * n) as u64).map(|x| x as f64).sum();
        assert_eq!(s, want);
        assert_eq!(m.stats().fetches as usize, n * n / b);
    }

    #[test]
    fn col_major_scan_thrashes_small_pool() {
        let n = 64;
        let b = 16;
        let mut m = fresh(n, b, 4); // pool far smaller than a column's blocks
        let s = m.sum_col_major();
        let want: f64 = (0..(n * n) as u64).map(|x| x as f64).sum();
        assert_eq!(s, want);
        // Every access maps to a different block than the last 4: all miss.
        assert_eq!(m.stats().fetches as usize, n * n);
    }

    #[test]
    fn col_major_fine_if_pool_holds_column_working_set() {
        let n = 32;
        let b = 16;
        // Pool of n frames: one per row touched in a column sweep.
        let mut m = fresh(n, b, n);
        m.sum_col_major();
        // Each block fetched once per b columns: n²/b fetches.
        assert_eq!(m.stats().fetches as usize, n * n / b);
    }

    fn check_transposed(data: &[f64], n: usize) {
        for i in 0..n {
            for j in 0..n {
                assert_eq!(data[i * n + j], (j * n + i) as f64, "({i},{j})");
            }
        }
    }

    #[test]
    fn naive_transpose_correct() {
        let n = 24;
        let mut m = fresh(n, 8, 3);
        m.transpose_naive();
        check_transposed(&m.into_inner(), n);
    }

    #[test]
    fn tiled_transpose_correct_various_tiles() {
        for tile in [1usize, 3, 8, 16, 40] {
            let n = 24;
            let mut m = fresh(n, 8, 8);
            m.transpose_tiled(tile);
            check_transposed(&m.into_inner(), n);
        }
    }

    #[test]
    fn tiled_transpose_saves_ios() {
        let n = 128;
        let b = 16;
        let frames = 2 * 16; // enough for two tiles of rows
        let mut naive = fresh(n, b, frames);
        naive.transpose_naive();
        let naive_ios = naive.stats().ios();

        let mut tiled = fresh(n, b, frames);
        tiled.transpose_tiled(b);
        let tiled_ios = tiled.stats().ios();
        assert!(
            tiled_ios * 3 < naive_ios,
            "tiled {tiled_ios} vs naive {naive_ios}"
        );
    }
}
