//! Out-of-core matrix traversal and transpose: blocking in action.
//!
//! A row-major `n × n` matrix on disk, accessed through the buffer pool.
//! Traversal order and tiling decide the I/O count:
//!
//! * row-major scan: `n²/B` I/Os;
//! * column-major scan with a small pool: up to `n²` I/Os;
//! * naive transpose: Θ(n²) I/Os (one side streams, the other thrashes);
//! * tiled transpose with `t × t` tiles, two tiles in memory: Θ(n²/B)
//!   I/Os when `t ≥ B`.
//!
//! These are the numbers behind the CS31/CS41 "think about memory"
//! lessons; the benches print the sweep.

use crate::pool::{CachedArray, PoolStats};
use pdc_core::trace::TraceSession;

/// A row-major square matrix held in a [`CachedArray`].
pub struct OocMatrix {
    data: CachedArray<f64>,
    n: usize,
}

impl OocMatrix {
    /// Create an `n × n` matrix with `a[i][j] = f(i, j)`, block size
    /// `block`, and a pool of `frames` blocks.
    pub fn from_fn(n: usize, block: usize, frames: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut v = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                v.push(f(i, j));
            }
        }
        OocMatrix {
            data: CachedArray::new(v, block, frames),
            n,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pool statistics so far — a straight passthrough of the backing
    /// pool's counters, no re-aggregation. Call [`Self::flush`] first
    /// if dirty resident frames should be charged: only then do the
    /// reported block I/Os equal what the simulated disk saw.
    pub fn stats(&self) -> PoolStats {
        self.data.stats()
    }

    /// Publish the backing pool's counters into `session` as
    /// `io.pool_*` (see [`CachedArray::attach_trace`]).
    pub fn attach_trace(&mut self, session: &TraceSession) {
        self.data.attach_trace(session);
    }

    /// Write back all dirty resident frames so [`Self::stats`]
    /// accounts for every block I/O.
    pub fn flush(&mut self) {
        self.data.flush();
    }

    /// Read `a[i][j]`.
    pub fn get(&mut self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n);
        self.data.get(i * self.n + j)
    }

    /// Write `a[i][j]`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n);
        self.data.set(i * self.n + j, v);
    }

    /// Sum by row-major traversal (the I/O-friendly order).
    pub fn sum_row_major(&mut self) -> f64 {
        let n = self.n;
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                s += self.get(i, j);
            }
        }
        s
    }

    /// Sum by column-major traversal (the I/O-hostile order for row-major
    /// layout).
    pub fn sum_col_major(&mut self) -> f64 {
        let n = self.n;
        let mut s = 0.0;
        for j in 0..n {
            for i in 0..n {
                s += self.get(i, j);
            }
        }
        s
    }

    /// In-place transpose, naive order: swap `(i,j)` with `(j,i)` walking
    /// the upper triangle row by row.
    pub fn transpose_naive(&mut self) {
        let n = self.n;
        for i in 0..n {
            for j in i + 1..n {
                let a = self.get(i, j);
                let b = self.get(j, i);
                self.set(i, j, b);
                self.set(j, i, a);
            }
        }
    }

    /// In-place transpose with `tile × tile` tiles: swap tile `(bi, bj)`
    /// with tile `(bj, bi)` while both are pool-resident.
    pub fn transpose_tiled(&mut self, tile: usize) {
        assert!(tile > 0);
        let n = self.n;
        let mut bi = 0;
        while bi < n {
            let mut bj = bi;
            while bj < n {
                for i in bi..(bi + tile).min(n) {
                    let j_start = if bi == bj { i + 1 } else { bj };
                    for j in j_start..(bj + tile).min(n) {
                        let a = self.get(i, j);
                        let b = self.get(j, i);
                        self.set(i, j, b);
                        self.set(j, i, a);
                    }
                }
                bj += tile;
            }
            bi += tile;
        }
    }

    /// Flush and return the raw row-major contents.
    pub fn into_inner(self) -> Vec<f64> {
        self.data.into_inner()
    }
}

/// Out-of-core matrix multiply `c = a · b` with `tile × tile` tiles:
/// the classic three blocked loops, each operand going through its own
/// buffer pool. `c` is flushed before returning, so the three
/// matrices' [`OocMatrix::stats`] together account for every block
/// I/O of the multiply.
///
/// With pools large enough to hold each operand (`frames ≥ n²/B`)
/// the multiply costs exactly `n²/B` fetches per matrix plus `n²/B`
/// writebacks for `c` — `4n²/B` block I/Os total; the tests pin this.
///
/// The product is accumulated into `c`, so pass a zeroed matrix for a
/// plain multiply.
///
/// # Panics
/// Panics if the dimensions differ or `tile == 0`.
pub fn multiply_into(a: &mut OocMatrix, b: &mut OocMatrix, c: &mut OocMatrix, tile: usize) {
    let n = a.n;
    assert!(b.n == n && c.n == n, "dimension mismatch");
    assert!(tile > 0);
    let mut ii = 0;
    while ii < n {
        let mut kk = 0;
        while kk < n {
            let mut jj = 0;
            while jj < n {
                for i in ii..(ii + tile).min(n) {
                    for k in kk..(kk + tile).min(n) {
                        let aik = a.get(i, k);
                        for j in jj..(jj + tile).min(n) {
                            let v = c.get(i, j) + aik * b.get(k, j);
                            c.set(i, j, v);
                        }
                    }
                }
                jj += tile;
            }
            kk += tile;
        }
        ii += tile;
    }
    c.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(n: usize, block: usize, frames: usize) -> OocMatrix {
        OocMatrix::from_fn(n, block, frames, |i, j| (i * n + j) as f64)
    }

    #[test]
    fn row_major_scan_is_block_efficient() {
        let n = 64;
        let b = 16;
        let mut m = fresh(n, b, 4);
        let s = m.sum_row_major();
        let want: f64 = (0..(n * n) as u64).map(|x| x as f64).sum();
        assert_eq!(s, want);
        assert_eq!(m.stats().fetches as usize, n * n / b);
    }

    #[test]
    fn col_major_scan_thrashes_small_pool() {
        let n = 64;
        let b = 16;
        let mut m = fresh(n, b, 4); // pool far smaller than a column's blocks
        let s = m.sum_col_major();
        let want: f64 = (0..(n * n) as u64).map(|x| x as f64).sum();
        assert_eq!(s, want);
        // Every access maps to a different block than the last 4: all miss.
        assert_eq!(m.stats().fetches as usize, n * n);
    }

    #[test]
    fn col_major_fine_if_pool_holds_column_working_set() {
        let n = 32;
        let b = 16;
        // Pool of n frames: one per row touched in a column sweep.
        let mut m = fresh(n, b, n);
        m.sum_col_major();
        // Each block fetched once per b columns: n²/b fetches.
        assert_eq!(m.stats().fetches as usize, n * n / b);
    }

    fn check_transposed(data: &[f64], n: usize) {
        for i in 0..n {
            for j in 0..n {
                assert_eq!(data[i * n + j], (j * n + i) as f64, "({i},{j})");
            }
        }
    }

    #[test]
    fn naive_transpose_correct() {
        let n = 24;
        let mut m = fresh(n, 8, 3);
        m.transpose_naive();
        check_transposed(&m.into_inner(), n);
    }

    #[test]
    fn tiled_transpose_correct_various_tiles() {
        for tile in [1usize, 3, 8, 16, 40] {
            let n = 24;
            let mut m = fresh(n, 8, 8);
            m.transpose_tiled(tile);
            check_transposed(&m.into_inner(), n);
        }
    }

    #[test]
    fn multiply_correct_and_pins_io_count() {
        let n = 16;
        let b = 8;
        let frames = n * n / b; // everything fits: each block fetched once
        let mut ma = fresh(n, b, frames);
        let mut mb = OocMatrix::from_fn(n, b, frames, |i, j| if i == j { 2.0 } else { 0.0 });
        let mut mc = OocMatrix::from_fn(n, b, frames, |_, _| 0.0);
        multiply_into(&mut ma, &mut mb, &mut mc, 4);
        // Pinned I/O count: n²/B fetches per matrix, plus n²/B
        // writebacks flushing c — 4n²/B = 128 block I/Os total. Before
        // the flush fix, c's writebacks vanished inside into_inner and
        // the reported total undercounted the disk by n²/B.
        let blocks = (n * n / b) as u64;
        assert_eq!(ma.stats().ios(), blocks);
        assert_eq!(mb.stats().ios(), blocks);
        assert_eq!(mc.stats().ios(), 2 * blocks);
        let total = (ma.stats() + mb.stats() + mc.stats()).ios();
        assert_eq!(total, 4 * blocks);
        assert_eq!(total, 128);
        // a · 2I = 2a.
        let got = mc.into_inner();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(got[i * n + j], 2.0 * (i * n + j) as f64, "({i},{j})");
            }
        }
    }

    #[test]
    fn traced_multiply_reported_ios_equal_disk_ios() {
        let session = TraceSession::new();
        let n = 12;
        let b = 6;
        let mut ma = fresh(n, b, 4);
        let mut mb = fresh(n, b, 4);
        let mut mc = OocMatrix::from_fn(n, b, 4, |_, _| 0.0);
        ma.attach_trace(&session);
        mb.attach_trace(&session);
        mc.attach_trace(&session);
        multiply_into(&mut ma, &mut mb, &mut mc, 6);
        mc.flush();
        let sum = ma.stats() + mb.stats() + mc.stats();
        let snap = session.snapshot();
        // The registry view and the pools' own view agree exactly:
        // what the op reports is what the simulated disk performed.
        assert_eq!(snap.get("io.pool_fetches"), sum.fetches);
        assert_eq!(snap.get("io.pool_writebacks"), sum.writebacks);
        assert_eq!(
            snap.get("io.pool_fetches") + snap.get("io.pool_writebacks"),
            sum.ios()
        );
        assert!(sum.writebacks > 0);
    }

    #[test]
    fn tiled_transpose_saves_ios() {
        let n = 128;
        let b = 16;
        let frames = 2 * 16; // enough for two tiles of rows
        let mut naive = fresh(n, b, frames);
        naive.transpose_naive();
        let naive_ios = naive.stats().ios();

        let mut tiled = fresh(n, b, frames);
        tiled.transpose_tiled(b);
        let tiled_ios = tiled.stats().ios();
        assert!(
            tiled_ios * 3 < naive_ios,
            "tiled {tiled_ios} vs naive {naive_ios}"
        );
    }
}
