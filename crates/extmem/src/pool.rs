//! A disk-resident array behind an LRU buffer pool.
//!
//! [`CachedArray`] models random access to out-of-core data: the array
//! lives on "disk" in blocks of `B` records, and a buffer pool holds
//! `frames` blocks in memory (so `M = frames * B`). Every access that
//! misses the pool costs a read I/O (plus a write I/O if the evicted
//! frame is dirty). This is the substrate for the blocked-vs-naive
//! traversal experiments: row-major scans of a row-major matrix cost
//! `N/B`, column-major scans cost up to `N`.

use pdc_core::metrics::Counter;
use pdc_core::trace::TraceSession;

/// Statistics of a [`CachedArray`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Logical element accesses.
    pub accesses: u64,
    /// Accesses served from a resident frame (`accesses = hits +
    /// fetches`).
    pub hits: u64,
    /// Block fetches from disk (misses).
    pub fetches: u64,
    /// Dirty-block writebacks (on eviction or [`CachedArray::flush`]).
    pub writebacks: u64,
    /// Frames evicted to make room (dirty or clean).
    pub evictions: u64,
}

impl PoolStats {
    /// Total block I/Os (fetches + writebacks).
    pub fn ios(&self) -> u64 {
        self.fetches + self.writebacks
    }

    /// Miss rate (fetches / accesses), 0 for no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.fetches as f64 / self.accesses as f64
        }
    }
}

impl std::ops::Add for PoolStats {
    type Output = PoolStats;

    fn add(self, o: PoolStats) -> PoolStats {
        PoolStats {
            accesses: self.accesses + o.accesses,
            hits: self.hits + o.hits,
            fetches: self.fetches + o.fetches,
            writebacks: self.writebacks + o.writebacks,
            evictions: self.evictions + o.evictions,
        }
    }
}

/// Registry mirrors for the pool's owned [`PoolStats`]: the
/// single-threaded pool keeps its plain-struct counts, and every
/// increment is echoed into the shared lock-free registry.
#[derive(Debug, Clone)]
struct PoolObs {
    accesses: Counter,
    hits: Counter,
    fetches: Counter,
    writebacks: Counter,
    evictions: Counter,
}

#[derive(Debug, Clone)]
struct Frame<T> {
    block_no: usize,
    data: Vec<T>,
    dirty: bool,
    /// LRU timestamp.
    last_use: u64,
}

/// A `T`-array stored in simulated external memory behind an LRU pool.
#[derive(Debug, Clone)]
pub struct CachedArray<T> {
    disk: Vec<T>,
    block: usize,
    frames: Vec<Frame<T>>,
    max_frames: usize,
    clock: u64,
    stats: PoolStats,
    obs: Option<PoolObs>,
}

impl<T: Clone + Default> CachedArray<T> {
    /// Wrap `data` as a disk-resident array with block size `block` and a
    /// pool of `frames` blocks.
    ///
    /// # Panics
    /// Panics if `block == 0` or `frames == 0`.
    pub fn new(data: Vec<T>, block: usize, frames: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        assert!(frames > 0, "need at least one frame");
        CachedArray {
            disk: data,
            block,
            frames: Vec::new(),
            max_frames: frames,
            clock: 0,
            stats: PoolStats::default(),
            obs: None,
        }
    }

    /// Publish this pool's counters into `session` as
    /// `io.pool_accesses`, `io.pool_hits`, `io.pool_fetches`,
    /// `io.pool_writebacks`, and `io.pool_evictions`. The owned
    /// [`PoolStats`] keeps counting identically; every increment is
    /// simply echoed into the registry.
    pub fn attach_trace(&mut self, session: &TraceSession) {
        self.obs = Some(PoolObs {
            accesses: session.counter("io.pool_accesses"),
            hits: session.counter("io.pool_hits"),
            fetches: session.counter("io.pool_fetches"),
            writebacks: session.counter("io.pool_writebacks"),
            evictions: session.counter("io.pool_evictions"),
        });
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.disk.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Block size `B`.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Pool capacity in blocks (`M/B`).
    pub fn frame_count(&self) -> usize {
        self.max_frames
    }

    fn frame_for(&mut self, index: usize) -> usize {
        assert!(index < self.disk.len(), "index {index} out of bounds");
        let block_no = index / self.block;
        self.clock += 1;
        if let Some(pos) = self.frames.iter().position(|f| f.block_no == block_no) {
            self.frames[pos].last_use = self.clock;
            self.stats.hits += 1;
            if let Some(o) = &self.obs {
                o.hits.inc();
            }
            return pos;
        }
        // Miss: fetch, evicting LRU if full.
        self.stats.fetches += 1;
        if let Some(o) = &self.obs {
            o.fetches.inc();
        }
        if self.frames.len() == self.max_frames {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_use)
                .map(|(i, _)| i)
                .unwrap();
            let f = self.frames.swap_remove(victim);
            self.stats.evictions += 1;
            if let Some(o) = &self.obs {
                o.evictions.inc();
            }
            if f.dirty {
                self.stats.writebacks += 1;
                if let Some(o) = &self.obs {
                    o.writebacks.inc();
                }
                let base = f.block_no * self.block;
                let end = (base + self.block).min(self.disk.len());
                self.disk[base..end].clone_from_slice(&f.data[..end - base]);
            }
        }
        let base = block_no * self.block;
        let end = (base + self.block).min(self.disk.len());
        self.frames.push(Frame {
            block_no,
            data: self.disk[base..end].to_vec(),
            dirty: false,
            last_use: self.clock,
        });
        self.frames.len() - 1
    }

    /// Read element `index` through the pool.
    pub fn get(&mut self, index: usize) -> T {
        self.stats.accesses += 1;
        if let Some(o) = &self.obs {
            o.accesses.inc();
        }
        let f = self.frame_for(index);
        self.frames[f].data[index % self.block].clone()
    }

    /// Write element `index` through the pool (write-back policy).
    pub fn set(&mut self, index: usize, value: T) {
        self.stats.accesses += 1;
        if let Some(o) = &self.obs {
            o.accesses.inc();
        }
        let f = self.frame_for(index);
        let off = index % self.block;
        self.frames[f].data[off] = value;
        self.frames[f].dirty = true;
    }

    /// Write back every dirty frame (one writeback I/O each), keeping
    /// the frames resident but clean. After a flush, [`Self::stats`]
    /// accounts for *all* block I/Os the array has caused — previously
    /// the final writebacks were only charged inside
    /// [`Self::into_inner`], after the stats had become unreachable,
    /// so callers undercounted exactly the dirty-at-exit blocks.
    pub fn flush(&mut self) {
        for i in 0..self.frames.len() {
            if !self.frames[i].dirty {
                continue;
            }
            self.stats.writebacks += 1;
            if let Some(o) = &self.obs {
                o.writebacks.inc();
            }
            let base = self.frames[i].block_no * self.block;
            let end = (base + self.block).min(self.disk.len());
            self.disk[base..end].clone_from_slice(&self.frames[i].data[..end - base]);
            self.frames[i].dirty = false;
        }
    }

    /// Flush all dirty frames and return the full array contents.
    pub fn into_inner(mut self) -> Vec<T> {
        self.flush();
        self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_costs_n_over_b() {
        let n = 1000;
        let mut a = CachedArray::new((0..n as u64).collect(), 10, 4);
        let mut sum = 0;
        for i in 0..n {
            sum += a.get(i);
        }
        assert_eq!(sum, (0..n as u64).sum::<u64>());
        assert_eq!(a.stats().fetches, 100, "one fetch per block");
        assert_eq!(a.stats().miss_rate(), 0.1);
    }

    #[test]
    fn strided_scan_thrashes() {
        // Stride = block size with a tiny pool: every access misses.
        let n = 1000;
        let b = 10;
        let mut a = CachedArray::new(vec![0u8; n], b, 2);
        for start in 0..b {
            let mut i = start;
            while i < n {
                a.get(i);
                i += b;
            }
        }
        assert_eq!(a.stats().accesses, 1000);
        assert_eq!(a.stats().fetches, 1000, "every access misses");
    }

    #[test]
    fn repeated_access_hits() {
        let mut a = CachedArray::new(vec![7u32; 100], 10, 2);
        for _ in 0..50 {
            assert_eq!(a.get(5), 7);
        }
        assert_eq!(a.stats().fetches, 1);
    }

    #[test]
    fn writes_are_write_back() {
        let mut a = CachedArray::new(vec![0u32; 100], 10, 1);
        // Write the whole first block: one fetch, no writeback yet.
        for i in 0..10 {
            a.set(i, i as u32);
        }
        assert_eq!(a.stats().fetches, 1);
        assert_eq!(a.stats().writebacks, 0);
        // Touch another block: dirty eviction -> one writeback.
        a.get(50);
        assert_eq!(a.stats().writebacks, 1);
        let data = a.into_inner();
        assert_eq!(&data[..10], &(0..10u32).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn into_inner_flushes_dirty_frames() {
        let mut a = CachedArray::new(vec![0u8; 20], 10, 2);
        a.set(3, 9);
        a.set(15, 8);
        let data = a.into_inner();
        assert_eq!(data[3], 9);
        assert_eq!(data[15], 8);
    }

    #[test]
    fn lru_keeps_hot_block() {
        let mut a = CachedArray::new(vec![0u8; 40], 10, 2);
        a.get(0); // block 0
        a.get(10); // block 1
        a.get(0); // block 0 now more recent
        a.get(20); // block 2 evicts block 1 (LRU)
        let before = a.stats().fetches;
        a.get(0); // hit
        assert_eq!(a.stats().fetches, before);
        a.get(10); // miss (was evicted)
        assert_eq!(a.stats().fetches, before + 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        CachedArray::new(vec![0u8; 5], 2, 1).get(5);
    }

    #[test]
    fn hits_plus_fetches_equal_accesses() {
        let mut a = CachedArray::new(vec![0u32; 100], 10, 2);
        for i in 0..100 {
            a.get(i % 30);
        }
        let s = a.stats();
        assert_eq!(s.hits + s.fetches, s.accesses);
        assert!(s.hits > 0);
    }

    #[test]
    fn evictions_counted_dirty_or_clean() {
        let mut a = CachedArray::new(vec![0u8; 40], 10, 2);
        a.get(0); // block 0
        a.get(10); // block 1 (pool full)
        a.get(20); // evicts clean block 0
        assert_eq!(a.stats().evictions, 1);
        a.set(30, 1); // evicts clean block 1
        a.get(20); // hit: block 2 becomes most recent
        a.get(0); // evicts dirty block 3 -> writeback too
        let s = a.stats();
        assert_eq!(s.evictions, 3);
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn flush_makes_final_writebacks_observable() {
        let mut a = CachedArray::new(vec![0u8; 20], 10, 2);
        a.set(3, 9);
        a.set(15, 8);
        // Two dirty resident frames: without a flush, stats() missed
        // these two writebacks entirely.
        assert_eq!(a.stats().writebacks, 0);
        a.flush();
        assert_eq!(a.stats().writebacks, 2);
        // Flush is idempotent and keeps frames resident.
        let hits_before = a.stats().hits;
        a.flush();
        assert_eq!(a.stats().writebacks, 2);
        assert_eq!(a.get(3), 9);
        assert_eq!(a.stats().hits, hits_before + 1);
        let data = a.into_inner();
        assert_eq!((data[3], data[15]), (9, 8));
    }

    #[test]
    fn traced_pool_mirrors_stats_into_registry() {
        let session = TraceSession::new();
        let mut a = CachedArray::new(vec![0u64; 200], 10, 3);
        a.attach_trace(&session);
        for i in 0..200 {
            a.set(i, i as u64);
        }
        for i in (0..200).step_by(7) {
            a.get(i);
        }
        a.flush();
        let s = a.stats();
        let snap = session.snapshot();
        assert_eq!(snap.get("io.pool_accesses"), s.accesses);
        assert_eq!(snap.get("io.pool_hits"), s.hits);
        assert_eq!(snap.get("io.pool_fetches"), s.fetches);
        assert_eq!(snap.get("io.pool_writebacks"), s.writebacks);
        assert_eq!(snap.get("io.pool_evictions"), s.evictions);
        assert!(s.writebacks > 0 && s.evictions > 0);
    }
}
