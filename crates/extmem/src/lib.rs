//! # pdc-extmem — the external-memory (I/O) model
//!
//! CS41's out-of-core unit (paper Table III, "Out-of-Core (I/O-Efficient)
//! Algorithms") analyzes algorithms by *block transfers*: a machine with
//! internal memory of `M` records moves data to/from disk in blocks of
//! `B` records, and the cost of an algorithm is the number of block I/Os.
//!
//! * [`device`] — the simulated disk: files of records, block-granular
//!   sequential readers/writers, and an I/O counter.
//! * [`pool`] — a disk-resident array behind an LRU buffer pool of
//!   `M/B` frames: random access that counts misses, the substrate for
//!   blocked-vs-naive traversal experiments.
//! * [`extsort`] — external merge sort: run formation + multiway merge,
//!   meeting the sort bound `(2N/B)·(1 + ⌈log_{M/B−1}(N/M)⌉)` I/Os.
//! * [`matrix`] — out-of-core matrix transpose, naive vs blocked.
//! * [`theory`] — closed-form I/O bounds (scan, sort, permute) used by
//!   tests and the experiment tables.
//! * [`scenario`] — the sort behind the [`pdc_core::scenario`] seam:
//!   sequential vs pool-sorted run formation, same I/O count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod extsort;
pub mod matrix;
pub mod pool;
pub mod scenario;
pub mod theory;

pub use device::{Disk, FileId, IoStats};
pub use extsort::{external_merge_sort, external_merge_sort_pooled};
pub use matrix::{multiply_into, OocMatrix};
pub use pool::CachedArray;
pub use scenario::ExtsortScenario;
