//! External merge sort behind the [`pdc_core::scenario`] seam.
//!
//! `size` is the record count; the input is a seeded random `u64` file.
//! The sequential sort is the baseline; the threads backend runs the
//! in-memory chunk sorts of run formation on the work-stealing pool.
//! The digest covers the sorted output **and the measured I/O count**:
//! the pooled variant keeps all disk traffic on the calling thread, so
//! cross-backend digest equality here asserts both "same sorted data"
//! and "same block-transfer schedule" at once.

use crate::device::Disk;
use crate::extsort::{external_merge_sort, external_merge_sort_pooled, SortConfig};
use pdc_core::rng::Rng;
use pdc_core::scenario::{Backend, Digest, Outcome, Scenario, ScenarioCtx};
use pdc_threads::pool::WorkStealingPool;

/// Block size in records.
const BLOCK: usize = 16;

/// External merge sort on sequential / pool backends.
pub struct ExtsortScenario;

impl ExtsortScenario {
    /// Internal memory for `n` records: an eighth of the input (so real
    /// multi-pass merging happens), floored at two blocks.
    fn memory(n: usize) -> usize {
        (n / 8).max(2 * BLOCK)
    }
}

impl Scenario for ExtsortScenario {
    fn name(&self) -> &'static str {
        "extsort"
    }

    fn backends(&self) -> Vec<Backend> {
        vec![Backend::Sequential, Backend::Threads { workers: 4 }]
    }

    fn run(&self, backend: &Backend, ctx: &ScenarioCtx<'_>) -> Outcome {
        let data = Rng::new(ctx.seed).u64_vec(ctx.size);
        let mut disk = Disk::new(BLOCK);
        disk.attach_trace(ctx.session);
        let input = disk.create_file(data);
        let config = SortConfig {
            memory: Self::memory(ctx.size),
        };
        let out = match backend {
            Backend::Sequential => external_merge_sort(&mut disk, input, config),
            Backend::Threads { workers } => {
                let pool = WorkStealingPool::with_trace(*workers, ctx.session.clone());
                external_merge_sort_pooled(&mut disk, input, config, &pool)
            }
            other => panic!("extsort scenario does not support {other}"),
        };
        let ios = disk.stats().total();
        ctx.session.counter("extsort.records").add(ctx.size as u64);
        let mut d = Digest::new();
        for v in disk.contents(out) {
            d.write_u64(*v);
        }
        d.write_u64(ios);
        Outcome {
            digest: d.finish(),
            items: ctx.size as u64,
            detail: format!("ios={ios}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::scenario::{run_scenario, AnalyzeVerdict, ScenarioConfig};
    use pdc_core::trace::TraceSession;

    fn no_analyzer(_: &TraceSession) -> AnalyzeVerdict {
        AnalyzeVerdict {
            clean: true,
            defects: 0,
            events: 0,
        }
    }

    #[test]
    fn backends_agree_on_data_and_io_schedule() {
        let cfg = ScenarioConfig::new(5, &[200, 1500]);
        let report = run_scenario(&ExtsortScenario, &cfg, &no_analyzer);
        assert_eq!(report.runs.len(), 4);
        assert!(report.outcomes_agree(), "{:?}", report.mismatches());
        assert!(report.rows_valid());
        // The detail carries the I/O count; both backends must report
        // the same one (the digest already enforces it — this makes the
        // failure message legible).
        for size in report.sizes() {
            let details: Vec<&str> = report
                .runs
                .iter()
                .filter(|r| r.size == size)
                .map(|r| r.outcome.detail.as_str())
                .collect();
            assert!(details.windows(2).all(|w| w[0] == w[1]), "{details:?}");
        }
    }

    #[test]
    fn io_counters_reach_the_session() {
        let cfg = ScenarioConfig::new(8, &[400]);
        let report = run_scenario(&ExtsortScenario, &cfg, &|s: &TraceSession| {
            let snap = s.snapshot();
            assert!(snap.get("io.reads") > 0, "disk reads must be traced");
            assert!(snap.get("io.writes") > 0, "disk writes must be traced");
            AnalyzeVerdict {
                clean: true,
                defects: 0,
                events: 0,
            }
        });
        assert!(report.outcomes_agree());
    }
}
