//! # pdc-memsim — the memory hierarchy, simulated
//!
//! CS31's Table II topics ("Storage, RAM, Caching and Cache
//! Organizations, Replacement Policies, Cache Coherence") as a
//! trace-driven simulator:
//!
//! * [`cache`] — set-associative single-level cache: organization
//!   (line size, sets, ways), replacement (LRU/FIFO/random), write
//!   policies (write-back/write-through, allocate/no-allocate).
//! * [`hierarchy`] — multi-level composition (L1 → L2 → memory) with an
//!   average-memory-access-time (AMAT) model.
//! * [`trace`] — address-trace generators for the canonical access
//!   patterns: sequential, strided, random, row/column-major matrix
//!   walks, pointer chasing.
//! * [`coherence`] — MSI and MESI bus-snooping protocols over private
//!   per-core caches, counting bus transactions and invalidations; the
//!   false-sharing experiment lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coherence;
pub mod hierarchy;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats, ReplacementPolicy, WritePolicy};
pub use coherence::{CoherenceSim, Protocol};
