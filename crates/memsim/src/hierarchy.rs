//! Multi-level cache composition and the AMAT model.
//!
//! An access tries L1; an L1 miss tries L2; an L2 miss goes to memory.
//! Average memory access time (AMAT) = `hit_time + miss_rate × miss_penalty`,
//! applied recursively — the formula CS31 exams drill.

use crate::cache::{AccessResult, Cache, CacheConfig, CacheStats};

/// One level's latency parameters (in cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelLatency {
    /// Time to probe (and hit in) this level.
    pub hit_time: f64,
}

/// A two-level hierarchy over a flat memory.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    l1_lat: LevelLatency,
    l2_lat: LevelLatency,
    /// Memory access latency in cycles.
    pub mem_latency: f64,
}

impl Hierarchy {
    /// Build an L1/L2 hierarchy with the given configs and latencies.
    pub fn new(
        l1: CacheConfig,
        l1_hit: f64,
        l2: CacheConfig,
        l2_hit: f64,
        mem_latency: f64,
    ) -> Self {
        assert!(
            l2.capacity() >= l1.capacity(),
            "L2 should not be smaller than L1"
        );
        Hierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l1_lat: LevelLatency { hit_time: l1_hit },
            l2_lat: LevelLatency { hit_time: l2_hit },
            mem_latency,
        }
    }

    /// Run one access; returns the modeled latency in cycles.
    pub fn access(&mut self, addr: u64, is_write: bool) -> f64 {
        match self.l1.access(addr, is_write) {
            AccessResult::Hit => self.l1_lat.hit_time,
            AccessResult::Miss => match self.l2.access(addr, is_write) {
                AccessResult::Hit => self.l1_lat.hit_time + self.l2_lat.hit_time,
                AccessResult::Miss => {
                    self.l1_lat.hit_time + self.l2_lat.hit_time + self.mem_latency
                }
            },
        }
    }

    /// Run a whole trace; returns total modeled cycles.
    pub fn run_trace(&mut self, trace: &[(u64, bool)]) -> f64 {
        trace.iter().map(|&(a, w)| self.access(a, w)).sum()
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Measured AMAT: total modeled cycles / accesses, from the counters.
    pub fn amat(&self) -> f64 {
        let l1 = self.l1_stats();
        let l2 = self.l2_stats();
        let accesses = l1.hits + l1.misses;
        if accesses == 0 {
            return 0.0;
        }
        let total = accesses as f64 * self.l1_lat.hit_time
            + (l2.hits + l2.misses) as f64 * self.l2_lat.hit_time
            + l2.misses as f64 * self.mem_latency;
        total / accesses as f64
    }
}

/// Closed-form AMAT for a two-level hierarchy (the exam formula):
/// `t1 + m1 * (t2 + m2 * t_mem)` with *local* miss rates.
pub fn amat_two_level(t1: f64, m1: f64, t2: f64, m2: f64, t_mem: f64) -> f64 {
    t1 + m1 * (t2 + m2 * t_mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;

    fn small_hierarchy() -> Hierarchy {
        Hierarchy::new(
            CacheConfig::direct_mapped(64, 8), // 512 B L1
            1.0,
            CacheConfig::direct_mapped(64, 64), // 4 KiB L2
            10.0,
            100.0,
        )
    }

    #[test]
    fn hit_latencies_compose() {
        let mut h = small_hierarchy();
        // First touch: L1 miss, L2 miss -> 111 cycles.
        assert_eq!(h.access(0, false), 111.0);
        // Now resident in both: 1 cycle.
        assert_eq!(h.access(0, false), 1.0);
    }

    #[test]
    fn l2_catches_l1_conflicts() {
        let mut h = small_hierarchy();
        // Two lines conflicting in L1 (8 sets) but not in L2 (64 sets).
        let a = 0u64;
        let b = 64 * 8;
        h.access(a, false);
        h.access(b, false); // evicts a from L1, both in L2
        let lat = h.access(a, false); // L1 miss, L2 hit
        assert_eq!(lat, 11.0);
    }

    #[test]
    fn measured_amat_matches_formula() {
        let mut h = small_hierarchy();
        let t = trace::random(0, 4096, 20_000, 9);
        h.run_trace(&t);
        let l1 = h.l1_stats();
        let l2 = h.l2_stats();
        let m1 = l1.miss_rate();
        let m2 = l2.miss_rate();
        let formula = amat_two_level(1.0, m1, 10.0, m2, 100.0);
        assert!(
            (h.amat() - formula).abs() < 1e-9,
            "measured {} vs formula {formula}",
            h.amat()
        );
    }

    #[test]
    fn sequential_trace_has_low_amat() {
        let mut h = small_hierarchy();
        let seq = trace::sequential(0, 50_000);
        h.run_trace(&seq);
        // 1/8 of accesses miss L1 (8 words per 64B line).
        assert!(h.amat() < 1.0 + 0.125 * 110.0 + 1.0);
        assert!(h.l1_stats().miss_rate() < 0.13);
    }

    #[test]
    fn pointer_chase_has_high_amat() {
        let mut h = small_hierarchy();
        // Working set far beyond L2.
        let chase = trace::pointer_chase(0, 1 << 16, 50_000, 4);
        h.run_trace(&chase);
        assert!(h.amat() > 50.0, "amat {}", h.amat());
    }

    #[test]
    #[should_panic(expected = "smaller than L1")]
    fn l2_smaller_than_l1_rejected() {
        Hierarchy::new(
            CacheConfig::direct_mapped(64, 64),
            1.0,
            CacheConfig::direct_mapped(64, 8),
            10.0,
            100.0,
        );
    }
}
