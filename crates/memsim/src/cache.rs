//! A set-associative cache simulator.
//!
//! Organization follows the lecture's parameters exactly: an address maps
//! to a set by `(addr / line_size) % sets`; each set holds `ways` lines;
//! replacement within a set is LRU, FIFO, or (seeded) random. Write
//! handling models the two×two design space: write-back vs write-through
//! crossed with write-allocate vs no-allocate.

use pdc_core::metrics::Counter;
use pdc_core::rng::Rng;
use pdc_core::trace::TraceSession;
use std::collections::HashSet;

/// Replacement policy within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least recently used line.
    Lru,
    /// Evict the line that has been resident longest.
    Fifo,
    /// Evict a (deterministically seeded) random line.
    Random,
}

/// Write-handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Dirty lines written back on eviction; writes allocate.
    WriteBackAllocate,
    /// Every write goes to memory immediately; writes allocate.
    WriteThroughAllocate,
    /// Every write goes to memory; write misses do not allocate.
    WriteThroughNoAllocate,
}

/// Cache organization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Line (block) size in bytes; must be a power of two.
    pub line_size: usize,
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Write policy.
    pub write: WritePolicy,
}

impl CacheConfig {
    /// A direct-mapped cache of `lines` lines.
    pub fn direct_mapped(line_size: usize, lines: usize) -> Self {
        CacheConfig {
            line_size,
            sets: lines,
            ways: 1,
            replacement: ReplacementPolicy::Lru,
            write: WritePolicy::WriteBackAllocate,
        }
    }

    /// A fully associative cache of `lines` lines.
    pub fn fully_associative(line_size: usize, lines: usize) -> Self {
        CacheConfig {
            line_size,
            sets: 1,
            ways: lines,
            replacement: ReplacementPolicy::Lru,
            write: WritePolicy::WriteBackAllocate,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.line_size * self.sets * self.ways
    }
}

/// Hit/miss and traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses on a line never referenced before (the cold/compulsory
    /// class of the 3C model; `misses - compulsory_misses` are the
    /// capacity/conflict re-fetches).
    pub compulsory_misses: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Dirty-line writebacks (write-back policy only).
    pub writebacks: u64,
    /// Words written through to the next level (write-through only).
    pub write_throughs: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Capacity/conflict misses: re-fetches of lines seen before.
    pub fn refill_misses(&self) -> u64 {
        self.misses - self.compulsory_misses
    }
}

/// Registry mirrors for the cache's owned [`CacheStats`]: the
/// single-threaded simulator keeps its plain-struct counts, and each
/// access's deltas are echoed into the shared lock-free registry.
#[derive(Debug, Clone)]
struct CacheObs {
    hits: Counter,
    misses: Counter,
    misses_compulsory: Counter,
    misses_refill: Counter,
    evictions: Counter,
    writebacks: Counter,
    write_throughs: Counter,
}

impl CacheObs {
    fn publish(&self, before: &CacheStats, after: &CacheStats) {
        self.hits.add(after.hits - before.hits);
        self.misses.add(after.misses - before.misses);
        self.misses_compulsory
            .add(after.compulsory_misses - before.compulsory_misses);
        self.misses_refill
            .add(after.refill_misses() - before.refill_misses());
        self.evictions.add(after.evictions - before.evictions);
        self.writebacks.add(after.writebacks - before.writebacks);
        self.write_throughs
            .add(after.write_throughs - before.write_throughs);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp or FIFO insertion order.
    stamp: u64,
}

/// The cache simulator.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    clock: u64,
    rng: Rng,
    /// Line numbers ever referenced, for compulsory-miss classification.
    touched: HashSet<u64>,
    obs: Option<CacheObs>,
}

/// Result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Data was resident.
    Hit,
    /// Data was fetched from the next level.
    Miss,
}

impl Cache {
    /// Build a cache from a configuration (deterministic random seed 0).
    ///
    /// # Panics
    /// Panics unless line size and set count are powers of two and ways
    /// is positive.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_seed(config, 0)
    }

    /// Build with an explicit seed for the Random replacement policy.
    pub fn with_seed(config: CacheConfig, seed: u64) -> Self {
        assert!(
            config.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "need at least one way");
        Cache {
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        stamp: 0
                    };
                    config.ways
                ];
                config.sets
            ],
            config,
            stats: CacheStats::default(),
            clock: 0,
            rng: Rng::new(seed),
            touched: HashSet::new(),
            obs: None,
        }
    }

    /// Publish this cache's counters into `session` as `cache.hits`,
    /// `cache.misses`, `cache.misses_compulsory`,
    /// `cache.misses_refill`, `cache.evictions`, `cache.writebacks`,
    /// and `cache.write_throughs`. The owned [`CacheStats`] keeps
    /// counting identically; each access's deltas are echoed into the
    /// registry.
    pub fn attach_trace(&mut self, session: &TraceSession) {
        self.obs = Some(CacheObs {
            hits: session.counter("cache.hits"),
            misses: session.counter("cache.misses"),
            misses_compulsory: session.counter("cache.misses_compulsory"),
            misses_refill: session.counter("cache.misses_refill"),
            evictions: session.counter("cache.evictions"),
            writebacks: session.counter("cache.writebacks"),
            write_throughs: session.counter("cache.write_throughs"),
        });
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_size as u64;
        let set = (line % self.config.sets as u64) as usize;
        let tag = line / self.config.sets as u64;
        (set, tag)
    }

    /// Perform a read access at byte address `addr`.
    pub fn read(&mut self, addr: u64) -> AccessResult {
        self.access(addr, false)
    }

    /// Perform a write access at byte address `addr`.
    pub fn write(&mut self, addr: u64) -> AccessResult {
        self.access(addr, true)
    }

    /// Perform an access; `is_write` selects write semantics.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        let before = self.stats;
        let result = self.access_inner(addr, is_write);
        if let Some(o) = &self.obs {
            o.publish(&before, &self.stats);
        }
        result
    }

    fn access_inner(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.clock += 1;
        let first_touch = self.touched.insert(addr / self.config.line_size as u64);
        let (set_idx, tag) = self.split(addr);
        let write_through = matches!(
            self.config.write,
            WritePolicy::WriteThroughAllocate | WritePolicy::WriteThroughNoAllocate
        );
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            self.stats.hits += 1;
            if self.config.replacement == ReplacementPolicy::Lru {
                line.stamp = self.clock;
            }
            if is_write {
                if write_through {
                    self.stats.write_throughs += 1;
                } else {
                    line.dirty = true;
                }
            }
            return AccessResult::Hit;
        }
        // Miss.
        self.stats.misses += 1;
        if first_touch {
            self.stats.compulsory_misses += 1;
        }
        if is_write && self.config.write == WritePolicy::WriteThroughNoAllocate {
            self.stats.write_throughs += 1;
            return AccessResult::Miss; // no allocation
        }
        // Choose a victim: an invalid line if any, else by policy.
        let victim = if let Some(pos) = set.iter().position(|l| !l.valid) {
            pos
        } else {
            match self.config.replacement {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .unwrap(),
                ReplacementPolicy::Random => self.rng.usize_in(0, set.len()),
            }
        };
        let line = &mut set[victim];
        if line.valid {
            self.stats.evictions += 1;
            if line.dirty {
                self.stats.writebacks += 1;
            }
        }
        *line = Line {
            tag,
            valid: true,
            dirty: is_write && !write_through,
            stamp: self.clock, // LRU use-time and FIFO insert-time coincide here
        };
        if is_write && write_through {
            self.stats.write_throughs += 1;
        }
        AccessResult::Miss
    }

    /// Run a whole trace of `(addr, is_write)` accesses.
    pub fn run_trace(&mut self, trace: &[(u64, bool)]) -> CacheStats {
        for &(addr, w) in trace {
            self.access(addr, w);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(line: usize, sets: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            line_size: line,
            sets,
            ways,
            replacement: ReplacementPolicy::Lru,
            write: WritePolicy::WriteBackAllocate,
        }
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(cfg(64, 4, 2));
        assert_eq!(c.read(0), AccessResult::Miss);
        assert_eq!(c.read(0), AccessResult::Hit);
        assert_eq!(c.read(63), AccessResult::Hit, "same line");
        assert_eq!(c.read(64), AccessResult::Miss, "next line");
    }

    #[test]
    fn sequential_scan_miss_rate_is_one_over_words_per_line() {
        let mut c = Cache::new(cfg(64, 16, 4));
        // 8-byte words, 8 per line: miss every 8th access.
        for i in 0..8_000u64 {
            c.read(i * 8);
        }
        let s = c.stats();
        assert_eq!(s.misses, 1000);
        assert!((s.miss_rate() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn direct_mapped_conflict_misses() {
        // Two addresses mapping to the same set thrash a direct-mapped
        // cache but coexist in a 2-way cache.
        let a = 0u64;
        let b = (64 * 8) as u64; // same set (8 sets), different tag
        let mut dm = Cache::new(cfg(64, 8, 1));
        for _ in 0..100 {
            dm.read(a);
            dm.read(b);
        }
        assert_eq!(dm.stats().misses, 200, "every access conflicts");

        let mut two_way = Cache::new(cfg(64, 8, 2));
        for _ in 0..100 {
            two_way.read(a);
            two_way.read(b);
        }
        assert_eq!(two_way.stats().misses, 2, "only compulsory misses");
    }

    #[test]
    fn lru_beats_fifo_on_looping_with_reuse() {
        // Pattern: A B A C A D ... — A is hot; LRU keeps it, FIFO ages it
        // out.
        let mk_trace = || {
            let mut t = Vec::new();
            for i in 1..200u64 {
                t.push((0u64, false)); // A
                t.push((i * 64, false));
            }
            t
        };
        let mut lru = Cache::new(CacheConfig {
            replacement: ReplacementPolicy::Lru,
            ..cfg(64, 1, 4)
        });
        lru.run_trace(&mk_trace());
        let mut fifo = Cache::new(CacheConfig {
            replacement: ReplacementPolicy::Fifo,
            ..cfg(64, 1, 4)
        });
        fifo.run_trace(&mk_trace());
        assert!(
            lru.stats().misses < fifo.stats().misses,
            "lru {} vs fifo {}",
            lru.stats().misses,
            fifo.stats().misses
        );
    }

    #[test]
    fn random_replacement_is_deterministic_per_seed() {
        let cfg_r = CacheConfig {
            replacement: ReplacementPolicy::Random,
            ..cfg(64, 2, 2)
        };
        let trace: Vec<(u64, bool)> = (0..1000u64).map(|i| (i * 97 % 4096, false)).collect();
        let mut a = Cache::with_seed(cfg_r, 5);
        let mut b = Cache::with_seed(cfg_r, 5);
        assert_eq!(a.run_trace(&trace), b.run_trace(&trace));
    }

    #[test]
    fn write_back_defers_traffic() {
        let mut c = Cache::new(cfg(64, 1, 1));
        // Write the same line repeatedly: 1 miss, no writebacks yet.
        for _ in 0..100 {
            c.write(0);
        }
        assert_eq!(c.stats().writebacks, 0);
        // Evict it with a different line: one writeback.
        c.read(64);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_pays_per_write() {
        let mut c = Cache::new(CacheConfig {
            write: WritePolicy::WriteThroughAllocate,
            ..cfg(64, 1, 1)
        });
        for _ in 0..100 {
            c.write(0);
        }
        assert_eq!(c.stats().write_throughs, 100);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_no_allocate_skips_allocation() {
        let mut c = Cache::new(CacheConfig {
            write: WritePolicy::WriteThroughNoAllocate,
            ..cfg(64, 1, 1)
        });
        c.write(0);
        assert_eq!(c.read(0), AccessResult::Miss, "write did not allocate");
        // But a read-allocated line takes write hits.
        assert_eq!(c.write(0), AccessResult::Hit);
    }

    #[test]
    fn fully_associative_has_no_conflict_misses() {
        // Working set of 4 lines fits a 4-line fully associative cache
        // regardless of addresses.
        let addrs = [0u64, 64 * 100, 64 * 200, 64 * 300];
        let mut c = Cache::new(CacheConfig::fully_associative(64, 4));
        for _ in 0..50 {
            for &a in &addrs {
                c.read(a);
            }
        }
        assert_eq!(c.stats().misses, 4, "compulsory only");
    }

    #[test]
    fn capacity_misses_when_working_set_exceeds_cache() {
        // 8-line working set cycled through a 4-line fully associative
        // LRU cache: every access misses (the classic LRU loop pathology).
        let mut c = Cache::new(CacheConfig::fully_associative(64, 4));
        for _ in 0..10 {
            for i in 0..8u64 {
                c.read(i * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(cfg(64, 16, 4).capacity(), 4096);
    }

    #[test]
    fn misses_classified_compulsory_vs_refill() {
        // Direct-mapped thrash: 2 distinct lines, 200 misses — only the
        // first touch of each line is compulsory.
        let mut dm = Cache::new(cfg(64, 8, 1));
        for _ in 0..100 {
            dm.read(0);
            dm.read(64 * 8);
        }
        let s = dm.stats();
        assert_eq!(s.misses, 200);
        assert_eq!(s.compulsory_misses, 2);
        assert_eq!(s.refill_misses(), 198);

        // Pure sequential scan: every miss is compulsory.
        let mut seq = Cache::new(cfg(64, 16, 4));
        for i in 0..1000u64 {
            seq.read(i * 8);
        }
        let s = seq.stats();
        assert_eq!(s.compulsory_misses, s.misses);
        assert_eq!(s.refill_misses(), 0);
    }

    #[test]
    fn traced_cache_mirrors_stats_into_registry() {
        let session = pdc_core::trace::TraceSession::new();
        let mut c = Cache::new(cfg(64, 4, 2));
        c.attach_trace(&session);
        for i in 0..2000u64 {
            c.access(i * 40 % 4096, i % 3 == 0);
        }
        let s = c.stats();
        let snap = session.snapshot();
        assert_eq!(snap.get("cache.hits"), s.hits);
        assert_eq!(snap.get("cache.misses"), s.misses);
        assert_eq!(snap.get("cache.misses_compulsory"), s.compulsory_misses);
        assert_eq!(snap.get("cache.misses_refill"), s.refill_misses());
        assert_eq!(snap.get("cache.evictions"), s.evictions);
        assert_eq!(snap.get("cache.writebacks"), s.writebacks);
        assert!(s.hits > 0 && s.refill_misses() > 0);
    }

    #[test]
    fn tracing_does_not_change_cache_results() {
        let trace: Vec<(u64, bool)> = (0..500u64).map(|i| (i * 72 % 2048, i % 4 == 0)).collect();
        let mut plain = Cache::new(cfg(64, 4, 2));
        let mut traced = Cache::new(cfg(64, 4, 2));
        traced.attach_trace(&pdc_core::trace::TraceSession::new());
        assert_eq!(plain.run_trace(&trace), traced.run_trace(&trace));
    }
}
