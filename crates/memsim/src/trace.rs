//! Address-trace generators for the canonical access patterns.
//!
//! Traces are `(byte_address, is_write)` sequences; `ELEM` is the element
//! size (8 bytes, a `double`/`long`). The matrix walks reproduce the
//! Game-of-Life lab's "memory layout of 2D arrays" lesson; the pointer
//! chase defeats all spatial locality.

use pdc_core::rng::Rng;

/// Element size in bytes used by the generators.
pub const ELEM: u64 = 8;

/// Sequential read scan of `n` elements starting at `base`.
pub fn sequential(base: u64, n: usize) -> Vec<(u64, bool)> {
    (0..n as u64).map(|i| (base + i * ELEM, false)).collect()
}

/// Strided read scan: `n` accesses with the given element stride.
pub fn strided(base: u64, n: usize, stride: usize) -> Vec<(u64, bool)> {
    (0..n as u64)
        .map(|i| (base + i * stride as u64 * ELEM, false))
        .collect()
}

/// Uniformly random reads over an `n`-element array.
pub fn random(base: u64, n: usize, accesses: usize, seed: u64) -> Vec<(u64, bool)> {
    let mut rng = Rng::new(seed);
    (0..accesses)
        .map(|_| (base + rng.gen_range(n as u64) * ELEM, false))
        .collect()
}

/// Row-major read walk of an `rows × cols` row-major matrix.
pub fn matrix_row_major(base: u64, rows: usize, cols: usize) -> Vec<(u64, bool)> {
    let mut t = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            t.push((base + ((i * cols + j) as u64) * ELEM, false));
        }
    }
    t
}

/// Column-major read walk of the same row-major matrix (the cache-hostile
/// order).
pub fn matrix_col_major(base: u64, rows: usize, cols: usize) -> Vec<(u64, bool)> {
    let mut t = Vec::with_capacity(rows * cols);
    for j in 0..cols {
        for i in 0..rows {
            t.push((base + ((i * cols + j) as u64) * ELEM, false));
        }
    }
    t
}

/// Pointer chase: a random permutation cycle over `n` elements, visited
/// `steps` times — no spatial locality, no prefetchable pattern.
pub fn pointer_chase(base: u64, n: usize, steps: usize, seed: u64) -> Vec<(u64, bool)> {
    assert!(n > 0);
    let mut rng = Rng::new(seed);
    // Sattolo's algorithm: a single-cycle permutation.
    let mut next: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(i as u64) as usize;
        next.swap(i, j);
    }
    let mut t = Vec::with_capacity(steps);
    let mut cur = 0usize;
    for _ in 0..steps {
        t.push((base + cur as u64 * ELEM, false));
        cur = next[cur];
    }
    t
}

/// Read-modify-write sweep (e.g. `a[i] += 1`): each element read then
/// written.
pub fn rmw_sweep(base: u64, n: usize) -> Vec<(u64, bool)> {
    let mut t = Vec::with_capacity(2 * n);
    for i in 0..n as u64 {
        t.push((base + i * ELEM, false));
        t.push((base + i * ELEM, true));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, CacheConfig};

    #[test]
    fn generators_produce_expected_lengths() {
        assert_eq!(sequential(0, 10).len(), 10);
        assert_eq!(strided(0, 10, 4).len(), 10);
        assert_eq!(random(0, 100, 50, 1).len(), 50);
        assert_eq!(matrix_row_major(0, 4, 6).len(), 24);
        assert_eq!(matrix_col_major(0, 4, 6).len(), 24);
        assert_eq!(pointer_chase(0, 16, 40, 1).len(), 40);
        assert_eq!(rmw_sweep(0, 10).len(), 20);
    }

    #[test]
    fn row_and_col_major_cover_same_addresses() {
        let mut a: Vec<u64> = matrix_row_major(0, 8, 8).iter().map(|x| x.0).collect();
        let mut b: Vec<u64> = matrix_col_major(0, 8, 8).iter().map(|x| x.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn pointer_chase_visits_whole_cycle() {
        let n = 64;
        let t = pointer_chase(0, n, n, 3);
        let mut seen: Vec<u64> = t.iter().map(|x| x.0 / ELEM).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n, "single cycle visits every element once");
    }

    #[test]
    fn row_major_beats_col_major_in_cache() {
        // 64x64 doubles, 64B lines (8 doubles/line), small cache.
        let mut row = Cache::new(CacheConfig::direct_mapped(64, 64));
        row.run_trace(&matrix_row_major(0, 64, 64));
        let mut col = Cache::new(CacheConfig::direct_mapped(64, 64));
        col.run_trace(&matrix_col_major(0, 64, 64));
        assert!(
            row.stats().misses * 4 < col.stats().misses,
            "row {} vs col {}",
            row.stats().misses,
            col.stats().misses
        );
    }

    #[test]
    fn stride_one_beats_stride_of_line_size() {
        let mut s1 = Cache::new(CacheConfig::direct_mapped(64, 128));
        s1.run_trace(&strided(0, 4096, 1));
        let mut s8 = Cache::new(CacheConfig::direct_mapped(64, 128));
        s8.run_trace(&strided(0, 4096, 8)); // 8 elems * 8B = one line per access
        assert!(s1.stats().miss_rate() < 0.2);
        assert!(s8.stats().miss_rate() > 0.9);
    }
}
