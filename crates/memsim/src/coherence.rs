//! Bus-snooping cache coherence: MSI and MESI.
//!
//! Each core has a private cache tracked as per-line coherence states;
//! accesses generate bus transactions according to the protocol, and the
//! simulator counts them. The headline experiments:
//!
//! * **MESI vs MSI** — the E state makes the private read-then-write
//!   pattern cost one bus transaction instead of two.
//! * **False sharing** — per-thread counters packed into one line cause
//!   an invalidation storm that padding eliminates (the CS75/CS87
//!   "techniques for solving false-sharing issues" topic).

use pdc_core::metrics::Counter;
use pdc_core::trace::TraceSession;
use std::collections::HashMap;

/// Coherence protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Modified / Shared / Invalid.
    Msi,
    /// Modified / Exclusive / Shared / Invalid.
    Mesi,
}

/// Per-line state in one core's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

/// Bus and cache traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Accesses that hit without a bus transaction.
    pub hits: u64,
    /// Accesses requiring a bus transaction.
    pub misses: u64,
    /// BusRd transactions (read misses).
    pub bus_reads: u64,
    /// BusRdX / BusUpgr transactions (writes needing ownership).
    pub bus_rdx: u64,
    /// The BusUpgr subset of `bus_rdx`: S→M upgrades by a core that
    /// already held the data and only needed ownership.
    pub upgrades: u64,
    /// Lines invalidated in remote caches.
    pub invalidations: u64,
    /// Modified lines flushed because a remote core touched them.
    pub writebacks: u64,
}

impl CoherenceStats {
    /// Total bus transactions.
    pub fn bus_traffic(&self) -> u64 {
        self.bus_reads + self.bus_rdx
    }
}

/// Registry mirrors for the simulator's owned [`CoherenceStats`]:
/// each access's deltas are echoed into the shared lock-free registry.
#[derive(Debug, Clone)]
struct CohObs {
    hits: Counter,
    misses: Counter,
    bus_reads: Counter,
    bus_rdx: Counter,
    upgrades: Counter,
    invalidations: Counter,
    writebacks: Counter,
}

impl CohObs {
    fn publish(&self, before: &CoherenceStats, after: &CoherenceStats) {
        self.hits.add(after.hits - before.hits);
        self.misses.add(after.misses - before.misses);
        self.bus_reads.add(after.bus_reads - before.bus_reads);
        self.bus_rdx.add(after.bus_rdx - before.bus_rdx);
        self.upgrades.add(after.upgrades - before.upgrades);
        self.invalidations
            .add(after.invalidations - before.invalidations);
        self.writebacks.add(after.writebacks - before.writebacks);
    }
}

/// The multi-core coherence simulator.
#[derive(Debug, Clone)]
pub struct CoherenceSim {
    protocol: Protocol,
    line_size: u64,
    /// `state[core]` maps line number → state (absent = Invalid).
    state: Vec<HashMap<u64, State>>,
    stats: CoherenceStats,
    obs: Option<CohObs>,
}

impl CoherenceSim {
    /// Create a simulator for `cores` cores with the given line size.
    ///
    /// # Panics
    /// Panics unless `cores > 0` and `line_size` is a power of two.
    pub fn new(protocol: Protocol, cores: usize, line_size: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        CoherenceSim {
            protocol,
            line_size,
            state: vec![HashMap::new(); cores],
            stats: CoherenceStats::default(),
            obs: None,
        }
    }

    /// Publish this simulator's counters into `session` as
    /// `cache.coh_hits`, `cache.coh_misses`, `cache.bus_reads`,
    /// `cache.bus_rdx`, `cache.upgrades`, `cache.invalidations`, and
    /// `cache.coh_writebacks`. The owned [`CoherenceStats`] keeps
    /// counting identically; each access's deltas are echoed into the
    /// registry.
    pub fn attach_trace(&mut self, session: &TraceSession) {
        self.obs = Some(CohObs {
            hits: session.counter("cache.coh_hits"),
            misses: session.counter("cache.coh_misses"),
            bus_reads: session.counter("cache.bus_reads"),
            bus_rdx: session.counter("cache.bus_rdx"),
            upgrades: session.counter("cache.upgrades"),
            invalidations: session.counter("cache.invalidations"),
            writebacks: session.counter("cache.coh_writebacks"),
        });
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.state.len()
    }

    /// The counters.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    fn get(&self, core: usize, line: u64) -> State {
        *self.state[core].get(&line).unwrap_or(&State::Invalid)
    }

    fn set(&mut self, core: usize, line: u64, s: State) {
        if s == State::Invalid {
            self.state[core].remove(&line);
        } else {
            self.state[core].insert(line, s);
        }
    }

    /// Any core other than `me` holding the line in a valid state?
    fn others_holding(&self, me: usize, line: u64) -> Vec<usize> {
        (0..self.cores())
            .filter(|&c| c != me && self.get(c, line) != State::Invalid)
            .collect()
    }

    /// Perform an access by `core` at byte address `addr`.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool) {
        let before = self.stats;
        self.access_inner(core, addr, is_write);
        if let Some(o) = &self.obs {
            o.publish(&before, &self.stats);
        }
    }

    fn access_inner(&mut self, core: usize, addr: u64, is_write: bool) {
        assert!(core < self.cores(), "core {core} out of range");
        let line = addr / self.line_size;
        let s = self.get(core, line);
        match (is_write, s) {
            // Read hits.
            (false, State::Modified | State::Exclusive | State::Shared) => {
                self.stats.hits += 1;
            }
            // Write hit in M.
            (true, State::Modified) => {
                self.stats.hits += 1;
            }
            // Write hit in E (MESI only; E never occurs under MSI):
            // silent upgrade, no bus traffic — the MESI payoff.
            (true, State::Exclusive) => {
                self.stats.hits += 1;
                self.set(core, line, State::Modified);
            }
            // Write in S: upgrade (BusUpgr) invalidating other sharers.
            (true, State::Shared) => {
                self.stats.misses += 1;
                self.stats.bus_rdx += 1;
                self.stats.upgrades += 1;
                for c in self.others_holding(core, line) {
                    // Sharers cannot be M (S implies no M exists).
                    self.stats.invalidations += 1;
                    self.set(c, line, State::Invalid);
                }
                self.set(core, line, State::Modified);
            }
            // Read miss.
            (false, State::Invalid) => {
                self.stats.misses += 1;
                self.stats.bus_reads += 1;
                let holders = self.others_holding(core, line);
                for &c in &holders {
                    if self.get(c, line) == State::Modified {
                        self.stats.writebacks += 1;
                    }
                    self.set(c, line, State::Shared);
                }
                let new_state = match self.protocol {
                    Protocol::Msi => State::Shared,
                    Protocol::Mesi => {
                        if holders.is_empty() {
                            State::Exclusive
                        } else {
                            State::Shared
                        }
                    }
                };
                self.set(core, line, new_state);
            }
            // Write miss.
            (true, State::Invalid) => {
                self.stats.misses += 1;
                self.stats.bus_rdx += 1;
                for c in self.others_holding(core, line) {
                    if self.get(c, line) == State::Modified {
                        self.stats.writebacks += 1;
                    }
                    self.stats.invalidations += 1;
                    self.set(c, line, State::Invalid);
                }
                self.set(core, line, State::Modified);
            }
        }
    }

    /// Run a trace of `(core, addr, is_write)` events.
    pub fn run_trace(&mut self, trace: &[(usize, u64, bool)]) -> CoherenceStats {
        for &(c, a, w) in trace {
            self.access(c, a, w);
        }
        self.stats
    }

    /// Check the protocol's global invariants over every line:
    ///
    /// * at most one core holds a line Modified or Exclusive;
    /// * if any core holds M/E, no other core holds the line at all;
    /// * the Exclusive state never occurs under MSI.
    ///
    /// Returns a description of the first violation, or `None`.
    pub fn check_invariants(&self) -> Option<String> {
        use std::collections::HashSet;
        let mut lines: HashSet<u64> = HashSet::new();
        for per_core in &self.state {
            lines.extend(per_core.keys().copied());
        }
        for line in lines {
            let mut owners = 0;
            let mut sharers = 0;
            for (core, per_core) in self.state.iter().enumerate() {
                match per_core.get(&line) {
                    Some(State::Modified) | Some(State::Exclusive) => {
                        if matches!(per_core.get(&line), Some(State::Exclusive))
                            && self.protocol == Protocol::Msi
                        {
                            return Some(format!(
                                "core {core} holds line {line} Exclusive under MSI"
                            ));
                        }
                        owners += 1;
                    }
                    Some(State::Shared) => sharers += 1,
                    _ => {}
                }
            }
            if owners > 1 {
                return Some(format!("line {line}: {owners} exclusive owners"));
            }
            if owners == 1 && sharers > 0 {
                return Some(format!(
                    "line {line}: owner coexists with {sharers} sharers"
                ));
            }
        }
        None
    }
}

/// Build the false-sharing experiment trace: `cores` threads each
/// increment "their" counter `iters` times, round-robin interleaved.
/// With `padding_bytes == 8` all counters share a line; with
/// `padding_bytes >= line size` each counter gets its own line.
pub fn counter_increment_trace(
    cores: usize,
    iters: usize,
    padding_bytes: u64,
) -> Vec<(usize, u64, bool)> {
    let mut t = Vec::with_capacity(cores * iters * 2);
    for _ in 0..iters {
        for c in 0..cores {
            let addr = c as u64 * padding_bytes;
            t.push((c, addr, false)); // load
            t.push((c, addr, true)); // store
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_data_msi_two_transactions_mesi_one() {
        // One core reads then writes its own line.
        let mut msi = CoherenceSim::new(Protocol::Msi, 4, 64);
        msi.access(0, 0, false); // BusRd -> S
        msi.access(0, 0, true); // S -> M needs BusUpgr
        assert_eq!(msi.stats().bus_traffic(), 2);

        let mut mesi = CoherenceSim::new(Protocol::Mesi, 4, 64);
        mesi.access(0, 0, false); // BusRd -> E
        mesi.access(0, 0, true); // E -> M silent
        assert_eq!(mesi.stats().bus_traffic(), 1);
    }

    #[test]
    fn read_sharing_is_free_after_fill() {
        let mut sim = CoherenceSim::new(Protocol::Mesi, 4, 64);
        for c in 0..4 {
            sim.access(c, 0, false);
        }
        let after_fill = sim.stats().bus_traffic();
        for _ in 0..100 {
            for c in 0..4 {
                sim.access(c, 0, false);
            }
        }
        assert_eq!(sim.stats().bus_traffic(), after_fill, "shared reads hit");
    }

    #[test]
    fn remote_write_invalidates_readers() {
        let mut sim = CoherenceSim::new(Protocol::Mesi, 3, 64);
        sim.access(0, 0, false);
        sim.access(1, 0, false);
        sim.access(2, 0, false); // all S
        sim.access(0, 0, true); // upgrade, invalidates 1 and 2
        assert_eq!(sim.stats().invalidations, 2);
        // Their next reads miss.
        let misses_before = sim.stats().misses;
        sim.access(1, 0, false);
        assert_eq!(sim.stats().misses, misses_before + 1);
        // And force a writeback of core 0's M copy.
        assert_eq!(sim.stats().writebacks, 1);
    }

    #[test]
    fn modified_line_written_back_on_remote_read_and_write() {
        let mut sim = CoherenceSim::new(Protocol::Msi, 2, 64);
        sim.access(0, 0, true); // M in core 0
        sim.access(1, 0, false); // remote read: writeback, both S
        assert_eq!(sim.stats().writebacks, 1);
        sim.access(0, 0, true); // upgrade again
        sim.access(1, 0, true); // remote write: writeback + invalidate
        assert_eq!(sim.stats().writebacks, 2);
        assert!(sim.stats().invalidations >= 2);
    }

    #[test]
    fn ping_pong_traffic_grows_with_iterations() {
        let mut sim = CoherenceSim::new(Protocol::Mesi, 2, 64);
        // Two cores alternately write the same line.
        for _ in 0..100 {
            sim.access(0, 0, true);
            sim.access(1, 0, true);
        }
        // Every write after the first is a coherence miss.
        assert!(sim.stats().bus_traffic() >= 199);
    }

    #[test]
    fn false_sharing_padding_removes_traffic() {
        let cores = 4;
        let iters = 250;
        let mut unpadded = CoherenceSim::new(Protocol::Mesi, cores, 64);
        unpadded.run_trace(&counter_increment_trace(cores, iters, 8));
        let mut padded = CoherenceSim::new(Protocol::Mesi, cores, 64);
        padded.run_trace(&counter_increment_trace(cores, iters, 64));

        let u = unpadded.stats();
        let p = padded.stats();
        // Padded: one fill per core, then silence.
        assert_eq!(p.bus_traffic(), cores as u64);
        assert_eq!(p.invalidations, 0);
        // Unpadded: traffic scales with iterations.
        assert!(
            u.bus_traffic() > (iters * cores) as u64,
            "unpadded traffic {} too small",
            u.bus_traffic()
        );
        assert!(u.invalidations > 0);
    }

    #[test]
    fn distinct_lines_do_not_interact() {
        let mut sim = CoherenceSim::new(Protocol::Mesi, 2, 64);
        sim.access(0, 0, true);
        sim.access(1, 64, true); // different line
        assert_eq!(sim.stats().invalidations, 0);
        assert_eq!(sim.stats().writebacks, 0);
    }

    #[test]
    fn upgrades_count_only_shared_to_modified() {
        let mut sim = CoherenceSim::new(Protocol::Msi, 2, 64);
        sim.access(0, 0, true); // write miss from Invalid: BusRdX, not an upgrade
        assert_eq!(sim.stats().bus_rdx, 1);
        assert_eq!(sim.stats().upgrades, 0);
        sim.access(1, 0, false); // both S
        sim.access(1, 0, true); // S -> M: BusUpgr
        assert_eq!(sim.stats().bus_rdx, 2);
        assert_eq!(sim.stats().upgrades, 1);
    }

    #[test]
    fn traced_coherence_mirrors_stats_into_registry() {
        let session = TraceSession::new();
        let cores = 4;
        let mut sim = CoherenceSim::new(Protocol::Mesi, cores, 64);
        sim.attach_trace(&session);
        sim.run_trace(&counter_increment_trace(cores, 100, 8));
        let s = sim.stats();
        let snap = session.snapshot();
        assert_eq!(snap.get("cache.coh_hits"), s.hits);
        assert_eq!(snap.get("cache.coh_misses"), s.misses);
        assert_eq!(snap.get("cache.bus_reads"), s.bus_reads);
        assert_eq!(snap.get("cache.bus_rdx"), s.bus_rdx);
        assert_eq!(snap.get("cache.upgrades"), s.upgrades);
        assert_eq!(snap.get("cache.invalidations"), s.invalidations);
        assert_eq!(snap.get("cache.coh_writebacks"), s.writebacks);
        assert!(s.invalidations > 0 && s.upgrades > 0);
    }

    #[test]
    fn msi_never_enters_exclusive() {
        let mut sim = CoherenceSim::new(Protocol::Msi, 2, 64);
        sim.access(0, 0, false); // sole reader
                                 // Under MSI a subsequent write still needs the bus.
        let before = sim.stats().bus_traffic();
        sim.access(0, 0, true);
        assert_eq!(sim.stats().bus_traffic(), before + 1);
    }
}
