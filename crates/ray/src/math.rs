//! Minimal 3-vector math for the ray tracer.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component `f64` vector (points, directions, colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3::new(1.0, 1.0, 1.0);

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// Panics (debug) on the zero vector.
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        debug_assert!(l > 0.0, "normalizing zero vector");
        self / l
    }

    /// Componentwise product (color modulation).
    pub fn hadamard(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Reflect `self` about unit normal `n`.
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// Clamp each component to `[0, 1]` (final color).
    pub fn saturate(self) -> Vec3 {
        Vec3::new(
            self.x.clamp(0.0, 1.0),
            self.y.clamp(0.0, 1.0),
            self.z.clamp(0.0, 1.0),
        )
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A ray: origin + t * direction.
#[derive(Debug, Clone, Copy)]
pub struct Ray {
    /// Origin point.
    pub origin: Vec3,
    /// Direction (unit length by convention).
    pub dir: Vec3,
}

impl Ray {
    /// The point at parameter `t`.
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_identities() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        // Cross is perpendicular to both inputs.
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalize_gives_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reflection_preserves_length_and_flips_normal_component() {
        let n = Vec3::new(0.0, 1.0, 0.0);
        let v = Vec3::new(1.0, -1.0, 0.0);
        let r = v.reflect(n);
        assert_eq!(r, Vec3::new(1.0, 1.0, 0.0));
        assert!((r.length() - v.length()).abs() < 1e-12);
    }

    #[test]
    fn ray_at() {
        let r = Ray {
            origin: Vec3::new(1.0, 0.0, 0.0),
            dir: Vec3::new(0.0, 1.0, 0.0),
        };
        assert_eq!(r.at(2.5), Vec3::new(1.0, 2.5, 0.0));
    }

    #[test]
    fn saturate_clamps() {
        let v = Vec3::new(-0.5, 0.5, 2.0).saturate();
        assert_eq!(v, Vec3::new(0.0, 0.5, 1.0));
    }
}
