//! The ray tracer behind the [`pdc_core::scenario`] seam.
//!
//! `size` is the image width (height is `3·size/4`, the demo aspect);
//! the scene is the seed-jittered demo scene. The sequential renderer
//! is the baseline; the threads backend renders rows on the
//! work-stealing pool; the GpuSim backend shades one simulated GPU
//! thread per pixel. Shading is a pure function of (scene, pixel), so
//! all backends are bit-identical — the digest covers the full PPM
//! encoding.

use crate::render::{render_gpu, render_pool, render_sequential, Image};
use crate::scene::{Camera, Scene};
use pdc_core::scenario::{Backend, Digest, Outcome, Scenario, ScenarioCtx};
use pdc_threads::pool::WorkStealingPool;

/// Mirror-recursion depth per run.
pub const DEPTH: u32 = 2;

/// Digest an image: its full PPM byte stream (dimensions included via
/// the header).
pub fn digest_image(img: &Image) -> u64 {
    let mut d = Digest::new();
    d.write(&img.to_ppm());
    d.finish()
}

/// Ray tracing on sequential / pool / GPU-sim backends.
pub struct RayScenario;

impl RayScenario {
    fn dims(size: usize) -> (usize, usize) {
        (size, (size * 3 / 4).max(1))
    }
}

impl Scenario for RayScenario {
    fn name(&self) -> &'static str {
        "ray"
    }

    fn backends(&self) -> Vec<Backend> {
        vec![
            Backend::Sequential,
            Backend::Threads { workers: 4 },
            Backend::GpuSim,
        ]
    }

    fn run(&self, backend: &Backend, ctx: &ScenarioCtx<'_>) -> Outcome {
        let scene = Scene::seeded(ctx.seed);
        let cam = Camera::demo();
        let (w, h) = Self::dims(ctx.size);
        let img = match backend {
            Backend::Sequential => render_sequential(&scene, &cam, w, h, DEPTH),
            Backend::Threads { workers } => {
                let pool = WorkStealingPool::with_trace(*workers, ctx.session.clone());
                render_pool(&scene, &cam, w, h, DEPTH, &pool)
            }
            Backend::GpuSim => render_gpu(&scene, &cam, w, h, DEPTH, Some(ctx.session)).0,
            other => panic!("ray scenario does not support {other}"),
        };
        let items = (w * h) as u64;
        ctx.session.counter("ray.pixels").add(items);
        Outcome {
            digest: digest_image(&img),
            items,
            detail: format!("lum={:.1}", img.mean_luminance()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_core::scenario::{run_scenario, AnalyzeVerdict, ScenarioConfig};
    use pdc_core::trace::TraceSession;

    fn no_analyzer(_: &TraceSession) -> AnalyzeVerdict {
        AnalyzeVerdict {
            clean: true,
            defects: 0,
            events: 0,
        }
    }

    #[test]
    fn all_backends_agree_on_small_images() {
        let cfg = ScenarioConfig::new(11, &[16, 32]);
        let report = run_scenario(&RayScenario, &cfg, &no_analyzer);
        assert_eq!(report.runs.len(), 6);
        assert!(report.outcomes_agree(), "{:?}", report.mismatches());
        assert!(report.rows_valid());
    }

    #[test]
    fn different_seeds_render_different_images() {
        let a = Scene::seeded(1);
        let b = Scene::seeded(2);
        let cam = Camera::demo();
        let ia = render_sequential(&a, &cam, 24, 18, DEPTH);
        let ib = render_sequential(&b, &cam, 24, 18, DEPTH);
        assert_ne!(digest_image(&ia), digest_image(&ib));
    }
}
