//! The three renderers: sequential, threaded, distributed.

use crate::math::{Ray, Vec3};
use crate::scene::{Camera, Scene};
use pdc_mpi::world::{Rank, TrafficStats, World};
use pdc_threads::parfor::{parallel_for, Schedule};

/// An RGB image with 8-bit channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major RGB triples.
    pub pixels: Vec<[u8; 3]>,
}

impl Image {
    fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            pixels: vec![[0; 3]; width * height],
        }
    }

    /// Encode as a binary PPM (P6) byte vector.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            out.extend_from_slice(p);
        }
        out
    }

    /// Mean luminance in `[0, 255]` (for sanity checks).
    pub fn mean_luminance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .pixels
            .iter()
            .map(|[r, g, b]| {
                0.2126 * f64::from(*r) + 0.7152 * f64::from(*g) + 0.0722 * f64::from(*b)
            })
            .sum();
        total / self.pixels.len() as f64
    }
}

fn to_rgb8(c: Vec3) -> [u8; 3] {
    let c = c.saturate();
    // Gamma 2.0 for a less murky image.
    [
        (c.x.sqrt() * 255.0 + 0.5) as u8,
        (c.y.sqrt() * 255.0 + 0.5) as u8,
        (c.z.sqrt() * 255.0 + 0.5) as u8,
    ]
}

/// Shade one ray: Phong lighting + hard shadows + mirror recursion.
pub fn trace(scene: &Scene, ray: &Ray, depth: u32) -> Vec3 {
    let Some(hit) = scene.hit(ray) else {
        return scene.background;
    };
    let mat = hit.material;
    let mut color = scene.ambient.hadamard(mat.diffuse);
    for light in &scene.lights {
        if scene.in_shadow(hit.point, light.position) {
            continue;
        }
        let l = (light.position - hit.point).normalized();
        let ndotl = hit.normal.dot(l).max(0.0);
        color = color + light.intensity.hadamard(mat.diffuse) * ndotl;
        if mat.specular > 0.0 {
            let r = (-l).reflect(hit.normal);
            let spec = r.dot(ray.dir.normalized()).max(0.0).powf(mat.shininess);
            color = color + light.intensity * (mat.specular * spec);
        }
    }
    if mat.reflectivity > 0.0 && depth > 0 {
        let rdir = ray.dir.reflect(hit.normal).normalized();
        let rray = Ray {
            origin: hit.point + rdir * 1e-6,
            dir: rdir,
        };
        let reflected = trace(scene, &rray, depth - 1);
        color = color * (1.0 - mat.reflectivity) + reflected * mat.reflectivity;
    }
    color
}

/// Render one row of pixels.
fn render_row(
    scene: &Scene,
    cam: &Camera,
    w: usize,
    h: usize,
    y: usize,
    depth: u32,
) -> Vec<[u8; 3]> {
    (0..w)
        .map(|x| {
            let ray = cam.primary_ray(x, y, w, h);
            to_rgb8(trace(scene, &ray, depth))
        })
        .collect()
}

/// Sequential renderer — the baseline.
pub fn render_sequential(scene: &Scene, cam: &Camera, w: usize, h: usize, depth: u32) -> Image {
    let mut img = Image::new(w, h);
    for y in 0..h {
        let row = render_row(scene, cam, w, h, y, depth);
        img.pixels[y * w..(y + 1) * w].copy_from_slice(&row);
    }
    img
}

/// Threaded renderer: rows are independent; the schedule matters because
/// rows crossing the spheres cost more than sky rows (irregular work).
pub fn render_threaded(
    scene: &Scene,
    cam: &Camera,
    w: usize,
    h: usize,
    depth: u32,
    workers: usize,
    schedule: Schedule,
) -> Image {
    let rows: Vec<std::sync::Mutex<Vec<[u8; 3]>>> =
        (0..h).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    parallel_for(0..h, workers, schedule, |y| {
        *rows[y].lock().unwrap() = render_row(scene, cam, w, h, y, depth);
    });
    let mut img = Image::new(w, h);
    for (y, row) in rows.into_iter().enumerate() {
        img.pixels[y * w..(y + 1) * w].copy_from_slice(&row.into_inner().unwrap());
    }
    img
}

/// Distributed renderer: row bands per rank; rank 0 gathers the bands.
/// Returns the image (at rank 0's copy) plus message traffic.
pub fn render_distributed(
    scene: &Scene,
    cam: &Camera,
    w: usize,
    h: usize,
    depth: u32,
    ranks: usize,
) -> (Image, TrafficStats) {
    assert!(ranks > 0);
    let p = ranks.min(h);
    // Flattened rows as Vec<u8> messages: (row_index, rgb bytes).
    let (results, traffic) = World::run(p, |rank: &mut Rank<(u64, Vec<u8>)>| {
        let me = rank.id();
        // Cyclic row assignment balances the irregular work.
        let mine: Vec<usize> = (me..h).step_by(p).collect();
        let mut rendered: Vec<(usize, Vec<u8>)> = Vec::with_capacity(mine.len());
        for &y in &mine {
            let row = render_row(scene, cam, w, h, y, depth);
            rendered.push((y, row.iter().flatten().copied().collect()));
        }
        if me == 0 {
            // Collect everyone else's rows.
            let mut all = rendered;
            let expect: usize = h - all.len();
            for _ in 0..expect {
                let (_, (y, bytes)) = rank.recv_any(1);
                all.push((y as usize, bytes));
            }
            Some(all)
        } else {
            for (y, bytes) in rendered {
                rank.send(0, 1, (y as u64, bytes));
            }
            None
        }
    });
    let mut img = Image::new(w, h);
    let all = results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 returns rows");
    for (y, bytes) in all {
        for (x, rgb) in bytes.chunks_exact(3).enumerate() {
            img.pixels[y * w + x] = [rgb[0], rgb[1], rgb[2]];
        }
    }
    (img, traffic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Camera, Scene};

    const W: usize = 80;
    const H: usize = 60;

    #[test]
    fn image_has_content_and_structure() {
        let img = render_sequential(&Scene::demo(), &Camera::demo(), W, H, 2);
        assert_eq!(img.pixels.len(), W * H);
        let lum = img.mean_luminance();
        assert!(lum > 20.0 && lum < 235.0, "luminance {lum} looks wrong");
        // The image is not a single flat color.
        let first = img.pixels[0];
        assert!(img.pixels.iter().any(|&p| p != first));
    }

    #[test]
    fn threaded_matches_sequential_all_schedules() {
        let scene = Scene::demo();
        let cam = Camera::demo();
        let seq = render_sequential(&scene, &cam, W, H, 2);
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 2 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            for workers in [1usize, 3] {
                let par = render_threaded(&scene, &cam, W, H, 2, workers, schedule);
                assert_eq!(par, seq, "w={workers} {schedule:?}");
            }
        }
    }

    #[test]
    fn distributed_matches_sequential() {
        let scene = Scene::demo();
        let cam = Camera::demo();
        let seq = render_sequential(&scene, &cam, W, H, 2);
        for ranks in [1usize, 2, 4] {
            let (dist, traffic) = render_distributed(&scene, &cam, W, H, 2, ranks);
            assert_eq!(dist, seq, "ranks={ranks}");
            if ranks > 1 {
                // Every non-root row travels exactly once.
                let foreign_rows = (0..H).filter(|y| y % ranks != 0).count() as u64;
                assert_eq!(traffic.messages, foreign_rows);
            }
        }
    }

    #[test]
    fn reflections_change_the_image() {
        let scene = Scene::demo();
        let cam = Camera::demo();
        let with = render_sequential(&scene, &cam, W, H, 3);
        let without = render_sequential(&scene, &cam, W, H, 0);
        assert_ne!(with, without, "depth-0 kills mirror highlights");
    }

    #[test]
    fn ppm_header_and_size() {
        let img = render_sequential(&Scene::demo(), &Camera::demo(), 16, 8, 1);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n16 8\n255\n"));
        assert_eq!(ppm.len(), 12 + 16 * 8 * 3);
    }

    #[test]
    fn shadowed_floor_is_darker_than_lit_floor() {
        let scene = Scene::demo();
        let cam = Camera::demo();
        let img = render_sequential(&scene, &cam, 200, 150, 1);
        // Rough check: the darkest floor-region pixel is much darker
        // than the brightest, thanks to shadows + checkers.
        let bottom: Vec<&[u8; 3]> = img.pixels[200 * 120..].iter().collect();
        let lum = |p: &[u8; 3]| p.iter().map(|&c| c as u32).sum::<u32>();
        let max = bottom.iter().map(|p| lum(p)).max().unwrap();
        let min = bottom.iter().map(|p| lum(p)).min().unwrap();
        assert!(max > min * 2, "floor contrast: {min}..{max}");
    }
}
